//! The three pipeline stages as traits, with the paper's components as
//! the default implementations.
//!
//! * [`Seeder`] — read → candidate regions (MinSeed, Section 6);
//! * [`Prefilter`] — cheap accept/reject of a candidate region before
//!   alignment (the footnote-6 pre-alignment-filter study);
//! * [`Aligner`] — read × extracted subgraph → alignment (BitAlign,
//!   Section 7).
//!
//! Keeping the stages behind traits lets alternative components (baseline
//! seeders, hardware-model-driven aligners, learned filters) slot into the
//! same [`MapPipeline`](crate::pipeline::MapPipeline) and
//! [`MapEngine`](crate::pipeline::MapEngine) without touching the driver
//! loop. Every stage must be `Sync`: the engine shares one pipeline across
//! its worker threads.

use segram_align::{
    windowed_bitalign, AlignError, Alignment, BitAlignConfig, BitAligner, StartMode,
};
use segram_filter::FilterSpec;
use segram_graph::{DnaSeq, GenomeGraph, LinearizedGraph};
use segram_index::{GraphIndex, MinSeed, MinSeedConfig, SeedingResult};

use crate::config::SegramConfig;

/// Stage 1: produces candidate regions for a read.
pub trait Seeder: Sync {
    /// Seeds one read, returning candidate regions plus seeding statistics.
    fn seed(&self, read: &DnaSeq) -> SeedingResult;
}

/// Stage 2: cheap pre-alignment screening of one candidate region.
pub trait Prefilter: Sync {
    /// Returns whether the region may contain an alignment with at most
    /// `k` edits and should therefore reach the aligner.
    ///
    /// Implementations must be *sound* for the configured `k`: rejecting a
    /// region that holds a ≤ `k`-edit alignment loses mappings.
    fn accept(&self, read: &DnaSeq, region: &LinearizedGraph, k: u32) -> bool;

    /// Whether this filter accepts every region unconditionally. The
    /// pipeline skips the filtering stage (and its time accounting)
    /// entirely when this returns `true`, so a filter-free run reports
    /// exactly zero filtering time.
    fn is_pass_through(&self) -> bool {
        false
    }
}

/// Stage 3: aligns a read against one extracted subgraph.
pub trait Aligner: Sync {
    /// Aligns `read` to `region`.
    ///
    /// # Errors
    ///
    /// Propagates alignment errors (e.g. edit threshold exceeded).
    fn align(&self, region: &LinearizedGraph, read: &DnaSeq) -> Result<Alignment, AlignError>;
}

/// The default [`Seeder`]: MinSeed over a graph and its minimizer index.
#[derive(Clone, Copy, Debug)]
pub struct MinSeedStage<'a> {
    graph: &'a GenomeGraph,
    index: &'a GraphIndex,
    config: MinSeedConfig,
}

impl<'a> MinSeedStage<'a> {
    /// Binds MinSeed to a graph, its index, and the seeding parameters.
    pub fn new(graph: &'a GenomeGraph, index: &'a GraphIndex, config: MinSeedConfig) -> Self {
        Self {
            graph,
            index,
            config,
        }
    }
}

impl Seeder for MinSeedStage<'_> {
    fn seed(&self, read: &DnaSeq) -> SeedingResult {
        MinSeed::new(self.graph, self.index, self.config).seed(read)
    }
}

/// The default [`Prefilter`]: an optional [`FilterSpec`] from
/// `segram-filter`, where `None` (the paper's filter-free configuration)
/// accepts every region.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpecPrefilter {
    spec: Option<FilterSpec>,
}

impl SpecPrefilter {
    /// Wraps an optional filter specification.
    pub fn new(spec: Option<FilterSpec>) -> Self {
        Self { spec }
    }

    /// The wrapped specification, if any.
    pub fn spec(&self) -> Option<FilterSpec> {
        self.spec
    }
}

impl Prefilter for SpecPrefilter {
    fn accept(&self, read: &DnaSeq, region: &LinearizedGraph, k: u32) -> bool {
        match self.spec {
            None => true,
            Some(spec) => segram_filter::filter_region(spec, read.as_slice(), region, k).accepted,
        }
    }

    fn is_pass_through(&self) -> bool {
        self.spec.is_none()
    }
}

/// The default [`Aligner`]: BitAlign for short reads, windowed BitAlign
/// for reads longer than one window. Thresholds and the window layout
/// come from the shared [`SegramConfig`], so the aligner's `k` and the
/// prefilter's `k` can never drift apart.
#[derive(Clone, Copy, Debug)]
pub struct BitAlignStage {
    config: SegramConfig,
}

impl BitAlignStage {
    /// Derives the alignment stage from a mapper configuration.
    pub fn new(config: &SegramConfig) -> Self {
        Self { config: *config }
    }
}

impl Aligner for BitAlignStage {
    fn align(&self, region: &LinearizedGraph, read: &DnaSeq) -> Result<Alignment, AlignError> {
        let k = self.config.threshold_for(read.len());
        if read.len() <= self.config.window.window {
            BitAligner::new(
                region,
                read,
                BitAlignConfig {
                    k,
                    ..BitAlignConfig::default()
                },
            )?
            .align()
        } else {
            let mut window = self.config.window;
            window.window_k = window.window_k.max(window.overlap as u32);
            windowed_bitalign(region, read, window, StartMode::Free)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_index::frequency_threshold;
    use segram_sim::DatasetConfig;

    #[test]
    fn default_stages_match_mapper_components() {
        let dataset = DatasetConfig::tiny(11).illumina(100);
        let config = SegramConfig::short_reads();
        let mapper = crate::SegramMapper::new(dataset.graph().clone(), config);
        let index = GraphIndex::build(dataset.graph(), config.scheme, config.bucket_bits);
        let stage = MinSeedStage::new(
            dataset.graph(),
            &index,
            MinSeedConfig {
                error_rate: config.error_rate,
                frequency_threshold: frequency_threshold(&index, config.discard_frac),
            },
        );
        let read = &dataset.reads[0].seq;
        let via_stage = stage.seed(read);
        let via_mapper = mapper.seed(read);
        assert_eq!(via_stage.regions, via_mapper.regions);
        assert_eq!(via_stage.stats.minimizers, via_mapper.stats.minimizers);
    }

    #[test]
    fn filter_free_prefilter_accepts_everything() {
        let dataset = DatasetConfig::tiny(13).illumina(100);
        let read = &dataset.reads[0].seq;
        let lin = LinearizedGraph::extract(dataset.graph(), 0, 200).unwrap();
        assert!(SpecPrefilter::new(None).accept(read, &lin, 0));
        // The sound cascade never rejects at a generous threshold either.
        let cascade = SpecPrefilter::new(Some(FilterSpec::cascade()));
        assert!(cascade.accept(read, &lin, read.len() as u32));
    }
}
