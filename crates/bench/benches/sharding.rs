//! Criterion benchmarks of the coordinate-range sharded map engine:
//! 1/2/4-shard batch throughput through the seeding router (output
//! byte-identical to the unsharded path by construction), the router's
//! seeding-only overhead, the elastic per-shard-group pool schedule on
//! uniform vs. skewed read mixes, plus the observed seed-hit imbalance
//! and the modeled per-HBM-channel accelerator occupancy those shard
//! streams imply (`segram_hw::simulate_sharded_pipeline`).

use segram_core::{
    ElasticScheduler, EngineConfig, MapEngine, ReadMapper, RebalanceConfig, Seeder, SegramConfig,
    SegramMapper, ShardAffinity, ShardedIndex,
};
use segram_graph::DnaSeq;
use segram_hw::{simulate_sharded_pipeline, uniform_jobs};
use segram_sim::DatasetConfig;
use segram_testkit::bench::{
    black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};

fn setup() -> (Vec<DnaSeq>, SegramConfig, segram_sim::Dataset) {
    let dataset = DatasetConfig {
        reference_len: 100_000,
        read_count: 32,
        long_read_len: 2_000,
        seed: 173,
    }
    .illumina(150);
    let mut config = SegramConfig::short_reads();
    config.max_regions = 8;
    let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
    (reads, config, dataset)
}

fn bench_sharded_engine(c: &mut Criterion) {
    let (reads, config, dataset) = setup();
    let shard_counts = [1usize, 2, 4];
    let sharded: Vec<ShardedIndex> = shard_counts
        .iter()
        .map(|&n| ShardedIndex::build(dataset.graph().clone(), config, n))
        .collect();

    let mut group = c.benchmark_group("sharded_engine_150bp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reads.len() as u64));
    for index in &sharded {
        let shards = index.shards().len();
        let affinity = ShardAffinity::pin_workers(&index.shard_loads(), 4);
        let engine = MapEngine::with_affinity(index, EngineConfig::with_threads(4), affinity);
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| {
                let (outcomes, report) = engine.map_batch(black_box(&reads));
                black_box((outcomes.len(), report.mapped))
            })
        });
    }
    group.finish();

    // Load-balance observability: per-shard seeding occupancy from the
    // software counters, and the accelerator occupancy the same shard
    // streams imply in the hardware model (MinSeed 10 ns / BitAlign 34 ns
    // per region, the Section 8.3 steady-state figures).
    for index in &sharded {
        index.reset_shard_stats();
        let engine = MapEngine::new(index, EngineConfig::with_threads(4));
        let _ = engine.map_batch(&reads);
        let streams: Vec<_> = index
            .shard_stats()
            .iter()
            .map(|s| uniform_jobs(s.regions as usize, 10.0, 34.0))
            .collect();
        let trace = simulate_sharded_pipeline(&streams);
        println!(
            "  info: shards {} -> seed-hit imbalance {:.2}, modeled channel imbalance {:.2}, \
             modeled makespan {:.1} us",
            index.shards().len(),
            index.seed_imbalance(),
            trace.channel_imbalance(),
            trace.makespan_ns() / 1e3
        );
    }
}

fn bench_router_seeding(c: &mut Criterion) {
    let (reads, config, dataset) = setup();
    let mono = SegramMapper::new(dataset.graph().clone(), config);
    let sharded = ShardedIndex::build(dataset.graph().clone(), config, 4);
    let router = sharded.router();

    let mut group = c.benchmark_group("seeding_router_150bp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reads.len() as u64));
    group.bench_function("monolithic", |b| {
        b.iter(|| {
            let total: usize = reads.iter().map(|r| mono.seed(r).regions.len()).sum();
            black_box(total)
        })
    });
    group.bench_function("router/4-shards", |b| {
        b.iter(|| {
            let total: usize = reads.iter().map(|r| router.seed(r).regions.len()).sum();
            black_box(total)
        })
    });
    group.finish();

    // The router must not change what seeding produces.
    let mono_regions: usize = reads.iter().map(|r| mono.seed(r).regions.len()).sum();
    let routed_regions: usize = reads.iter().map(|r| router.seed(r).regions.len()).sum();
    assert_eq!(mono_regions, routed_regions, "router diverged from MinSeed");
    // Exercise the full sharded mapper once so ReadMapper stays covered.
    let (mapping, _) = sharded.map_read(&reads[0]);
    black_box(mapping);
}

fn bench_elastic_sched(c: &mut Criterion) {
    let (reads, config, dataset) = setup();
    let sharded = ShardedIndex::build(dataset.graph().clone(), config, 4);

    // Uniform mix: every simulated read once, landing across the whole
    // coordinate range. Skewed mix: two reads repeated to fill the same
    // volume — nearly every batch routes to one shard group, the case
    // elastic scheduling (and its rebalancer) exists for.
    let uniform = reads.clone();
    let skewed: Vec<DnaSeq> = (0..reads.len()).map(|i| reads[i % 2].clone()).collect();

    let mut engine_config = EngineConfig::with_threads(4);
    // Small batches so one pass produces enough routing decisions (and
    // rebalance observations) to be representative.
    engine_config.batch_size = 4;

    let mut group = c.benchmark_group("elastic_sched_150bp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reads.len() as u64));
    for (label, mix) in [("uniform", &uniform), ("skewed", &skewed)] {
        let affinity = ShardAffinity::pin_workers(&sharded.shard_loads(), 4);
        let scheduler = ElasticScheduler::new(&sharded, engine_config.clone(), affinity);
        group.bench_function(BenchmarkId::new("mix", label), |b| {
            b.iter(|| {
                let (outcomes, report) = scheduler.map_batch(black_box(mix));
                black_box((outcomes.len(), report.routed, report.spilled))
            })
        });
    }
    group.finish();

    // Scheduling observability: single-core CI judges the elastic path by
    // these counters rather than wall-clock scaling — the routed/spilled
    // split per mix, and whether skew provokes shard migrations under a
    // hair-trigger rebalancer. Two pools over four shards, so each pool
    // owns a multi-shard group and ownership has somewhere to move.
    for (label, mix) in [("uniform", &uniform), ("skewed", &skewed)] {
        let affinity = ShardAffinity::pin_workers(&sharded.shard_loads(), 2);
        let scheduler = ElasticScheduler::new(&sharded, engine_config.clone(), affinity)
            .with_rebalance(RebalanceConfig {
                threshold: 1.2,
                cooldown: 2,
            });
        // Warm pass: the rebalancer reads live per-shard seed-hit
        // counters, which only accumulate as workers map. A first pass
        // populates them so the reported pass observes the mix's true
        // skew from its first batch boundary.
        sharded.reset_shard_stats();
        let _ = scheduler.map_batch(mix);
        let (_, report) = scheduler.map_batch(mix);
        println!(
            "  info: {} mix -> {} pools, {} routed, {} spilled, {} migrations",
            label,
            report.pools.len(),
            report.routed,
            report.spilled,
            report.migrations
        );
    }
}

criterion_group!(
    benches,
    bench_sharded_engine,
    bench_router_seeding,
    bench_elastic_sched
);
criterion_main!(benches);
