//! Integration tests for `segram-testkit` itself: RNG determinism across
//! runs (golden values), property-harness behaviour (case budget, env
//! override, assume/assert semantics, failure reporting with input
//! regeneration), and the JSON writer (escaping, derive, pretty shape).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};

use segram_testkit::json::{self, Json};
use segram_testkit::prelude::*;
use segram_testkit::Serialize;

// ---------------------------------------------------------------------------
// RNG determinism
// ---------------------------------------------------------------------------

/// Golden values pin the stream across runs, processes, and machines — a
/// change here silently reseeds every simulated dataset in the workspace,
/// so it must be deliberate.
#[test]
fn chacha8_stream_is_stable_across_runs() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    assert_eq!(
        [
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64()
        ],
        [
            0x31159ef987c91afc,
            0x17559844b4169001,
            0xf7d0afbf9ad9a69f,
            0xb9207ad5fd37495a,
        ]
    );
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    assert_eq!(
        [rng.next_u64(), rng.next_u64()],
        [0xbf94d1332d8ee5e8, 0x3a738775a6da5a01]
    );
}

#[test]
fn derived_samplers_are_deterministic_too() {
    let draw = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ints: Vec<u32> = (0..50).map(|_| rng.gen_range(0..1000)).collect();
        let floats: Vec<f64> = (0..50).map(|_| rng.gen()).collect();
        let bools: Vec<bool> = (0..50).map(|_| rng.gen_bool(0.5)).collect();
        (ints, floats, bools)
    };
    assert_eq!(draw(7), draw(7));
    assert_ne!(draw(7), draw(8));
}

#[test]
fn strategies_regenerate_identically_from_a_seed() {
    // The failure reporter relies on this: re-running a strategy on a
    // fresh RNG with the failing case's seed reproduces the inputs.
    let strategy = prop::collection::vec((0u8..4, any::<bool>()), 1..20);
    let mut a = ChaCha8Rng::seed_from_u64(0xfeed);
    let mut b = ChaCha8Rng::seed_from_u64(0xfeed);
    for _ in 0..100 {
        assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
    }
}

// ---------------------------------------------------------------------------
// Property harness
// ---------------------------------------------------------------------------

static EXECUTED: AtomicU32 = AtomicU32::new(0);

// No `#[test]` attribute: the macro then emits plain functions we can
// drive (and catch) manually.
proptest! {
    fn failing_property(x in 0u32..10, tag in "[ab]{2,4}") {
        let _ = &tag;
        prop_assert!(x > 100, "x too small: {x}");
    }

    fn counting_property(x in 0u32..1000) {
        let _ = x;
        EXECUTED.fetch_add(1, Ordering::Relaxed);
    }

    fn rejecting_property(x in 0u32..100) {
        prop_assume!(x % 2 == 0);
        prop_assert!(x % 2 == 0);
    }

    fn panicking_property(x in 0u32..10) {
        assert!(x > 100, "plain assert failed on {x}");
    }
}

#[test]
fn failure_report_names_inputs_and_seed() {
    let panic =
        catch_unwind(AssertUnwindSafe(failing_property)).expect_err("failing_property must fail");
    let message = panic
        .downcast_ref::<String>()
        .expect("failure panics with a formatted String");
    assert!(
        message.contains("property failed: x too small:"),
        "{message}"
    );
    assert!(message.contains("failing case (seed 0x"), "{message}");
    assert!(message.contains("  x = "), "{message}");
    assert!(message.contains("  tag = "), "{message}");
    // The reported tag is a real generated value of its strategy.
    let tag = message
        .split("tag = ")
        .nth(1)
        .and_then(|rest| rest.split('"').nth(1))
        .expect("tag value quoted in report");
    assert!((2..=4).contains(&tag.len()), "{tag:?}");
    assert!(tag.chars().all(|c| c == 'a' || c == 'b'), "{tag:?}");
}

#[test]
fn plain_panics_also_get_an_input_report() {
    // `assert!`/`unwrap` failures unwind with their own payload; the
    // harness prints the input report to stderr and re-raises.
    let panic = catch_unwind(AssertUnwindSafe(panicking_property))
        .expect_err("panicking_property must fail");
    let message = panic
        .downcast_ref::<String>()
        .expect("assert! panics with a String payload");
    assert!(message.contains("plain assert failed"), "{message}");
}

#[test]
fn case_budget_respects_env_override() {
    // Default: capped at DEFAULT_CASE_CAP even though the config asks for
    // 256 cases.
    EXECUTED.store(0, Ordering::Relaxed);
    counting_property();
    assert_eq!(
        EXECUTED.load(Ordering::Relaxed),
        segram_testkit::prop::DEFAULT_CASE_CAP
    );

    // SEGRAM_PROPTEST_CASES raises the budget beyond the cap.
    std::env::set_var("SEGRAM_PROPTEST_CASES", "97");
    EXECUTED.store(0, Ordering::Relaxed);
    counting_property();
    std::env::remove_var("SEGRAM_PROPTEST_CASES");
    assert_eq!(EXECUTED.load(Ordering::Relaxed), 97);
}

#[test]
fn assume_skips_without_failing() {
    // Half the cases are rejected; the harness keeps drawing and passes.
    rejecting_property();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The macro's `#[test]` path works end to end (this is itself a
    /// proptest-generated test), including tuple, map, oneof, select, and
    /// Index strategies.
    #[test]
    fn strategy_zoo_generates_valid_values(
        pair in (0u8..4, 10i32..20).prop_map(|(a, b)| (b, a)),
        pick in prop_oneof![Just(1u8), Just(9u8), 3u8..5],
        base in prop::sample::select(vec!['A', 'C', 'G', 'T']),
        idx in any::<prop::sample::Index>(),
        set in prop::collection::btree_set(0usize..30, 0..5),
    ) {
        prop_assert!((10..20).contains(&pair.0) && pair.1 < 4);
        prop_assert!(pick == 1 || pick == 9 || (3..5).contains(&pick));
        prop_assert!("ACGT".contains(base));
        prop_assert!(idx.index(7) < 7);
        prop_assert!(set.len() < 5);
        prop_assert_eq!(set.iter().filter(|&&v| v >= 30).count(), 0);
    }
}

// ---------------------------------------------------------------------------
// JSON writer + derive
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct Inner {
    label: String,
    value: f64,
}

#[derive(Serialize)]
struct Outer {
    name: &'static str,
    count: usize,
    ratio: f64,
    flags: Vec<bool>,
    pairs: Vec<(u32, f64)>,
    inner: Vec<Inner>,
    triple: [f64; 3],
}

/// A tolerant structural re-parse of the writer's output, enough to prove
/// round-tripping without writing a full parser: finds `"key": value`
/// scalar fields.
fn extract_scalar<'a>(doc: &'a str, key: &str) -> &'a str {
    let pattern = format!("\"{key}\": ");
    let start = doc
        .find(&pattern)
        .unwrap_or_else(|| panic!("{key} in {doc}"))
        + pattern.len();
    doc[start..].split([',', '\n']).next().unwrap()
}

#[test]
fn derived_struct_round_trips_through_pretty_json() {
    let value = Outer {
        name: "fig\"1\"\n",
        count: 3,
        ratio: 5.9,
        flags: vec![true, false],
        pairs: vec![(21, 9.8), (24, 9.81)],
        inner: vec![Inner {
            label: "tab\there".into(),
            value: 2.0,
        }],
        triple: [1.0, 0.5, 0.25],
    };
    let doc = json::to_string_pretty(&value).unwrap();

    // Escaping: the quote and newline in `name`, the tab in `label`.
    assert!(doc.contains(r#""name": "fig\"1\"\n""#), "{doc}");
    assert!(doc.contains(r#""label": "tab\there""#), "{doc}");
    // Scalars round-trip.
    assert_eq!(extract_scalar(&doc, "count"), "3");
    assert_eq!(extract_scalar(&doc, "ratio"), "5.9");
    // Arrays/tuples/nested structs present with correct arity.
    assert_eq!(doc.matches("\"label\"").count(), 1);
    assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    // Field order follows declaration order.
    let name_at = doc.find("\"name\"").unwrap();
    let count_at = doc.find("\"count\"").unwrap();
    let inner_at = doc.find("\"inner\"").unwrap();
    assert!(name_at < count_at && count_at < inner_at);
}

#[derive(Serialize)]
enum Mode {
    Quick,
    Full,
}

#[test]
fn unit_enums_serialize_as_variant_names() {
    assert_eq!(json::to_string(&Mode::Quick).unwrap(), "\"Quick\"");
    assert_eq!(json::to_string(&Mode::Full).unwrap(), "\"Full\"");
}

#[test]
fn json_value_model_is_writable_directly() {
    let doc = Json::Object(vec![
        ("ok".into(), Json::Bool(true)),
        (
            "xs".into(),
            Json::Array(vec![Json::Null, Json::Number("1".into())]),
        ),
    ]);
    assert_eq!(
        json::to_string(&doc).unwrap(),
        r#"{"ok":true,"xs":[null,1]}"#
    );
}
