//! Criterion benchmarks of the graph substrate: construction (the paper's
//! pre-processing step 0.1), topological sorting, linearization, and the
//! hardware table layout.

use segram_graph::{build_graph, GraphTables, LinearizedGraph};
use segram_sim::{generate_reference, simulate_variants, GenomeConfig, VariantConfig};
use segram_testkit::bench::{criterion_group, criterion_main, Criterion};

fn bench_graph_substrate(c: &mut Criterion) {
    let reference = generate_reference(&GenomeConfig::human_like(100_000, 21));
    let variants = simulate_variants(&reference, &VariantConfig::human_like(22));

    let mut group = c.benchmark_group("graph_substrate");
    group.sample_size(10);
    group.bench_function("build_graph_100kbp", |b| {
        b.iter(|| build_graph(&reference, variants.clone()))
    });

    let built = build_graph(&reference, variants.clone()).expect("synthetic inputs");
    group.bench_function("topological_sort", |b| {
        b.iter(|| built.graph.topological_sort())
    });
    group.bench_function("linearize_full_graph", |b| {
        b.iter(|| LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars()))
    });
    group.bench_function("graph_tables_layout", |b| {
        b.iter(|| GraphTables::from_graph(&built.graph))
    });
    group.bench_function("extract_1kbp_region", |b| {
        b.iter(|| LinearizedGraph::extract(&built.graph, 50_000, 51_000))
    });
    group.finish();
}

criterion_group!(benches, bench_graph_substrate);
criterion_main!(benches);
