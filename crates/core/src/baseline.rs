//! Software baseline mappers, reproducing the *algorithmic cores* of the
//! tools the paper compares against (see DESIGN.md's substitution table):
//!
//! * [`GraphAlignerLike`] — seed-and-extend with minimizer seeding,
//!   aggressive seed filtering, and bit-parallel alignment (GraphAligner is
//!   itself bitvector-based; Rautiainen & Marschall 2020);
//! * [`VgLike`] — seed-and-extend with chunked DP alignment (vg divides
//!   the read into overlapping chunks to shrink the DP table — the paper's
//!   Observation 2 discussion);
//! * [`HgaLike`] — whole-graph DP with no seeding, mirroring how the paper
//!   treats HGA ("HGA takes all of the nodes of a given graph into
//!   consideration instead of a small region", Section 10 fn. 5).
//!
//! All three are instrumented per pipeline step so the Section 3
//! observations (alignment dominates; sublinear thread scaling) can be
//! re-measured on this reproduction.

use std::time::{Duration, Instant};

use segram_align::{graph_dp_distance, windowed_bitalign, StartMode};
use segram_graph::{DnaSeq, GenomeGraph, LinearizedGraph};
use segram_index::{frequency_threshold, GraphIndex, MinSeed, MinSeedConfig};

use crate::config::SegramConfig;

/// A mapping produced by a baseline mapper (location + distance only; the
/// baselines are throughput comparators, not CIGAR producers here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaselineMapping {
    /// Best edit distance found.
    pub edit_distance: u32,
    /// Linear coordinate of the mapping's start.
    pub linear_start: u64,
}

/// Per-step timing of a baseline mapper run, plus the alignment-step
/// workload counters the cross-backend occupancy model consumes.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTimes {
    /// Seeding (minimizer extraction + index lookup + region calc).
    pub seeding: Duration,
    /// Seed filtering / chaining surrogate.
    pub filtering: Duration,
    /// Alignment.
    pub alignment: Duration,
    /// Candidate regions the alignment step evaluated (chains, chunked
    /// regions, or one whole-graph pass for HGA).
    pub candidates: usize,
    /// Total reference characters those candidates covered (the workload
    /// behind `candidates`; whole-graph DP reports the whole graph).
    pub aligned_chars: u64,
}

impl StepTimes {
    /// Merge another read's times.
    pub fn merge(&mut self, other: &StepTimes) {
        self.seeding += other.seeding;
        self.filtering += other.filtering;
        self.alignment += other.alignment;
        self.candidates += other.candidates;
        self.aligned_chars += other.aligned_chars;
    }

    /// Total time.
    pub fn total(&self) -> Duration {
        self.seeding + self.filtering + self.alignment
    }

    /// Fraction spent aligning (the paper's Observation 1: 50–95 %).
    pub fn alignment_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.alignment.as_secs_f64() / total
    }
}

/// Common interface of the software baselines.
pub trait BaselineMapper: Send + Sync {
    /// Tool name (paper nomenclature).
    fn name(&self) -> &'static str;

    /// The reference graph this baseline maps against (every baseline owns
    /// one; the engine adapter renders SAM/GAF against it).
    fn graph(&self) -> &GenomeGraph;

    /// Maps one read, reporting the result and per-step times.
    fn map_read(&self, read: &DnaSeq) -> (Option<BaselineMapping>, StepTimes);
}

/// Shared seeding state of the seed-and-extend baselines.
#[derive(Debug)]
struct SeededBase {
    graph: GenomeGraph,
    index: GraphIndex,
    config: SegramConfig,
    freq_threshold: u32,
}

impl SeededBase {
    fn new(graph: GenomeGraph, config: SegramConfig) -> Self {
        let index = GraphIndex::build(&graph, config.scheme, config.bucket_bits);
        let freq_threshold = frequency_threshold(&index, config.discard_frac);
        Self {
            graph,
            index,
            config,
            freq_threshold,
        }
    }

    fn minseed(&self) -> MinSeed<'_> {
        MinSeed::new(
            &self.graph,
            &self.index,
            MinSeedConfig {
                error_rate: self.config.error_rate,
                frequency_threshold: self.freq_threshold,
            },
        )
    }
}

/// GraphAligner-like: seeding + Minimap2-style anchor chaining (keep the
/// best few chains) + bit-parallel windowed alignment. The chaining step
/// is what collapses GraphAligner's seed counts so drastically in §11.4
/// (77 M seeds → 48 k extensions).
#[derive(Debug)]
pub struct GraphAlignerLike {
    base: SeededBase,
    /// Chaining parameters; `chain.max_chains` bounds the extensions per
    /// read.
    pub chain: segram_index::ChainConfig,
}

impl GraphAlignerLike {
    /// Builds the baseline over a graph.
    pub fn new(graph: GenomeGraph, config: SegramConfig) -> Self {
        Self {
            base: SeededBase::new(graph, config),
            chain: segram_index::ChainConfig::default(),
        }
    }
}

impl BaselineMapper for GraphAlignerLike {
    fn name(&self) -> &'static str {
        "GraphAligner-like"
    }

    fn graph(&self) -> &GenomeGraph {
        &self.base.graph
    }

    fn map_read(&self, read: &DnaSeq) -> (Option<BaselineMapping>, StepTimes) {
        let mut times = StepTimes::default();
        let t0 = Instant::now();
        let seeding = self.base.minseed().seed(read);
        times.seeding = t0.elapsed();

        // Chaining: co-linear anchors merge into few candidate loci.
        let t1 = Instant::now();
        let k = self.base.config.scheme.k as u32;
        let anchors: Vec<segram_index::Anchor> = seeding
            .regions
            .iter()
            .filter_map(|r| segram_index::Anchor::from_region(&self.base.graph, r, k))
            .collect();
        let chains = segram_index::chain_anchors(&anchors, &self.chain);
        let pad = (read.len() as u64 * 5 / 4) + 32;
        let clusters: Vec<(u64, u64)> = chains
            .iter()
            .map(|c| {
                (
                    c.ref_start.saturating_sub(pad),
                    (c.ref_end + pad).min(self.base.graph.total_chars()),
                )
            })
            .collect();
        times.filtering = t1.elapsed();

        let t2 = Instant::now();
        let mut best: Option<BaselineMapping> = None;
        for (start, end) in clusters {
            let Ok(lin) = LinearizedGraph::extract(&self.base.graph, start, end) else {
                continue;
            };
            times.candidates += 1;
            times.aligned_chars += end - start;
            let mut window = self.base.config.window;
            window.window_k = window.window_k.max(window.overlap as u32);
            let Ok(a) = windowed_bitalign(&lin, read, window, StartMode::Free) else {
                continue;
            };
            let candidate = BaselineMapping {
                edit_distance: a.edit_distance,
                linear_start: start + a.text_start as u64,
            };
            if best.is_none_or(|b| {
                (candidate.edit_distance, candidate.linear_start)
                    < (b.edit_distance, b.linear_start)
            }) {
                best = Some(candidate);
            }
        }
        times.alignment = t2.elapsed();
        (best, times)
    }
}

/// vg-like: seeding + chunked exact DP ("vg tackles this issue by dividing
/// the read into overlapping chunks, which reduces the size of the dynamic
/// programming table", Observation 2).
#[derive(Debug)]
pub struct VgLike {
    base: SeededBase,
    /// Chunk size in read bases.
    pub chunk: usize,
    /// Maximum regions aligned per read.
    pub max_regions: usize,
}

impl VgLike {
    /// Builds the baseline over a graph.
    pub fn new(graph: GenomeGraph, config: SegramConfig) -> Self {
        Self {
            base: SeededBase::new(graph, config),
            chunk: 256,
            max_regions: 4,
        }
    }
}

impl BaselineMapper for VgLike {
    fn name(&self) -> &'static str {
        "vg-like"
    }

    fn graph(&self) -> &GenomeGraph {
        &self.base.graph
    }

    fn map_read(&self, read: &DnaSeq) -> (Option<BaselineMapping>, StepTimes) {
        let mut times = StepTimes::default();
        let t0 = Instant::now();
        let seeding = self.base.minseed().seed(read);
        times.seeding = t0.elapsed();

        let t1 = Instant::now();
        let mut regions = seeding.regions;
        regions.truncate(self.max_regions);
        times.filtering = t1.elapsed();

        let t2 = Instant::now();
        let mut best: Option<BaselineMapping> = None;
        for region in regions {
            let Ok(lin) = LinearizedGraph::extract(&self.base.graph, region.start, region.end)
            else {
                continue;
            };
            times.candidates += 1;
            times.aligned_chars += region.end - region.start;
            // Chunked DP: exact distance per chunk, summed; chunk windows
            // slide along the region proportionally.
            let mut total = 0u32;
            let mut q = 0usize;
            let mut text_cursor = 0usize;
            let mut feasible = true;
            while q < read.len() {
                let chunk_end = (q + self.chunk).min(read.len());
                let chunk_seq = read.slice(q, chunk_end);
                let slack = self.chunk / 4 + 16;
                let from = text_cursor.min(lin.len().saturating_sub(1));
                let to = (from + (chunk_end - q) + slack).min(lin.len());
                if to <= from {
                    feasible = false;
                    break;
                }
                let window = lin.window(from, to);
                let start = if q == 0 {
                    StartMode::Free
                } else {
                    StartMode::Anchored(0)
                };
                match graph_dp_distance(&window, &chunk_seq, start) {
                    Ok((d, s)) => {
                        total += d;
                        text_cursor = from + s + (chunk_end - q); // approximate advance
                    }
                    Err(_) => {
                        feasible = false;
                        break;
                    }
                }
                q = chunk_end;
            }
            if !feasible {
                continue;
            }
            let candidate = BaselineMapping {
                edit_distance: total,
                linear_start: region.start,
            };
            if best.is_none_or(|b| {
                (candidate.edit_distance, candidate.linear_start)
                    < (b.edit_distance, b.linear_start)
            }) {
                best = Some(candidate);
            }
        }
        times.alignment = t2.elapsed();
        (best, times)
    }
}

/// HGA-like: whole-graph DP with no seeding step at all.
#[derive(Debug)]
pub struct HgaLike {
    graph: GenomeGraph,
    lin: LinearizedGraph,
}

impl HgaLike {
    /// Builds the baseline: linearizes the whole graph once.
    ///
    /// # Panics
    ///
    /// Panics when the graph is empty.
    pub fn new(graph: GenomeGraph) -> Self {
        let lin =
            LinearizedGraph::extract(&graph, 0, graph.total_chars()).expect("non-empty graph");
        Self { graph, lin }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &GenomeGraph {
        &self.graph
    }
}

impl BaselineMapper for HgaLike {
    fn name(&self) -> &'static str {
        "HGA-like"
    }

    fn graph(&self) -> &GenomeGraph {
        &self.graph
    }

    fn map_read(&self, read: &DnaSeq) -> (Option<BaselineMapping>, StepTimes) {
        let mut times = StepTimes::default();
        let t0 = Instant::now();
        let result = graph_dp_distance(&self.lin, read, StartMode::Free).ok();
        times.alignment = t0.elapsed();
        // One candidate covering the whole graph: what "no seeding"
        // costs, in the same units the seeded baselines report.
        times.candidates = 1;
        times.aligned_chars = self.lin.len() as u64;
        (
            result.map(|(d, start)| BaselineMapping {
                edit_distance: d,
                linear_start: start as u64,
            }),
            times,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_sim::DatasetConfig;

    fn accuracy(mapper: &dyn BaselineMapper, dataset: &segram_sim::Dataset) -> (f64, StepTimes) {
        let mut near = 0usize;
        let mut times = StepTimes::default();
        for read in &dataset.reads {
            let (m, t) = mapper.map_read(&read.seq);
            times.merge(&t);
            if let Some(m) = m {
                if m.linear_start.abs_diff(read.true_start_linear) < 150 {
                    near += 1;
                }
            }
        }
        (near as f64 / dataset.reads.len() as f64, times)
    }

    #[test]
    fn graphaligner_like_maps_short_reads() {
        let dataset = DatasetConfig::tiny(61).illumina(100);
        let mapper = GraphAlignerLike::new(dataset.graph().clone(), SegramConfig::short_reads());
        let (acc, times) = accuracy(&mapper, &dataset);
        assert!(acc > 0.8, "accuracy {acc}");
        assert!(times.total() > Duration::ZERO);
    }

    #[test]
    fn vg_like_maps_short_reads() {
        let dataset = DatasetConfig::tiny(63).illumina(100);
        let mapper = VgLike::new(dataset.graph().clone(), SegramConfig::short_reads());
        let (acc, _) = accuracy(&mapper, &dataset);
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn hga_like_finds_the_global_optimum() {
        let mut config = DatasetConfig::tiny(65);
        config.reference_len = 5_000;
        config.read_count = 5;
        let dataset = config.illumina(100);
        let mapper = HgaLike::new(dataset.graph().clone());
        for read in &dataset.reads {
            let (m, times) = mapper.map_read(&read.seq);
            let m = m.expect("whole-graph DP always yields a distance");
            // Whole-graph DP must do at least as well as any seeded method.
            assert!(m.edit_distance <= read.injected_errors + 5);
            assert_eq!(times.seeding, Duration::ZERO);
        }
    }

    #[test]
    fn alignment_dominates_baseline_time() {
        // Observation 1: the alignment step is 50-95% of end-to-end time.
        let dataset = DatasetConfig::tiny(67).illumina(150);
        let mapper = VgLike::new(dataset.graph().clone(), SegramConfig::short_reads());
        let (_, times) = accuracy(&mapper, &dataset);
        assert!(
            times.alignment_fraction() > 0.5,
            "alignment fraction {}",
            times.alignment_fraction()
        );
    }

    #[test]
    fn step_times_report_alignment_workload() {
        let dataset = DatasetConfig::tiny(71).illumina(100);
        let ga = GraphAlignerLike::new(dataset.graph().clone(), SegramConfig::short_reads());
        let (m, times) = ga.map_read(&dataset.reads[0].seq);
        assert!(m.is_some());
        assert!(times.candidates >= 1, "{times:?}");
        assert!(times.aligned_chars >= 100, "{times:?}");

        let vg = VgLike::new(dataset.graph().clone(), SegramConfig::short_reads());
        let (_, times) = vg.map_read(&dataset.reads[0].seq);
        assert!(times.candidates >= 1 && times.candidates <= vg.max_regions);

        // HGA charges exactly one whole-graph candidate per read.
        let hga = HgaLike::new(dataset.graph().clone());
        let (_, times) = hga.map_read(&dataset.reads[0].seq);
        assert_eq!(times.candidates, 1);
        assert_eq!(times.aligned_chars, dataset.graph().total_chars());

        // Merging sums the workload counters like the durations.
        let mut total = StepTimes::default();
        total.merge(&times);
        total.merge(&times);
        assert_eq!(total.candidates, 2);
        assert_eq!(total.aligned_chars, 2 * dataset.graph().total_chars());
    }

    #[test]
    fn names_are_distinct() {
        let dataset = DatasetConfig::tiny(69).illumina(100);
        let a = GraphAlignerLike::new(dataset.graph().clone(), SegramConfig::short_reads());
        let b = VgLike::new(dataset.graph().clone(), SegramConfig::short_reads());
        let c = HgaLike::new(dataset.graph().clone());
        let names = [a.name(), b.name(), c.name()];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
