//! # segram-filter
//!
//! Pre-alignment filtering for the SeGraM reproduction.
//!
//! The paper's MinSeed deliberately performs no filtering beyond the
//! minimizer frequency threshold (Section 11.4), and footnote 6 points
//! out that "employing a filtering approach as part of our design would
//! increase SeGraM's performance and efficiency, a study we leave to
//! future work", citing the SHD / GateKeeper / Shouji / SneakySnake /
//! GRIM-Filter line of work. This crate carries out that study: it
//! implements the algorithmic cores of that filter family and adapts them
//! to graph candidate regions.
//!
//! Every filter is a **sound lower bound** on semi-global edit distance
//! (the [`EditLowerBound`] trait): it may let hopeless candidates through
//! (costing only wasted alignment), but it never rejects a candidate the
//! aligner would have accepted. The property tests check each bound
//! against the exact DP distance on randomized inputs.
//!
//! | Filter | Idea | Cost | Tightness |
//! |---|---|---|---|
//! | [`BaseCountFilter`] | character composition | `O(m + n)` | weakest |
//! | [`QGramFilter`] | q-gram lemma (GRIM-Filter) | `O(m + n)` | moderate |
//! | [`ShiftedHammingFilter`] | shift-envelope membership (SHD) | `O(m + n)` | moderate |
//! | [`SneakySnakeFilter`] | greedy diagonal runs (SneakySnake) | `O(m·k)` worst | tightest |
//!
//! Use [`FilterSpec`] to pick a filter in configuration structs and
//! [`filter_region`] to apply one soundly to a graph region (branching
//! regions bypass the position-based filters; see its docs).
//!
//! ## Example
//!
//! ```
//! use segram_filter::{EditLowerBound, SneakySnakeFilter};
//! use segram_graph::DnaSeq;
//!
//! let text: DnaSeq = "ACGTACGTACGTACGT".parse()?;
//! let junk: DnaSeq = "GGGGGGGGCCCCCCCC".parse()?;
//! let read = text.slice(2, 14);
//! assert!(SneakySnakeFilter.accepts(read.as_slice(), text.as_slice(), 1));
//! assert!(!SneakySnakeFilter.accepts(read.as_slice(), junk.as_slice(), 1));
//! # Ok::<(), segram_graph::GraphError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod base_count;
mod bound;
mod qgram;
mod region;
mod shd;
mod snake;

pub use base_count::BaseCountFilter;
pub use bound::{EditLowerBound, FilterSpec};
pub use qgram::QGramFilter;
pub use region::{filter_region, FilterStats, RegionVerdict};
pub use shd::ShiftedHammingFilter;
pub use snake::SneakySnakeFilter;
