//! Random string generation from a small regex subset, covering the
//! patterns the workspace's property tests use as proptest-style string
//! strategies:
//!
//! * literal characters and `\n` / `\t` / `\\` escapes;
//! * character classes `[...]` with ranges (`A-Z`, ` -~`) and escapes;
//! * `\PC` — any non-control character (proptest's printable class);
//! * `{m,n}` repetition after any of the above.
//!
//! Unsupported syntax panics with the offending pattern, so a new test
//! pattern fails loudly instead of silently generating garbage.

use crate::rng::{Rng, RngCore};

/// One generatable unit of the pattern.
#[derive(Clone, Debug)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// One of an explicit set of characters.
    Class(Vec<char>),
    /// Any non-control character (`\PC`).
    Printable,
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// A parsed pattern, reusable across generation calls.
#[derive(Clone, Debug)]
pub struct Pattern {
    pieces: Vec<Piece>,
}

/// Mostly printable ASCII, with a few multi-byte characters mixed in so
/// parsers see real UTF-8 (proptest's `\PC` also draws beyond ASCII).
const EXOTIC: &[char] = &['é', 'Ω', 'λ', '→', '日', '𝕊'];

impl Pattern {
    /// Parses `pattern`.
    ///
    /// # Panics
    ///
    /// Panics on syntax outside the supported subset.
    pub fn parse(pattern: &str) -> Self {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        let c = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                        match c {
                            ']' => break,
                            '\\' => set.push(unescape(chars.next(), pattern)),
                            c => {
                                // Range `a-z` unless `-` is last-in-class.
                                if chars.peek() == Some(&'-') {
                                    let mut look = chars.clone();
                                    look.next(); // the '-'
                                    match look.peek() {
                                        Some(']') | None => set.push(c),
                                        Some(&hi) => {
                                            chars.next();
                                            chars.next();
                                            assert!(
                                                c <= hi,
                                                "inverted range {c}-{hi} in {pattern:?}"
                                            );
                                            set.extend(c..=hi);
                                        }
                                    }
                                } else {
                                    set.push(c);
                                }
                            }
                        }
                    }
                    assert!(!set.is_empty(), "empty class in {pattern:?}");
                    Atom::Class(set)
                }
                '\\' => match chars.next() {
                    Some('P') => {
                        let category = chars.next();
                        assert_eq!(
                            category,
                            Some('C'),
                            "only \\PC is supported, got \\P{category:?} in {pattern:?}"
                        );
                        Atom::Printable
                    }
                    other => Atom::Literal(unescape(other, pattern)),
                },
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '^' | '$' => {
                    panic!("unsupported regex syntax {c:?} in {pattern:?}")
                }
                c => Atom::Literal(c),
            };
            // Optional {m,n} quantifier.
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let (lo, hi) = spec
                    .split_once(',')
                    .unwrap_or_else(|| panic!("only {{m,n}} quantifiers supported in {pattern:?}"));
                (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                )
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted quantifier in {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        Self { pieces }
    }

    /// Generates one string.
    pub fn generate<R: RngCore>(&self, rng: &mut R) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let count = rng.gen_range(piece.min..=piece.max);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.gen_range(0..set.len())]),
                    Atom::Printable => {
                        // Mostly ASCII printable; occasionally exotic.
                        if rng.gen_bool(0.05) {
                            out.push(EXOTIC[rng.gen_range(0..EXOTIC.len())]);
                        } else {
                            out.push(char::from(rng.gen_range(0x20u8..0x7f)));
                        }
                    }
                }
            }
        }
        out
    }
}

fn unescape(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some('0') => '\0',
        Some(c @ ('\\' | '[' | ']' | '{' | '}' | '-' | '.' | '/' | '+' | '*' | '?')) => c,
        other => panic!("unsupported escape \\{other:?} in {pattern:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{ChaCha8Rng, SeedableRng};

    #[test]
    fn class_with_ranges_and_trailing_dash() {
        let p = Pattern::parse("[A-Za-z0-9_.:/-]{1,20}");
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let s = p.generate(&mut rng);
            assert!((1..=20).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.:/-".contains(c)));
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let p = Pattern::parse("[ -~\\t\\n]{0,40}");
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            for c in p.generate(&mut rng).chars() {
                assert!((' '..='~').contains(&c) || c == '\t' || c == '\n', "{c:?}");
            }
        }
    }

    #[test]
    fn printable_class_excludes_controls() {
        let p = Pattern::parse("\\PC{0,100}");
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!p.generate(&mut rng).chars().any(char::is_control));
        }
    }

    #[test]
    fn concatenation_of_class_and_printable() {
        let p = Pattern::parse("[ SLH]\\PC{0,20}");
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..100 {
            let s = p.generate(&mut rng);
            assert!(" SLH".contains(s.chars().next().unwrap()), "{s:?}");
        }
    }

    #[test]
    fn zero_width_is_possible() {
        let p = Pattern::parse("[a]{0,3}");
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let lens: std::collections::HashSet<usize> =
            (0..200).map(|_| p.generate(&mut rng).len()).collect();
        assert!(lens.contains(&0) && lens.contains(&3));
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn alternation_is_rejected() {
        Pattern::parse("a|b");
    }
}
