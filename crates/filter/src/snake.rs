//! The greedy diagonal-run bound (SneakySnake's maze solver).

use segram_graph::Base;

use crate::EditLowerBound;

/// Bounds edit distance by greedily covering the read with maximal
/// diagonal match runs, paying one edit between consecutive runs.
///
/// This is the Single Net Routing idea of SneakySnake \[Alser+ 2020\]
/// (cited by the paper's footnote 6): view the read×text comparison as a
/// maze whose rows are diagonals (shifts) and whose obstacles are
/// mismatches; the minimum number of obstacles any left-to-right path
/// crosses lower-bounds the edit distance.
///
/// The greedy solver is sound: an optimal alignment with `d` edits splits
/// the read into at most `d + 1` match segments, each lying on one
/// diagonal of the envelope. Whenever the solver stands at read position
/// `p` inside true segment `[s_j, e_j)`, its maximal-run extension reaches
/// at least `e_j`, so it pays at most one edit per true edit and its count
/// never exceeds `d`.
///
/// Like [`ShiftedHammingFilter`](crate::ShiftedHammingFilter), the
/// diagonal envelope is widened to `[-k, (|text| - |read|) + k]` to cover
/// the free text start of SeGraM's candidate regions. Worst-case cost is
/// `O(|read| · |envelope|)`, the tightest-but-dearest of the four filters.
///
/// # Examples
///
/// ```
/// use segram_filter::{EditLowerBound, SneakySnakeFilter};
/// use segram_graph::DnaSeq;
///
/// let text: DnaSeq = "ACGTACGTACGTACGT".parse()?;
/// let read: DnaSeq = "ACGTAGGTACGT".parse()?; // one substitution
/// let bound = SneakySnakeFilter.lower_bound(read.as_slice(), text.as_slice(), 3);
/// assert!(bound <= 1);
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SneakySnakeFilter;

impl EditLowerBound for SneakySnakeFilter {
    fn name(&self) -> &'static str {
        "sneaky-snake"
    }

    fn lower_bound(&self, read: &[Base], text: &[Base], k: u32) -> u32 {
        if read.is_empty() {
            return 0;
        }
        let (m, n) = (read.len() as i64, text.len() as i64);
        let lo = -i64::from(k);
        let hi = (n - m) + i64::from(k);
        if hi < lo {
            // Text shorter than the read by more than k: every placement
            // needs at least the length difference in edits; fall back to
            // the trivial bound.
            return (m - n) as u32;
        }

        // Length of the match run on diagonal `s` starting at read
        // position `p`.
        let run_len = |s: i64, mut p: i64| -> i64 {
            let start = p;
            while p < m {
                let t = p + s;
                if t < 0 || t >= n || read[p as usize] != text[t as usize] {
                    break;
                }
                p += 1;
            }
            p - start
        };

        let mut edits = 0u32;
        let mut pos = 0i64;
        while pos < m {
            let mut best = 0i64;
            for s in lo..=hi {
                best = best.max(run_len(s, pos));
                if pos + best >= m {
                    break;
                }
            }
            pos += best;
            if pos < m {
                // Cross one obstacle: consume the unmatched character.
                edits += 1;
                pos += 1;
                if edits > k {
                    // The caller only distinguishes `<= k` from `> k`.
                    return edits;
                }
            }
        }
        edits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_graph::DnaSeq;

    fn bases(s: &str) -> Vec<Base> {
        s.parse::<DnaSeq>().unwrap().into_bases()
    }

    #[test]
    fn exact_substring_costs_zero() {
        let text = bases("TTTTACGTACGTTTTT");
        let read = bases("ACGTACGT");
        assert_eq!(SneakySnakeFilter.lower_bound(&read, &text, 0), 0);
    }

    #[test]
    fn each_isolated_substitution_costs_at_most_one() {
        let text = bases("ACGTACGTACGTACGTACGTACGT");
        let mut read = text.clone();
        for &i in &[3usize, 11, 19] {
            read[i] = match read[i] {
                Base::A => Base::C,
                _ => Base::A,
            };
        }
        let bound = SneakySnakeFilter.lower_bound(&read, &text, 5);
        assert!(bound <= 3, "bound {bound} for 3 substitutions");
        assert!(bound >= 1, "three mismatches cannot be matched away here");
    }

    #[test]
    fn deletion_in_read_is_within_one_edit() {
        let text = bases("ACGTACGTACGTACGT");
        let mut read = text.clone();
        read.remove(6);
        assert!(SneakySnakeFilter.lower_bound(&read, &text, 3) <= 1);
    }

    #[test]
    fn hopeless_pairs_exceed_the_threshold() {
        let read = bases("AAAAAAAAAAAAAAAA");
        let text = bases("CGCGCGCGCGCGCGCG");
        let bound = SneakySnakeFilter.lower_bound(&read, &text, 3);
        assert!(bound > 3);
    }

    #[test]
    fn text_much_shorter_than_read_uses_length_bound() {
        let read = bases("ACGTACGT");
        let text = bases("AC");
        assert!(SneakySnakeFilter.lower_bound(&read, &text, 1) >= 6);
    }

    #[test]
    fn tighter_than_or_equal_to_shd_on_clustered_errors() {
        use crate::ShiftedHammingFilter;
        let text = bases("ACGTACGTACGTACGTACGTACGTACGTACGT");
        let mut read = text.clone();
        // Three adjacent substitutions: SHD sees each char still matching
        // somewhere in the envelope (bound 0-ish); the snake must cross
        // them in sequence.
        for &i in &[12usize, 13, 14] {
            read[i] = match read[i] {
                Base::G => Base::T,
                _ => Base::G,
            };
        }
        let k = 4;
        let snake = SneakySnakeFilter.lower_bound(&read, &text, k);
        let shd = ShiftedHammingFilter.lower_bound(&read, &text, k);
        assert!(snake >= shd);
    }
}
