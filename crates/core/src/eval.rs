//! Mapping-quality evaluation against simulation ground truth: the
//! sensitivity metric of §11.4 ("the metric that measures the accuracy of
//! a seeding or filtering mechanism in keeping the seeds that would lead
//! to the optimal alignment") plus standard mapper accuracy accounting.

use segram_sim::SimulatedRead;

use crate::mapper::SegramMapper;

/// Aggregate evaluation of a mapper over a truth-labelled read set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Evaluation {
    /// Total reads evaluated.
    pub reads: usize,
    /// Reads that produced a mapping.
    pub mapped: usize,
    /// Mapped reads whose location matches the simulated truth within the
    /// tolerance.
    pub correct: usize,
    /// Mapped reads at a wrong location.
    pub mismapped: usize,
    /// Reads with no mapping at all.
    pub unmapped: usize,
    /// Sum of reported edit distances over mapped reads.
    pub total_edits: u64,
    /// Sum of simulator-injected errors over all reads (the lower bound on
    /// achievable edits when every variant is represented in the graph).
    pub total_injected_errors: u64,
}

impl Evaluation {
    /// Fraction of reads mapped.
    pub fn mapped_fraction(&self) -> f64 {
        fraction(self.mapped, self.reads)
    }

    /// Fraction of mapped reads at the true location (precision-like).
    pub fn precision(&self) -> f64 {
        fraction(self.correct, self.mapped)
    }

    /// Fraction of all reads correctly mapped (recall/sensitivity-like).
    pub fn sensitivity(&self) -> f64 {
        fraction(self.correct, self.reads)
    }

    /// Mean reported edits per mapped read.
    pub fn mean_edits(&self) -> f64 {
        if self.mapped == 0 {
            0.0
        } else {
            self.total_edits as f64 / self.mapped as f64
        }
    }

    /// How close reported edits come to the injected-error lower bound
    /// (1.0 = every alignment is as clean as the simulation allows; values
    /// above 1.0 indicate residual reference bias or mis-mappings).
    pub fn edit_inflation(&self) -> f64 {
        if self.total_injected_errors == 0 {
            return if self.total_edits == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.total_edits as f64 / self.total_injected_errors as f64
    }
}

fn fraction(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Evaluates `mapper` over truth-labelled reads; a mapping is *correct*
/// when its linear start is within `tolerance` of the simulated start.
pub fn evaluate(mapper: &SegramMapper, reads: &[SimulatedRead], tolerance: u64) -> Evaluation {
    let mut eval = Evaluation {
        reads: reads.len(),
        ..Evaluation::default()
    };
    for read in reads {
        eval.total_injected_errors += u64::from(read.injected_errors);
        let (mapping, _) = mapper.map_read(&read.seq);
        match mapping {
            Some(m) => {
                eval.mapped += 1;
                eval.total_edits += u64::from(m.alignment.edit_distance);
                if m.linear_start.abs_diff(read.true_start_linear) <= tolerance {
                    eval.correct += 1;
                } else {
                    eval.mismapped += 1;
                }
            }
            None => eval.unmapped += 1,
        }
    }
    eval
}

/// Seeding sensitivity (§11.4): fraction of reads for which MinSeed keeps
/// at least one seed region covering the true location — independent of
/// the alignment step.
pub fn seeding_sensitivity(mapper: &SegramMapper, reads: &[SimulatedRead], tolerance: u64) -> f64 {
    if reads.is_empty() {
        return 0.0;
    }
    let mut covered = 0usize;
    for read in reads {
        let result = mapper.seed(&read.seq);
        let truth = read.true_start_linear;
        if result
            .regions
            .iter()
            .any(|r| r.start.saturating_sub(tolerance) <= truth && truth <= r.end + tolerance)
        {
            covered += 1;
        }
    }
    covered as f64 / reads.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegramConfig;
    use segram_sim::DatasetConfig;

    fn setup() -> (SegramMapper, Vec<SimulatedRead>) {
        let dataset = DatasetConfig::tiny(141).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        (mapper, dataset.reads)
    }

    #[test]
    fn evaluation_counts_are_consistent() {
        let (mapper, reads) = setup();
        let eval = evaluate(&mapper, &reads, 100);
        assert_eq!(eval.reads, reads.len());
        assert_eq!(eval.mapped + eval.unmapped, eval.reads);
        assert_eq!(eval.correct + eval.mismapped, eval.mapped);
        assert!(eval.sensitivity() <= eval.mapped_fraction());
        assert!(eval.precision() <= 1.0);
    }

    #[test]
    fn mapper_is_accurate_on_clean_data() {
        let (mapper, reads) = setup();
        let eval = evaluate(&mapper, &reads, 100);
        assert!(eval.sensitivity() > 0.7, "{eval:?}");
        // Alignments should not need many more edits than were injected.
        assert!(eval.edit_inflation() < 2.0, "{eval:?}");
    }

    #[test]
    fn seeding_sensitivity_bounds_mapping_sensitivity() {
        let (mapper, reads) = setup();
        let seeding = seeding_sensitivity(&mapper, &reads, 100);
        let eval = evaluate(&mapper, &reads, 100);
        // You cannot map correctly where you never seeded.
        assert!(
            seeding + 1e-9 >= eval.sensitivity(),
            "{seeding} vs {}",
            eval.sensitivity()
        );
        assert!(seeding > 0.9, "seeding sensitivity {seeding}");
    }

    #[test]
    fn empty_inputs() {
        let (mapper, _) = setup();
        let eval = evaluate(&mapper, &[], 10);
        assert_eq!(eval.reads, 0);
        assert_eq!(eval.mapped_fraction(), 0.0);
        assert_eq!(seeding_sensitivity(&mapper, &[], 10), 0.0);
    }

    #[test]
    fn edit_inflation_handles_zero_errors() {
        let eval = Evaluation {
            reads: 1,
            mapped: 1,
            total_edits: 0,
            total_injected_errors: 0,
            ..Evaluation::default()
        };
        assert_eq!(eval.edit_inflation(), 1.0);
    }
}
