#!/usr/bin/env bash
# Tier-1 CI gate for the SeGraM reproduction workspace.
#
# Fully offline by construction: every dependency is a workspace path
# dependency (see segram-testkit), so this script must succeed on a
# machine with no network access and no crates.io cache. `--locked`
# enforces that the committed Cargo.lock stays authoritative.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --locked

echo "== cargo test -q =="
cargo test -q --locked

echo "== cargo fmt --check =="
cargo fmt --check

echo "== end-to-end determinism gate (threads 1 vs 4) =="
# Multi-threaded mapping must be byte-identical to serial mapping: the
# MapEngine numbers batches and releases them to the output writer in
# input order, so SAM/GAF bytes cannot depend on --threads.
GATE_DIR="$(mktemp -d)"
trap 'rm -rf "$GATE_DIR"' EXIT
SEGRAM=target/release/segram
"$SEGRAM" simulate --out-prefix "$GATE_DIR/ds" \
    --length 30000 --reads 16 --read-len 120 --seed 5 > /dev/null
for fmt in sam gaf; do
    "$SEGRAM" map --graph "$GATE_DIR/ds.gfa" --reads "$GATE_DIR/ds.fq" \
        --format "$fmt" --threads 1 --both-strands \
        --output "$GATE_DIR/t1.$fmt" > /dev/null
    "$SEGRAM" map --graph "$GATE_DIR/ds.gfa" --reads "$GATE_DIR/ds.fq" \
        --format "$fmt" --threads 4 --both-strands \
        --output "$GATE_DIR/t4.$fmt" > /dev/null
    diff "$GATE_DIR/t1.$fmt" "$GATE_DIR/t4.$fmt" \
        || { echo "FAIL: $fmt output differs between --threads 1 and 4"; exit 1; }
    echo "  $fmt: identical"
done

echo "CI OK"
