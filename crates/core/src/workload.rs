//! Workload measurement: runs the software pipeline over a dataset and
//! distills the per-read quantities ([`segram_hw::SeedWorkload`]) that
//! parameterize the hardware performance model — the same
//! "measure-then-model" methodology the paper uses (Section 10).

use segram_graph::DnaSeq;
use segram_hw::SeedWorkload;
use segram_sim::SimulatedRead;

use crate::mapper::SegramMapper;
use crate::pipeline::{EngineConfig, MapEngine};

/// Aggregated measurement over a read set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkloadMeasurement {
    /// Number of reads measured.
    pub reads: usize,
    /// The averaged hardware workload.
    pub workload: SeedWorkload,
    /// Fraction of reads that produced a mapping.
    pub mapped_fraction: f64,
    /// Fraction of mapped reads whose location is within `tolerance` of
    /// the simulated truth.
    pub accuracy: f64,
}

/// Runs `mapper` over `reads` and measures the averaged seeding workload
/// plus mapping accuracy (truth within `tolerance` linear characters).
pub fn measure_workload(
    mapper: &SegramMapper,
    reads: &[SimulatedRead],
    tolerance: u64,
) -> WorkloadMeasurement {
    if reads.is_empty() {
        return WorkloadMeasurement::default();
    }
    let mut minimizers = 0usize;
    let mut filtered = 0usize;
    let mut seeds = 0usize;
    let mut region_len = 0u64;
    let mut regions = 0usize;
    let mut mapped = 0usize;
    let mut accurate = 0usize;
    let mut read_len = 0usize;
    for read in reads {
        read_len += read.seq.len();
        let (mapping, stats) = mapper.map_read(&read.seq);
        minimizers += stats.minimizers;
        filtered += stats.filtered_minimizers;
        seeds += stats.seed_locations;
        region_len += stats.total_region_len;
        regions += stats.regions_aligned;
        if let Some(m) = mapping {
            mapped += 1;
            if m.linear_start.abs_diff(read.true_start_linear) <= tolerance {
                accurate += 1;
            }
        }
    }
    let n = reads.len() as f64;
    WorkloadMeasurement {
        reads: reads.len(),
        workload: SeedWorkload {
            read_len: read_len / reads.len(),
            minimizers_per_read: minimizers as f64 / n,
            surviving_minimizers: (minimizers - filtered) as f64 / n,
            seeds_per_read: (seeds as f64 / n).max(1.0),
            avg_region_len: if regions == 0 {
                0.0
            } else {
                region_len as f64 / regions as f64
            },
        },
        mapped_fraction: mapped as f64 / n,
        accuracy: if mapped == 0 {
            0.0
        } else {
            accurate as f64 / mapped as f64
        },
    }
}

/// Maps a dataset with `threads` worker threads, the instrument behind
/// the Observation 4 thread-scaling experiment. Returns wall-clock
/// seconds and the reads mapped.
///
/// A thin wrapper over [`MapEngine`]: one engine run with the requested
/// thread count and an outcome-discarding sink.
pub fn map_with_threads(
    mapper: &SegramMapper,
    reads: &[SimulatedRead],
    threads: usize,
) -> (f64, usize) {
    let mut config = EngineConfig::with_threads(threads);
    // Size batches so every worker gets several, even on the small read
    // sets the scaling experiments use — with the engine's default batch
    // size, 60 reads would form only 4 batches and leave workers idle at
    // 8 threads, measuring batch granularity instead of mapper scaling.
    config.batch_size = reads
        .len()
        .div_ceil(threads.max(1) * 4)
        .clamp(1, config.batch_size);
    let engine = MapEngine::new(mapper, config);
    let start = std::time::Instant::now();
    let report = engine.map_stream(reads.iter(), |read| &read.seq, |_, _| {});
    (start.elapsed().as_secs_f64(), report.mapped)
}

/// Convenience: measure a workload straight from plain sequences with no
/// truth tracking (for external read sets).
pub fn measure_sequences(mapper: &SegramMapper, reads: &[DnaSeq]) -> SeedWorkload {
    if reads.is_empty() {
        return SeedWorkload::default();
    }
    let mut minimizers = 0usize;
    let mut filtered = 0usize;
    let mut seeds = 0usize;
    let mut region_len = 0u64;
    let mut regions = 0usize;
    let mut read_len = 0usize;
    for read in reads {
        read_len += read.len();
        let result = mapper.seed(read);
        minimizers += result.stats.minimizers;
        filtered += result.stats.filtered_minimizers;
        seeds += result.stats.seed_locations;
        regions += result.regions.len();
        region_len += result.regions.iter().map(|r| r.len()).sum::<u64>();
    }
    let n = reads.len() as f64;
    SeedWorkload {
        read_len: read_len / reads.len(),
        minimizers_per_read: minimizers as f64 / n,
        surviving_minimizers: (minimizers - filtered) as f64 / n,
        seeds_per_read: (seeds as f64 / n).max(1.0),
        avg_region_len: if regions == 0 {
            0.0
        } else {
            region_len as f64 / regions as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SegramConfig;
    use segram_sim::DatasetConfig;

    #[test]
    fn measurement_produces_plausible_workload() {
        let dataset = DatasetConfig::tiny(81).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let m = measure_workload(&mapper, &dataset.reads, 100);
        assert_eq!(m.reads, dataset.reads.len());
        assert!(m.workload.minimizers_per_read > 1.0);
        assert!(m.workload.seeds_per_read >= 1.0);
        assert!(m.workload.read_len == 100);
        assert!(m.mapped_fraction > 0.8);
        assert!(m.accuracy > 0.8);
    }

    #[test]
    fn threaded_mapping_matches_serial_counts() {
        let dataset = DatasetConfig::tiny(83).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let (_, serial) = map_with_threads(&mapper, &dataset.reads, 1);
        let (_, parallel) = map_with_threads(&mapper, &dataset.reads, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_reads_yield_default() {
        let dataset = DatasetConfig::tiny(85).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let m = measure_workload(&mapper, &[], 10);
        assert_eq!(m.reads, 0);
        let w = measure_sequences(&mapper, &[]);
        assert_eq!(w.read_len, 0);
    }

    #[test]
    fn sequence_measurement_agrees_with_read_measurement() {
        let dataset = DatasetConfig::tiny(87).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let seqs: Vec<_> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let a = measure_workload(&mapper, &dataset.reads, 100).workload;
        let b = measure_sequences(&mapper, &seqs);
        assert_eq!(a.read_len, b.read_len);
        assert!((a.minimizers_per_read - b.minimizers_per_read).abs() < 1e-9);
    }
}
