//! Property tests for MinSeed's substrate: minimizer extraction and the
//! three-level hash index.

use segram_graph::{linear_graph, Base, DnaSeq, GraphPos};
use segram_index::{
    extract_minimizers, frequency_threshold, pack_kmer, GraphIndex, MinSeed, MinSeedConfig,
    Minimizer, MinimizerScheme,
};
use segram_testkit::prelude::*;

fn arb_seq(min: usize, max: usize) -> impl Strategy<Value = DnaSeq> {
    prop::collection::vec(0u8..4, min..=max)
        .prop_map(|codes| codes.into_iter().map(Base::from_code_masked).collect())
}

/// Brute-force minimizer selection for cross-checking.
fn brute_force(seq: &DnaSeq, scheme: &MinimizerScheme) -> Vec<Minimizer> {
    let (w, k) = (scheme.w, scheme.k);
    let bases = seq.as_slice();
    if bases.len() < k {
        return Vec::new();
    }
    let kmers: Vec<(u64, u64)> = bases
        .windows(k)
        .map(|win| {
            let packed = pack_kmer(win);
            (scheme.rank(packed), packed)
        })
        .collect();
    let mut out: Vec<Minimizer> = Vec::new();
    let n = kmers.len();
    let windows = if n >= w { n - w + 1 } else { 1 };
    for start in 0..windows {
        let end = (start + w).min(n);
        let (idx, &(rank, packed)) = kmers[start..end]
            .iter()
            .enumerate()
            .min_by_key(|&(i, &(r, _))| (r, i))
            .map(|(i, v)| (start + i, v))
            .unwrap();
        let candidate = Minimizer {
            rank,
            packed,
            pos: idx as u32,
        };
        if out.last() != Some(&candidate) {
            out.push(candidate);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The O(m) deque extraction equals the O(m*w) brute force.
    #[test]
    fn extraction_matches_brute_force(
        seq in arb_seq(1, 200),
        w in 1usize..12,
        k in 1usize..10,
    ) {
        for scheme in [MinimizerScheme::new(w, k), MinimizerScheme::lexicographic(w, k)] {
            let fast = extract_minimizers(&seq, &scheme);
            let slow = brute_force(&seq, &scheme);
            prop_assert_eq!(fast, slow);
        }
    }

    /// Two strings sharing a window-length exact substring share a
    /// minimizer (Section 6's guarantee).
    #[test]
    fn shared_window_shares_minimizer(
        shared in arb_seq(30, 60),
        prefix_a in arb_seq(0, 20),
        prefix_b in arb_seq(0, 20),
        w in 2usize..8,
    ) {
        let k = 7usize;
        prop_assume!(shared.len() >= w + k - 1);
        let scheme = MinimizerScheme::new(w, k);
        let mut a = prefix_a.clone();
        a.extend_from_seq(&shared);
        let mut b = prefix_b.clone();
        b.extend_from_seq(&shared);
        let ka: std::collections::HashSet<u64> =
            extract_minimizers(&a, &scheme).iter().map(|m| m.packed).collect();
        let kb: std::collections::HashSet<u64> =
            extract_minimizers(&b, &scheme).iter().map(|m| m.packed).collect();
        prop_assert!(!ka.is_disjoint(&kb));
    }

    /// Index completeness: every minimizer extracted from any node is
    /// findable, and lookups return no extra locations.
    #[test]
    fn index_is_complete_and_sound(text in arb_seq(64, 400), bucket_bits in 2u32..12) {
        let graph = linear_graph(&text, 48).unwrap();
        let scheme = MinimizerScheme::new(4, 8);
        let index = GraphIndex::build(&graph, scheme, bucket_bits);
        let mut expected: std::collections::HashMap<u64, Vec<GraphPos>> = Default::default();
        for node in graph.node_ids() {
            for m in extract_minimizers(graph.seq(node), &scheme) {
                expected.entry(m.rank).or_default().push(GraphPos::new(node, m.pos));
            }
        }
        for (hash, mut positions) in expected {
            positions.sort();
            let mut got = index.locations(hash).to_vec();
            got.sort();
            prop_assert_eq!(got, positions);
        }
    }

    /// Seeding a perfect substring read always yields a region covering
    /// its true location.
    #[test]
    fn seeding_covers_true_location(text in arb_seq(400, 800), offset in 0usize..200) {
        // Single-node graph: no k-mers are lost at node boundaries, so the
        // w+k-1 sharing guarantee applies directly.
        let graph = linear_graph(&text, text.len()).unwrap();
        let scheme = MinimizerScheme::new(5, 9);
        let index = GraphIndex::build(&graph, scheme, 10);
        let read_len = 120usize.min(text.len() - offset);
        prop_assume!(read_len >= 60);
        let read = text.slice(offset, offset + read_len);
        let minseed = MinSeed::new(&graph, &index, MinSeedConfig {
            error_rate: 0.0,
            frequency_threshold: u32::MAX,
        });
        let result = minseed.seed(&read);
        // Node boundaries never split k-mers in this linear layout only if
        // aligned; minimizers may straddle nodes and be missed, so require
        // coverage only when some minimizer was found.
        prop_assume!(result.stats.minimizers > 0 && !result.regions.is_empty());
        prop_assert!(
            result.regions.iter().any(|r| r.start <= offset as u64
                && r.end >= (offset + read_len) as u64),
            "no region covers [{}, {})", offset, offset + read_len
        );
    }

    /// The frequency threshold keeps at least (1 - frac) of minimizers.
    #[test]
    fn threshold_keeps_requested_fraction(text in arb_seq(300, 600), frac in 0.0f64..0.5) {
        let graph = linear_graph(&text, 64).unwrap();
        let index = GraphIndex::build(&graph, MinimizerScheme::new(4, 7), 8);
        prop_assume!(index.distinct_minimizers() > 10);
        let threshold = frequency_threshold(&index, frac);
        let kept = index.frequencies().filter(|&f| f <= threshold).count();
        let kept_frac = kept as f64 / index.distinct_minimizers() as f64;
        prop_assert!(kept_frac >= 1.0 - frac - 0.25, "kept {kept_frac} for frac {frac}");
    }
}
