//! # segram-core
//!
//! The paper's primary contribution as a library: the **SeGraM** universal
//! genomic mapping pipeline (ISCA 2022) — MinSeed seeding + BitAlign
//! alignment — supporting all three use cases of Section 9:
//!
//! 1. **End-to-end mapping** ([`SegramMapper::map_read`]), for
//!    sequence-to-graph and (via [`SegramMapper::new_linear`])
//!    sequence-to-sequence mapping, short and long reads;
//! 2. **Standalone alignment** ([`SegramMapper::align_region`]);
//! 3. **Standalone seeding** ([`SegramMapper::seed`]).
//!
//! The mapping flow itself lives in the [`pipeline`] module as explicit
//! stages ([`Seeder`] → [`Prefilter`] → [`Aligner`]) driven by a
//! [`MapPipeline`]; [`MapEngine`] batches read streams over worker
//! threads with order-preserving output.
//!
//! It also hosts the software baseline mappers used by the evaluation
//! ([`GraphAlignerLike`], [`VgLike`], [`HgaLike`]) and the workload
//! measurement that parameterizes the `segram-hw` performance model
//! ([`measure_workload`]). Every mapper — SeGraM and the baselines — is a
//! first-class engine [`Backend`] selected by [`BackendKind`], so the
//! same read stream drives all of them under one methodology (`segram map
//! --backend ...`, `segram eval compare`, [`run_backend_eval`]).
//!
//! ## Example
//!
//! ```
//! use segram_core::{SegramConfig, SegramMapper};
//! use segram_sim::DatasetConfig;
//!
//! let dataset = DatasetConfig::tiny(3).illumina(100);
//! let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
//! let (mapping, stats) = mapper.map_read(&dataset.reads[0].seq);
//! assert!(mapping.is_some());
//! assert!(stats.minimizers > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod baseline;
mod config;
mod eval;
mod mapper;
mod pangenome;
pub mod pipeline;
mod sam;
mod shard;
mod workload;

pub use backend::{
    run_backend_eval, Backend, BackendEval, BackendKind, BaselineAdapter, EvalRead,
    MODELED_BITALIGN_NS, MODELED_MINSEED_NS, MODELED_REGION_CHARS,
};
pub use baseline::{BaselineMapper, BaselineMapping, GraphAlignerLike, HgaLike, StepTimes, VgLike};
pub use config::SegramConfig;
pub use eval::{evaluate, seeding_sensitivity, Evaluation};
pub use mapper::{MapStats, Mapping, ReadMapper, SegramMapper};
pub use pangenome::{Chromosome, Pangenome, PangenomeMapping};
pub use pipeline::{
    gaf_record_for, sam_record_for, Aligner, BatchBounds, BatchTrajectory, BitAlignStage,
    CancelToken, DecodedBlock, ElasticReport, ElasticScheduler, EngineBusy, EngineConfig,
    EngineOptions, EngineReport, MapEngine, MapPipeline, MinSeedStage, MultiConfig, MultiEngine,
    PoolCounters, PoolReport, Prefilter, Priority, QueueDelayStats, QueueStats, ReadOutcome,
    RebalanceConfig, Rebalancer, RequestHandle, RequestPanicked, RouteHook, Seeder, ShardAffinity,
    ShardRouter, SpecPrefilter, WorkQueue,
};
pub use sam::{mapq_estimate, sam_document, SamRecord};
pub use shard::{
    balance_loads, load_imbalance, DeltaSwapReport, IndexShard, ShardStats, ShardedIndex,
    StoreLineage,
};
pub use workload::{map_with_threads, measure_sequences, measure_workload, WorkloadMeasurement};
