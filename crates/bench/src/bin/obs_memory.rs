//! **Observations 2 & 3 (memory system)** — replays the memory access
//! patterns of the alignment and seeding steps against modeled Xeon-like
//! caches, reproducing the *mechanism* behind the paper's Section 3
//! profiling: alignment's dynamic-programming working set thrashes the
//! cache hierarchy (Observation 2: GraphAligner shows a 41 % cache miss
//! rate) while BitAlign's systolic bitvector traffic stays cache-resident;
//! and seeding's hash-table lookups are scattered random accesses that
//! miss every cache level and pay DRAM latency (Observation 3).
//!
//! Traces are generated from the actual data-structure layouts (Figures 5
//! and 6 byte formulas) at the experiment scale.

use segram_bench::{header, write_results, Scale};
use segram_core::{SegramConfig, SegramMapper};
use segram_hw::{CacheConfig, CacheSim, CacheStats};
use segram_index::extract_minimizers;
use segram_testkit::rng::ChaCha8Rng;
use segram_testkit::rng::{Rng, SeedableRng};
use segram_testkit::Serialize;

/// A three-level inclusive cache hierarchy: L1 misses go to L2, L2 misses
/// to L3, L3 misses to DRAM.
struct Hierarchy {
    l1: CacheSim,
    l2: CacheSim,
    l3: CacheSim,
    dram_accesses: u64,
}

impl Hierarchy {
    fn xeon_like() -> Self {
        Self {
            l1: CacheSim::new(CacheConfig::l1d()),
            l2: CacheSim::new(CacheConfig::l2()),
            l3: CacheSim::new(CacheConfig::l3_slice()),
            dram_accesses: 0,
        }
    }

    fn access(&mut self, addr: u64) {
        if self.l1.access(addr) {
            return;
        }
        if self.l2.access(addr) {
            return;
        }
        if !self.l3.access(addr) {
            self.dram_accesses += 1;
        }
    }

    fn run(&mut self, trace: impl IntoIterator<Item = u64>) {
        for addr in trace {
            self.access(addr);
        }
    }
}

#[derive(Serialize)]
struct TraceRow {
    trace: String,
    accesses: u64,
    l1_miss_pct: f64,
    l2_miss_pct: f64,
    l3_miss_pct: f64,
    overall_miss_pct: f64,
    dram_accesses_per_unit: f64,
}

fn summarize(name: &str, h: &Hierarchy, units: f64) -> TraceRow {
    let (l1, l2, l3): (CacheStats, CacheStats, CacheStats) =
        (h.l1.stats(), h.l2.stats(), h.l3.stats());
    TraceRow {
        trace: name.to_owned(),
        accesses: l1.accesses,
        l1_miss_pct: l1.miss_rate() * 100.0,
        l2_miss_pct: l2.miss_rate() * 100.0,
        l3_miss_pct: l3.miss_rate() * 100.0,
        // The metric Linux perf's `cache-misses` approximates: accesses
        // that leave the cache hierarchy entirely.
        overall_miss_pct: if l1.accesses == 0 {
            0.0
        } else {
            h.dram_accesses as f64 / l1.accesses as f64 * 100.0
        },
        dram_accesses_per_unit: h.dram_accesses as f64 / units.max(1.0),
    }
}

/// Full DP-table alignment (GraphAligner/PaSGAL-class): every cell of an
/// `m x n` table is written after reading its three neighbors; hops add
/// reads of non-adjacent columns. 4-byte cells, row-major.
fn dp_full_trace(m: usize, n: usize, hops: &[(usize, usize)]) -> impl Iterator<Item = u64> + '_ {
    let row = n as u64 * 4;
    (1..m as u64).flat_map(move |i| {
        (1..n as u64).flat_map(move |j| {
            let cell = |r: u64, c: u64| r * row + c * 4;
            let mut reads = vec![
                cell(i - 1, j - 1),
                cell(i - 1, j),
                cell(i, j - 1),
                cell(i, j),
            ];
            // A hop (from, to) makes column `to` also depend on `from`.
            for &(from, to) in hops {
                if to as u64 == j {
                    reads.push(cell(i - 1, from as u64));
                }
            }
            reads
        })
    })
}

/// vg-like chunked DP: the read is processed in overlapping chunks so the
/// live table is only `chunk x n`, reused (re-based) per chunk.
fn dp_chunked_trace(m: usize, n: usize, chunk: usize) -> Vec<u64> {
    let mut trace = Vec::new();
    let row = n as u64 * 4;
    let mut processed = 0usize;
    while processed < m {
        let rows = chunk.min(m - processed);
        for i in 1..rows as u64 {
            for j in 1..n as u64 {
                let cell = |r: u64, c: u64| r * row + c * 4;
                trace.extend_from_slice(&[
                    cell(i - 1, j - 1),
                    cell(i - 1, j),
                    cell(i, j - 1),
                    cell(i, j),
                ]);
            }
        }
        processed += rows;
    }
    trace
}

/// BitAlign's traffic, windowed exactly like the algorithm runs (Section
/// 7's divide-and-conquer): per `window`-character window, `k_win + 1`
/// R\[d\] bitvector writes per text position (16 B each), hop-queue reads
/// limited to the last `hop_limit` positions, then the window's traceback
/// re-reads its own stored vectors. The live storage is one window's
/// bitvectors (the 128 kB bitvector-scratchpad working set of Section
/// 8.2), re-based (reused) for every window.
fn bitalign_trace(n: usize, window: usize, k_win: usize, hop_limit: usize) -> Vec<u64> {
    let vec_bytes = 16u64;
    let stride = (k_win as u64 + 1) * vec_bytes;
    let addr = |i: u64, d: u64| i * stride + d * vec_bytes;
    let mut trace = Vec::new();
    let mut done = 0usize;
    while done < n {
        let w = window.min(n - done);
        for i in 0..w as u64 {
            for d in 0..=k_win as u64 {
                if i > 0 {
                    // Hop-queue reads: previous positions within the limit.
                    let from = i.saturating_sub(hop_limit as u64);
                    trace.push(addr(from, d));
                    if d > 0 {
                        trace.push(addr(i - 1, d - 1));
                    }
                }
                trace.push(addr(i, d));
            }
        }
        // The window's traceback: reverse read of its stored vectors.
        for i in (0..w as u64).rev() {
            for d in 0..=k_win as u64 {
                trace.push(addr(i, d));
            }
        }
        done += w;
    }
    trace
}

fn main() {
    let scale = Scale::from_env();
    header("Observations 2 & 3: memory-system behavior of alignment and seeding");

    // ---- Observation 2: alignment traces --------------------------------
    let read_len = scale.long_read_len.min(2_000);
    let region_len = read_len + read_len / 10;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let hops: Vec<(usize, usize)> = (0..region_len / 500)
        .map(|_| {
            let to = rng.gen_range(13..region_len);
            (to - rng.gen_range(2..12), to)
        })
        .collect();

    let mut rows = Vec::new();

    let mut h = Hierarchy::xeon_like();
    h.run(dp_full_trace(read_len, region_len, &hops));
    rows.push(summarize("full DP table (GraphAligner-like)", &h, 1.0));

    let mut h = Hierarchy::xeon_like();
    h.run(dp_chunked_trace(read_len, region_len, 256));
    rows.push(summarize("chunked DP (vg-like)", &h, 1.0));

    let mut h = Hierarchy::xeon_like();
    // W = 128 bits per PE, window-local threshold, hop limit 12 (§8.2).
    h.run(bitalign_trace(region_len, 128, 16, 12));
    rows.push(summarize("BitAlign bitvectors (windowed)", &h, 1.0));

    println!("\n  Observation 2 — alignment working sets vs the cache hierarchy");
    println!(
        "  {:<36} {:>11} {:>9} {:>9} {:>10} {:>9}",
        "trace", "accesses", "L1 miss", "L2 miss", "LLC miss", "to DRAM"
    );
    for row in &rows {
        println!(
            "  {:<36} {:>11} {:>8.1}% {:>8.1}% {:>9.1}% {:>8.1}%",
            row.trace,
            row.accesses,
            row.l1_miss_pct,
            row.l2_miss_pct,
            row.l3_miss_pct,
            row.overall_miss_pct
        );
    }
    println!(
        "  paper (perf `cache-misses`, an LLC-level ratio): GraphAligner 41% at\n  \
         t=40, mitigated by vg's read chunking. Here the {} x {} x 4 B = {:.1} MB\n  \
         full DP table blows through the LLC while the chunked DP mostly fits,\n  \
         and BitAlign's window-local bitvectors (the 128 kB scratchpad working\n  \
         set of Section 8.2) barely leave L1/L2.",
        read_len,
        region_len,
        (read_len * region_len * 4) as f64 / 1e6
    );

    // ---- Observation 3: seeding traces ----------------------------------
    let dataset = scale.dataset_config(441).illumina(150);
    let config = SegramConfig::short_reads();
    let mapper = SegramMapper::new(dataset.graph().clone(), config);
    let footprint = mapper.index().footprint();

    // Address map mirroring Figure 6: [buckets][minimizers][locations].
    let bucket_base = 0u64;
    let minimizer_base = footprint.bucket_bytes;
    let location_base = minimizer_base + footprint.minimizer_bytes;
    let bucket_count = 1u64 << config.bucket_bits;

    let mut h = Hierarchy::xeon_like();
    let mut queries = 0u64;
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    for read in &dataset.reads {
        for m in extract_minimizers(&read.seq, &config.scheme) {
            queries += 1;
            // First level: one 4 B bucket entry, random by hash.
            h.access(bucket_base + (m.rank % bucket_count) * 4);
            // Second level: a short scan of 12 B minimizer entries at a
            // hash-dependent offset.
            let mini_idx = m.rank % (footprint.minimizer_bytes / 12).max(1);
            for step in 0..2u64 {
                h.access(minimizer_base + mini_idx * 12 + step * 12);
            }
            // Third level: the seed locations (8 B each) at a random group.
            let loc_count = rng.gen_range(1..6u64);
            let loc_idx = m.rank % (footprint.location_bytes / 8).max(1);
            for l in 0..loc_count {
                h.access(location_base + (loc_idx + l) * 8);
            }
        }
    }
    let seeding = summarize("hash-table index lookups", &h, queries as f64);

    // Contrast: the same byte volume read sequentially (graph fetch).
    let mut h = Hierarchy::xeon_like();
    let bytes = seeding.accesses * 8;
    h.run((0..bytes / 8).map(|i| location_base + i * 8));
    let sequential = summarize("sequential graph-node fetch", &h, queries as f64);

    println!("\n  Observation 3 — seeding's index lookups vs sequential streaming");
    println!(
        "  {:<36} {:>11} {:>9} {:>13}",
        "trace", "accesses", "to DRAM", "DRAM/query"
    );
    for row in [&seeding, &sequential] {
        println!(
            "  {:<36} {:>11} {:>8.1}% {:>13.2}",
            row.trace, row.accesses, row.overall_miss_pct, row.dram_accesses_per_unit
        );
    }
    println!(
        "  paper: seeding \"requires a significant number of random main memory\n  \
         accesses ... and suffers from the DRAM latency bottleneck\"; SeGraM\n  \
         answers with one HBM channel per accelerator."
    );

    rows.push(seeding);
    rows.push(sequential);
    write_results("obs_memory", &rows);
}
