//! # segram-bench
//!
//! Shared infrastructure for the experiment binaries that regenerate every
//! table and figure of the SeGraM paper's evaluation (see `DESIGN.md` for
//! the experiment ↔ binary index and `EXPERIMENTS.md` for recorded
//! results).
//!
//! Every binary prints a human-readable table and writes machine-readable
//! JSON under `results/`.

#![warn(missing_docs)]

use std::io::Write as _;
use std::path::PathBuf;

use segram_testkit::Serialize;

/// Scale knobs shared by the experiment binaries. The paper's inputs
/// (3.1 Gbp reference, 10 000 reads of 10 kbp) are scaled down so each
/// binary completes in seconds on a laptop; set `SEGRAM_SCALE=full` for a
/// larger run (still far below human scale).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Reference length in bases.
    pub reference_len: usize,
    /// Reads per dataset.
    pub read_count: usize,
    /// Long-read length.
    pub long_read_len: usize,
}

impl Scale {
    /// Resolves the scale from the `SEGRAM_SCALE` environment variable
    /// (`quick` default, or `full`).
    pub fn from_env() -> Self {
        match std::env::var("SEGRAM_SCALE").as_deref() {
            Ok("full") => Scale {
                reference_len: 2_000_000,
                read_count: 200,
                long_read_len: 10_000,
            },
            _ => Scale {
                reference_len: 300_000,
                read_count: 60,
                long_read_len: 3_000,
            },
        }
    }

    /// The matching dataset configuration.
    pub fn dataset_config(&self, seed: u64) -> segram_sim::DatasetConfig {
        segram_sim::DatasetConfig {
            reference_len: self.reference_len,
            read_count: self.read_count,
            long_read_len: self.long_read_len,
            seed,
        }
    }
}

/// Writes an experiment's JSON payload under `results/<name>.json`.
///
/// # Panics
///
/// Panics on I/O errors (experiment binaries want loud failures).
pub fn write_results<T: Serialize>(name: &str, payload: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let mut file = std::fs::File::create(&path).expect("create results file");
    let json = segram_testkit::json::to_string_pretty(payload).expect("serialize results");
    file.write_all(json.as_bytes()).expect("write results");
    println!("\n[results written to {}]", path.display());
}

fn results_dir() -> PathBuf {
    // Walk up from the crate dir to the workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Prints a section header in a consistent style.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints one row of a two-column (label, value) table.
pub fn row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<46} {value}");
}

/// Formats a throughput ratio as the paper does (e.g. `5.9x`).
pub fn ratio(numerator: f64, denominator: f64) -> String {
    if denominator == 0.0 {
        return "inf".into();
    }
    format!("{:.1}x", numerator / denominator)
}

/// Wall-clock helper: runs `f` and returns (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_are_quick() {
        let s = Scale::from_env();
        assert!(s.reference_len >= 100_000);
        assert!(s.read_count >= 10);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(59.0, 10.0), "5.9x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}

pub mod experiments;
