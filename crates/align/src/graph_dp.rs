//! Exact dynamic-programming sequence-to-graph alignment — the reproduction
//! of the DP-based approach of PaSGAL (Jain et al., IPDPS 2019), which the
//! paper uses as the software baseline for BitAlign (Figure 17).
//!
//! The recurrence matches BitAlign's semantics exactly (pattern-global,
//! free or anchored text start, free end):
//!
//! ```text
//! E[i][l] = min edits aligning the pattern suffix of length l to a path
//!           starting at linearized character i
//! E[sink][l] = l               (running past the subgraph costs insertions)
//! E[i][0]   = 0
//! E[i][l]   = min( E[i][l-1] + 1,                              // insertion
//!                  min_j E[j][l-1] + [pattern[m-l] != text[i]],// match/sub
//!                  min_j E[j][l]   + 1 )                       // deletion
//! ```
//!
//! where `j` ranges over the successors of `i` (hops included). BitAlign's
//! invariant — bit `l-1` of `R[i][d]` is 0 iff `E[i][l] <= d` — is validated
//! by property tests against this module.

use segram_graph::{Base, DnaSeq, LinearizedGraph};

use crate::{AlignError, Alignment, Cigar, CigarOp, StartMode};

/// Computes the exact minimum edit distance (no traceback) in `O(n)` memory
/// by iterating suffix lengths outermost.
///
/// Returns `(distance, start_index)` minimized over the allowed starts.
///
/// # Errors
///
/// Returns an error for empty inputs or an out-of-bounds anchor.
pub fn graph_dp_distance(
    lin: &LinearizedGraph,
    pattern: &DnaSeq,
    start: StartMode,
) -> Result<(u32, usize), AlignError> {
    if pattern.is_empty() {
        return Err(AlignError::EmptyPattern);
    }
    if lin.is_empty() {
        return Err(AlignError::EmptyText);
    }
    if let StartMode::Anchored(a) = start {
        if a >= lin.len() {
            return Err(AlignError::AnchorOutOfBounds {
                anchor: a,
                text_len: lin.len(),
            });
        }
    }
    let n = lin.len();
    let m = pattern.len();
    // prev[l-1], cur[l]; index n is the virtual sink.
    let mut prev = vec![0u32; n + 1];
    let mut cur = vec![0u32; n + 1];
    for l in 1..=m {
        let head = pattern[m - l];
        cur[n] = l as u32; // sink: all insertions
        for i in (0..n).rev() {
            let mut best = prev[i] + 1; // insertion
            let succs = lin.successors(i);
            let text_char = lin.base(i);
            let sub_cost = u32::from(head != text_char);
            if succs.is_empty() {
                best = best.min(prev[n] + sub_cost).min(cur[n] + 1);
            } else {
                for &j in succs {
                    let j = j as usize;
                    best = best.min(prev[j] + sub_cost).min(cur[j] + 1);
                }
            }
            cur[i] = best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    // `prev` now holds E[·][m].
    let best = match start {
        StartMode::Free => prev[..n]
            .iter()
            .enumerate()
            .min_by_key(|&(i, &d)| (d, i))
            .map(|(i, &d)| (d, i)),
        StartMode::Anchored(a) => Some((prev[a], a)),
    };
    Ok(best.expect("non-empty text"))
}

/// Exact DP alignment with full traceback. Memory is `O(n * m)`; intended
/// for verification and for the PaSGAL-baseline benchmarks at realistic
/// window sizes.
///
/// The traceback prefers `Match`, then `Subst`, then `Del`, then `Ins` —
/// the same priority BitAlign's traceback uses, so on unique-optimum inputs
/// the two produce identical CIGARs.
///
/// # Errors
///
/// Returns an error for empty inputs or an out-of-bounds anchor.
pub fn graph_dp_align(
    lin: &LinearizedGraph,
    pattern: &DnaSeq,
    start: StartMode,
) -> Result<Alignment, AlignError> {
    if pattern.is_empty() {
        return Err(AlignError::EmptyPattern);
    }
    if lin.is_empty() {
        return Err(AlignError::EmptyText);
    }
    if let StartMode::Anchored(a) = start {
        if a >= lin.len() {
            return Err(AlignError::AnchorOutOfBounds {
                anchor: a,
                text_len: lin.len(),
            });
        }
    }
    let n = lin.len();
    let m = pattern.len();
    let width = n + 1; // index n = virtual sink
                       // e[l * width + i]
    let mut e = vec![0u32; (m + 1) * width];
    for l in 1..=m {
        let head = pattern[m - l];
        let (prev_rows, cur_row) = e.split_at_mut(l * width);
        let prev = &prev_rows[(l - 1) * width..];
        let cur = &mut cur_row[..width];
        cur[n] = l as u32;
        for i in (0..n).rev() {
            let mut best = prev[i] + 1;
            let text_char = lin.base(i);
            let sub_cost = u32::from(head != text_char);
            let succs = lin.successors(i);
            if succs.is_empty() {
                best = best.min(prev[n] + sub_cost).min(cur[n] + 1);
            } else {
                for &j in succs {
                    let j = j as usize;
                    best = best.min(prev[j] + sub_cost).min(cur[j] + 1);
                }
            }
            cur[i] = best;
        }
    }
    let at = |l: usize, i: usize| e[l * width + i];
    let (dist, start_idx) = match start {
        StartMode::Free => (0..n).map(|i| (at(m, i), i)).min().expect("non-empty text"),
        StartMode::Anchored(a) => (at(m, a), a),
    };

    // Traceback.
    let mut cigar = Cigar::new();
    let mut path = Vec::new();
    let mut i = start_idx;
    let mut l = m;
    let mut at_sink = false;
    while l > 0 {
        if at_sink {
            cigar.push_run(CigarOp::Ins, l as u32);
            break;
        }
        let head = pattern[m - l];
        let text_char = lin.base(i);
        let sub_cost = u32::from(head != text_char);
        let cur_val = at(l, i);
        let succs: Vec<usize> = {
            let s = lin.successors(i);
            if s.is_empty() {
                vec![n]
            } else {
                s.iter().map(|&j| j as usize).collect()
            }
        };
        // Match first.
        if sub_cost == 0 {
            if let Some(&j) = succs.iter().find(|&&j| at(l - 1, j) == cur_val) {
                cigar.push(CigarOp::Match);
                path.push(i as u32);
                at_sink = j == n;
                i = j;
                l -= 1;
                continue;
            }
        }
        // Substitution.
        if cur_val >= 1 {
            if let Some(&j) = succs.iter().find(|&&j| at(l - 1, j) + 1 == cur_val) {
                cigar.push(CigarOp::Subst);
                path.push(i as u32);
                at_sink = j == n;
                i = j;
                l -= 1;
                continue;
            }
            // Deletion.
            if let Some(&j) = succs.iter().find(|&&j| at(l, j) + 1 == cur_val) {
                cigar.push(CigarOp::Del);
                path.push(i as u32);
                at_sink = j == n;
                i = j;
                continue;
            }
            // Insertion.
            debug_assert_eq!(at(l - 1, i) + 1, cur_val);
            cigar.push(CigarOp::Ins);
            l -= 1;
            continue;
        }
        unreachable!("DP traceback stuck at (i={i}, l={l})");
    }
    let text_end = path.last().map_or(start_idx, |&p| p as usize + 1);
    Ok(Alignment {
        edit_distance: dist,
        cigar,
        text_start: path.first().map_or(start_idx, |&p| p as usize),
        text_end,
        path,
    })
}

/// The cell count of the DP table (`n * m`), the quantity that drives the
/// PaSGAL baseline's runtime and the paper's Observation 2 (large
/// intermediate data).
pub fn dp_cell_count(text_len: usize, pattern_len: usize) -> u64 {
    text_len as u64 * pattern_len as u64
}

/// Semi-global sequence-to-sequence DP (both plain strings), used as an
/// independent cross-check for the graph DP on linear inputs and as the
/// classical Needleman-Wunsch-style baseline.
///
/// Returns the minimum edit distance of aligning the full `pattern` to any
/// substring-with-free-ends of `text`.
///
/// # Errors
///
/// Returns an error for empty inputs.
pub fn semiglobal_distance(text: &[Base], pattern: &[Base]) -> Result<u32, AlignError> {
    if pattern.is_empty() {
        return Err(AlignError::EmptyPattern);
    }
    if text.is_empty() {
        return Err(AlignError::EmptyText);
    }
    let m = pattern.len();
    // Column-major over text (classical orientation): D[q][t] with free
    // start along the text axis.
    let mut prev: Vec<u32> = (0..=m as u32).collect(); // column for empty text
    let mut cur = vec![0u32; m + 1];
    let mut best = prev[m];
    for &tc in text {
        cur[0] = 0; // free start
        for (q, &pc) in pattern.iter().enumerate() {
            let sub = prev[q] + u32::from(pc != tc);
            let del = prev[q + 1] + 1;
            let ins = cur[q] + 1;
            cur[q + 1] = sub.min(del).min(ins);
        }
        best = best.min(cur[m]);
        std::mem::swap(&mut prev, &mut cur);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitalign;
    use segram_graph::{build_graph, Variant};

    fn linear(text: &str) -> LinearizedGraph {
        LinearizedGraph::from_linear_seq(&text.parse().unwrap())
    }

    #[test]
    fn exact_match_is_zero() {
        let lin = linear("ACGTACGT");
        let (d, i) = graph_dp_distance(&lin, &"GTAC".parse().unwrap(), StartMode::Free).unwrap();
        assert_eq!((d, i), (0, 2));
    }

    #[test]
    fn distance_matches_semiglobal_on_linear_text() {
        let cases = [
            ("ACGTACGT", "ACGT"),
            ("ACGTACGT", "AGGT"),
            ("AAAA", "TTTT"),
            ("ACACACAC", "ACGACAC"),
            ("TTTTTTTT", "TT"),
            ("AC", "ACGTACGT"),
        ];
        for (text, pattern) in cases {
            let lin = linear(text);
            let p: DnaSeq = pattern.parse().unwrap();
            let (d, _) = graph_dp_distance(&lin, &p, StartMode::Free).unwrap();
            let t: DnaSeq = text.parse().unwrap();
            let s = semiglobal_distance(t.as_slice(), p.as_slice()).unwrap();
            assert_eq!(d, s, "text {text} pattern {pattern}");
        }
    }

    #[test]
    fn align_and_distance_agree() {
        let built = build_graph(
            &"ACGTACGTACGT".parse().unwrap(),
            [
                Variant::snp(2, segram_graph::Base::T),
                Variant::deletion(6, 3),
            ]
            .into_iter()
            .collect(),
        )
        .unwrap();
        let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars()).unwrap();
        for read in ["ACTTACGT", "ACGTACGCG", "TTTTTT"] {
            let p: DnaSeq = read.parse().unwrap();
            let (d, _) = graph_dp_distance(&lin, &p, StartMode::Free).unwrap();
            let a = graph_dp_align(&lin, &p, StartMode::Free).unwrap();
            assert_eq!(a.edit_distance, d, "read {read}");
            assert_eq!(a.cigar.edit_count(), d, "read {read}");
        }
    }

    #[test]
    fn traceback_cigar_is_replayable() {
        let built = build_graph(
            &"ACGTACGTACGT".parse().unwrap(),
            [Variant::snp(5, segram_graph::Base::A)]
                .into_iter()
                .collect(),
        )
        .unwrap();
        let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars()).unwrap();
        let read: DnaSeq = "GTAAGTA".parse().unwrap();
        let a = graph_dp_align(&lin, &read, StartMode::Free).unwrap();
        let fragment = a.ref_fragment(&lin);
        assert!(a.cigar.replay(&fragment, read.as_slice()).is_some());
    }

    #[test]
    fn dp_matches_bitalign_on_graphs() {
        let built = build_graph(
            &"ACGTACGTACGTACGT".parse().unwrap(),
            [
                Variant::snp(3, segram_graph::Base::C),
                Variant::insertion(8, "GG".parse().unwrap()),
                Variant::deletion(11, 2),
            ]
            .into_iter()
            .collect(),
        )
        .unwrap();
        let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars()).unwrap();
        for read in ["ACGCACGT", "ACGTACGTGGACG", "ACGTACGTACCT", "GGGGGG"] {
            let p: DnaSeq = read.parse().unwrap();
            let (dp, _) = graph_dp_distance(&lin, &p, StartMode::Free).unwrap();
            let ba = bitalign(&lin, &p, p.len() as u32).unwrap();
            assert_eq!(ba.edit_distance, dp, "read {read}");
        }
    }

    #[test]
    fn anchored_mode_pins_the_start() {
        let lin = linear("ACGTACGT");
        let p: DnaSeq = "ACGT".parse().unwrap();
        let (d_free, _) = graph_dp_distance(&lin, &p, StartMode::Free).unwrap();
        assert_eq!(d_free, 0);
        let (d_anchored, i) = graph_dp_distance(&lin, &p, StartMode::Anchored(1)).unwrap();
        assert_eq!(i, 1);
        assert!(d_anchored >= 1);
    }

    #[test]
    fn pattern_longer_than_text_costs_insertions() {
        let lin = linear("AC");
        let (d, _) = graph_dp_distance(&lin, &"ACGT".parse().unwrap(), StartMode::Free).unwrap();
        assert_eq!(d, 2);
    }

    #[test]
    fn cell_count_formula() {
        assert_eq!(dp_cell_count(100, 50), 5000);
    }
}
