//! Offline property testing with a proptest-flavoured surface: the
//! [`Strategy`] trait, combinators (`prop::collection::vec`,
//! `prop::sample::select`, ranges, tuples, `prop_map`, `prop_oneof!`),
//! and the [`proptest!`](crate::proptest) runner macro.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from per-case ChaCha8 streams derived from the
//!   test's name, so runs are fully deterministic with no persistence
//!   files;
//! * there is no shrinking — on failure the runner reports every
//!   generated input (and the case seed) instead;
//! * the case count defaults to a capped budget so `cargo test` stays
//!   fast, and is overridable via `SEGRAM_PROPTEST_CASES`.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::pattern::Pattern;
use crate::rng::{ChaCha8Rng, RngCore, SampleRange};

/// The RNG handed to strategies by the [`proptest!`](crate::proptest) runner.
pub type TestRng = ChaCha8Rng;

/// Default per-test case budget when no override is active. Chosen so the
/// full workspace property suite finishes in well under the tier-1 time
/// budget even in debug builds; raise locally with `SEGRAM_PROPTEST_CASES`.
pub const DEFAULT_CASE_CAP: u32 = 32;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Free-function form of `prop_map`, used by
/// [`prop_compose!`](crate::prop_compose).
pub fn map<S, O, F>(strategy: S, f: F) -> Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    Map { inner: strategy, f }
}

// Integer/float ranges are strategies.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*}
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String literals are regex-subset string strategies (see
/// [`crate::pattern`] for the supported syntax).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsing per case keeps the impl allocation-free at rest; the
        // patterns in this workspace are tiny.
        Pattern::parse(self).generate(rng)
    }
}

// Tuples of strategies generate tuples of values, in order.
macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*}
}
tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
    A, B, C, D, E, F
)(A, B, C, D, E, F, G)(A, B, C, D, E, F, G, H));

/// Types with a canonical strategy (proptest's `Arbitrary`), reachable via
/// [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for an [`Arbitrary`] type.
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Uniform choice between boxed strategies (the engine behind
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

/// `prop::...` namespace, mirroring proptest's module layout (the name
/// collision with the containing module is the point: test code written
/// for proptest's `prop::collection::vec` compiles unchanged).
#[allow(clippy::module_inception)]
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Anything usable as a collection size: a fixed `usize`, `a..b`,
        /// or `a..=b`.
        pub trait IntoSizeRange {
            /// Draws a concrete length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                self.clone().sample_from(rng)
            }
        }

        impl IntoSizeRange for RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                self.clone().sample_from(rng)
            }
        }

        /// Generates `Vec`s of values from `element`, with a length drawn
        /// from `size`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates `BTreeSet`s with a target size drawn from `size`
        /// (smaller when the element domain saturates).
        #[derive(Clone, Debug)]
        pub struct BTreeSetStrategy<S, Z> {
            element: S,
            size: Z,
        }

        /// `prop::collection::btree_set(element, size)`.
        pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
        where
            S: Strategy,
            S::Value: Ord,
            Z: IntoSizeRange,
        {
            BTreeSetStrategy { element, size }
        }

        impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
        where
            S: Strategy,
            S::Value: Ord,
            Z: IntoSizeRange,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.sample_len(rng);
                let mut set = BTreeSet::new();
                // Duplicates don't grow the set; bound the attempts so a
                // tiny element domain cannot loop forever.
                for _ in 0..target.saturating_mul(10) {
                    if set.len() >= target {
                        break;
                    }
                    set.insert(self.element.generate(rng));
                }
                set
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::*;

        /// Uniform choice from a fixed list (`prop::sample::select`).
        #[derive(Clone, Debug)]
        pub struct Select<T: Clone>(Vec<T>);

        /// `prop::sample::select(options)`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let pick = (rng.next_u64() % self.0.len() as u64) as usize;
                self.0[pick].clone()
            }
        }

        /// An index into a collection whose length is only known inside
        /// the test body (proptest's `prop::sample::Index`).
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        pub struct Index(u64);

        impl Index {
            /// Projects onto `0..len`.
            ///
            /// # Panics
            ///
            /// Panics when `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl std::fmt::Debug for Index {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "Index({})", self.0)
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

/// Runner configuration (mirrors proptest's `ProptestConfig`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Requested number of successful cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Requests `cases` successful cases (subject to the runtime cap; see
    /// [`resolve_cases`]).
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // proptest's default; capped by resolve_cases at runtime.
        Self { cases: 256 }
    }
}

/// How a single case ended (the `Err` side of a test-body closure).
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case without counting it.
    Reject,
    /// `prop_assert!`-style failure with a message.
    Fail(String),
}

/// Resolves the effective case count: `SEGRAM_PROPTEST_CASES` wins when
/// set, otherwise `requested` capped at [`DEFAULT_CASE_CAP`] so the suite
/// stays within the tier-1 time budget.
pub fn resolve_cases(requested: u32) -> u32 {
    match std::env::var("SEGRAM_PROPTEST_CASES") {
        Ok(v) => v
            .trim()
            .parse::<u32>()
            .unwrap_or_else(|_| panic!("SEGRAM_PROPTEST_CASES={v:?} is not a number"))
            .max(1),
        Err(_) => requested.clamp(1, DEFAULT_CASE_CAP),
    }
}

/// FNV-1a hash of a test's fully qualified name, the per-test half of the
/// case seed.
pub fn hash_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Derives the deterministic seed for one case of one test.
pub fn case_seed(name_hash: u64, case: u32) -> u64 {
    name_hash ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            assert!((0..4u8).contains(&(0u8..4).generate(&mut rng)));
            assert!((10..=20usize).contains(&(10usize..=20).generate(&mut rng)));
            let f = (1.0f64..3.0).generate(&mut rng);
            assert!((1.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_all_size_forms() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(
                prop::collection::vec(0u8..4, 4usize)
                    .generate(&mut rng)
                    .len(),
                4
            );
            let v = prop::collection::vec(0u8..4, 1..6).generate(&mut rng);
            assert!((1..6).contains(&v.len()));
            let w = prop::collection::vec(0u8..4, 2..=3).generate(&mut rng);
            assert!((2..=3).contains(&w.len()));
        }
    }

    #[test]
    fn union_draws_every_option() {
        let mut rng = TestRng::seed_from_u64(3);
        let union = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let seen: std::collections::HashSet<u8> =
            (0..200).map(|_| union.generate(&mut rng)).collect();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = (0u8..4).prop_map(|v| v * 10);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 10, 0);
        }
    }

    #[test]
    fn index_projects_uniformly() {
        let mut rng = TestRng::seed_from_u64(5);
        let mut hits = [0usize; 7];
        for _ in 0..7000 {
            hits[prop::sample::Index::arbitrary(&mut rng).index(7)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 700), "{hits:?}");
    }

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        let h = hash_name("a::b::c");
        assert_eq!(h, hash_name("a::b::c"));
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|c| case_seed(h, c)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn resolve_cases_caps_by_default() {
        // Serial-unsafe env mutation is confined to this one test.
        std::env::remove_var("SEGRAM_PROPTEST_CASES");
        assert_eq!(resolve_cases(256), DEFAULT_CASE_CAP);
        assert_eq!(resolve_cases(8), 8);
        assert_eq!(resolve_cases(0), 1);
        // Regression: an explicit 0 override must clamp to one case, not
        // starve the runner into a misleading all-rejected failure.
        std::env::set_var("SEGRAM_PROPTEST_CASES", "0");
        assert_eq!(resolve_cases(256), 1);
        std::env::remove_var("SEGRAM_PROPTEST_CASES");
    }
}
