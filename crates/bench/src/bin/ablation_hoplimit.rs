//! **Ablation: hop limit vs alignment quality** — the accuracy side of the
//! Figure 13 trade-off the paper defers to future work ("Hop limit
//! introduces a tradeoff between power/area overhead and accuracy",
//! footnote 2).
//!
//! For each hop limit we align reads against hop-limited linearizations
//! and measure (a) how many alignments keep their exact optimal distance
//! and (b) the average distance inflation, alongside the hardware cost of
//! the hop queue at that depth.

use segram_align::{graph_dp_distance, StartMode};
use segram_bench::{header, write_results, Scale};
use segram_core::{SegramConfig, SegramMapper};
use segram_graph::LinearizedGraph;
use segram_hw::REGFILE_AREA_MM2_PER_KB;
use segram_testkit::Serialize;

#[derive(Serialize)]
struct HopLimitRow {
    hop_limit: u32,
    hop_coverage: f64,
    exact_fraction: f64,
    mean_distance_inflation: f64,
    hop_queue_kb: f64,
    hop_queue_area_mm2: f64,
}

#[derive(Serialize)]
struct AblationHopLimit {
    rows: Vec<HopLimitRow>,
    paper_choice: u32,
}

fn main() {
    let scale = Scale::from_env();
    let mut config = scale.dataset_config(221);
    config.read_count = 40;
    let dataset = config.illumina(150);
    let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());

    // Collect (region, read) pairs with their exact distances once.
    let mut pairs = Vec::new();
    for read in &dataset.reads {
        let seeding = mapper.seed(&read.seq);
        if let Some(r) = seeding.regions.first() {
            if let Ok(lin) = LinearizedGraph::extract(dataset.graph(), r.start, r.end) {
                if let Ok((exact, _)) = graph_dp_distance(&lin, &read.seq, StartMode::Free) {
                    pairs.push((lin, read.seq.clone(), exact));
                }
            }
        }
    }

    header(&format!(
        "Ablation: hop limit vs alignment quality ({} region alignments)",
        pairs.len()
    ));
    println!(
        "  {:>7} {:>11} {:>12} {:>12} {:>12} {:>12}",
        "limit", "coverage", "exact frac", "inflation", "queue kB", "queue mm2"
    );
    let mut rows = Vec::new();
    for hop_limit in [1u32, 2, 4, 8, 12, 16, 24] {
        let coverage = segram_graph::hop_coverage(dataset.graph(), hop_limit).expect("non-empty");
        let mut exact_hits = 0usize;
        let mut inflation_sum = 0.0f64;
        for (lin, read, exact) in &pairs {
            let (limited, _) = lin.with_hop_limit(hop_limit);
            let (d, _) = graph_dp_distance(&limited, read, StartMode::Free).expect("non-empty");
            if d == *exact {
                exact_hits += 1;
            }
            inflation_sum += (d as f64 + 1.0) / (*exact as f64 + 1.0);
        }
        // Hardware cost: queue depth = hop limit entries of 128 bits per PE,
        // 64 PEs, register-file density.
        let queue_kb = (hop_limit as f64 * 16.0 * 64.0) / 1024.0;
        let row = HopLimitRow {
            hop_limit,
            hop_coverage: coverage,
            exact_fraction: exact_hits as f64 / pairs.len().max(1) as f64,
            mean_distance_inflation: inflation_sum / pairs.len().max(1) as f64,
            hop_queue_kb: queue_kb,
            hop_queue_area_mm2: queue_kb * REGFILE_AREA_MM2_PER_KB,
        };
        println!(
            "  {:>7} {:>10.2}% {:>11.1}% {:>12.4} {:>12.1} {:>12.4}",
            row.hop_limit,
            row.hop_coverage * 100.0,
            row.exact_fraction * 100.0,
            row.mean_distance_inflation,
            row.hop_queue_kb,
            row.hop_queue_area_mm2
        );
        rows.push(row);
    }

    println!("\n  The paper picks 12 (99%+ hop coverage at 12 kB of queues);");
    println!("  quality saturates at the same point while queue area grows");
    println!("  linearly — reproducing the trade-off of footnote 2.");

    write_results(
        "ablation_hoplimit",
        &AblationHopLimit {
            rows,
            paper_choice: 12,
        },
    );
}
