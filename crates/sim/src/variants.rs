//! Synthetic variant sets, standing in for the paper's seven GIAB VCFs
//! (Section 10: "7.1 M variations" across the human genome, i.e. roughly
//! one variant per 450 reference bases).
//!
//! The kind mix follows the 1000 Genomes-style distribution the paper's
//! hop-limit argument relies on (Section 8.2): the overwhelming majority of
//! variants are SNPs and small indels (short hops); large structural
//! variants are rare (long hops).

use segram_graph::{DnaSeq, Variant, VariantSet, BASES};
use segram_testkit::rng::ChaCha8Rng;
use segram_testkit::rng::Rng;
use segram_testkit::rng::SeedableRng;

/// Configuration for [`simulate_variants`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VariantConfig {
    /// Expected number of variants per reference base (human-like ≈ 1/450).
    pub density: f64,
    /// Fraction of variants that are SNPs.
    pub snp_fraction: f64,
    /// Fraction that are small insertions (1..=6 bp).
    pub ins_fraction: f64,
    /// Fraction that are small deletions (1..=6 bp).
    pub del_fraction: f64,
    /// Remainder are structural variants (replacements/deletions of
    /// `sv_min_len..=sv_max_len` bases).
    pub sv_min_len: u64,
    /// Maximum SV length.
    pub sv_max_len: u64,
    /// Fraction of sites that carry a *second* alternate allele
    /// (multi-allelic sites, as in real GIAB VCFs). Multi-allelic SNPs add
    /// a second single-base branch; multi-allelic replacements add a
    /// second branch of different length — the only graph shape in which
    /// linearization order affects hop distances.
    ///
    /// Defaults to 0.0 (strictly biallelic), and a zero value draws no
    /// randomness, so enabling the feature is the only thing that changes
    /// a seed's variant stream — every calibrated dataset stays
    /// bit-identical unless a caller opts in.
    pub multi_allelic_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl VariantConfig {
    /// Human-like mix: ~90 % SNPs, ~9 % small indels, ~0.7 % SVs.
    /// (The paper's GIAB v3.3.2 VCFs are small-variant call sets, so large
    /// SVs are rare; this mix reproduces Figure 13's ">99 % of hops within
    /// limit 12" shape.)
    pub fn human_like(seed: u64) -> Self {
        Self {
            density: 1.0 / 450.0,
            snp_fraction: 0.90,
            ins_fraction: 0.0465,
            del_fraction: 0.0465,
            sv_min_len: 50,
            sv_max_len: 300,
            multi_allelic_fraction: 0.0,
            seed,
        }
    }
}

impl Default for VariantConfig {
    fn default() -> Self {
        Self::human_like(42)
    }
}

/// Draws a variant set against `reference`.
///
/// Positions are drawn uniformly; overlapping draws are resolved later by
/// graph construction (`drop_overlapping`), mirroring how conflicting VCF
/// records are handled.
///
/// # Examples
///
/// ```
/// use segram_sim::{generate_reference, simulate_variants, GenomeConfig, VariantConfig};
///
/// let reference = generate_reference(&GenomeConfig::human_like(50_000, 1));
/// let variants = simulate_variants(&reference, &VariantConfig::human_like(2));
/// assert!(!variants.is_empty());
/// ```
pub fn simulate_variants(reference: &DnaSeq, config: &VariantConfig) -> VariantSet {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let n = reference.len() as u64;
    let count = ((n as f64) * config.density).round() as usize;
    let mut set = VariantSet::new();
    for _ in 0..count {
        let roll: f64 = rng.gen();
        let pos = rng.gen_range(0..n);
        if roll < config.snp_fraction {
            let current = reference[pos as usize];
            let alt = loop {
                let candidate = BASES[rng.gen_range(0..4)];
                if candidate != current {
                    break candidate;
                }
            };
            set.push(Variant::snp(pos, alt));
            if config.multi_allelic_fraction > 0.0 && rng.gen_bool(config.multi_allelic_fraction) {
                // A second alternate at the same site (kept by
                // `drop_overlapping`'s multi-allelic rule).
                if let Some(second) = BASES.into_iter().find(|&b| b != current && b != alt) {
                    set.push(Variant::snp(pos, second));
                }
            }
        } else if roll < config.snp_fraction + config.ins_fraction {
            let len = rng.gen_range(1..=6);
            set.push(Variant::insertion(pos, random_seq(&mut rng, len)));
        } else if roll < config.snp_fraction + config.ins_fraction + config.del_fraction {
            let len = rng.gen_range(1..=6).min(n - pos);
            if len > 0 && pos + len < n {
                set.push(Variant::deletion(pos, len));
            }
        } else {
            // Structural variant: deletion or balanced replacement.
            let len = rng
                .gen_range(config.sv_min_len..=config.sv_max_len)
                .min(n.saturating_sub(pos + 1));
            if len >= config.sv_min_len.min(n / 10).max(1) {
                if rng.gen_bool(0.5) {
                    set.push(Variant::deletion(pos, len));
                } else {
                    let alt_len = rng.gen_range(1..=len.max(2)) as usize;
                    set.push(Variant::replacement(
                        pos,
                        len,
                        random_seq(&mut rng, alt_len),
                    ));
                    if config.multi_allelic_fraction > 0.0
                        && rng.gen_bool(config.multi_allelic_fraction)
                    {
                        // A second replacement branch of a different
                        // length over the same interval.
                        let second_len = (alt_len / 2).max(1) + 1;
                        if second_len != alt_len {
                            set.push(Variant::replacement(
                                pos,
                                len,
                                random_seq(&mut rng, second_len),
                            ));
                        }
                    }
                }
            }
        }
    }
    set
}

fn random_seq(rng: &mut ChaCha8Rng, len: usize) -> DnaSeq {
    (0..len).map(|_| BASES[rng.gen_range(0..4)]).collect()
}

/// Counts variants by kind, for dataset reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VariantMix {
    /// SNP count.
    pub snps: usize,
    /// Small-insertion count.
    pub insertions: usize,
    /// Small-deletion count (< 50 bp).
    pub deletions: usize,
    /// Structural-variant count (>= 50 bp span or replacement).
    pub svs: usize,
}

/// Classifies a variant set into a [`VariantMix`].
pub fn classify(variants: &VariantSet) -> VariantMix {
    let mut mix = VariantMix::default();
    for v in variants.iter() {
        match &v.kind {
            segram_graph::VariantKind::Snp { .. } => mix.snps += 1,
            segram_graph::VariantKind::Insertion { .. } => mix.insertions += 1,
            segram_graph::VariantKind::Deletion { len } if *len < 50 => mix.deletions += 1,
            _ => mix.svs += 1,
        }
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{generate_reference, GenomeConfig};

    #[test]
    fn density_is_approximately_respected() {
        let reference = generate_reference(&GenomeConfig::human_like(90_000, 5));
        let variants = simulate_variants(&reference, &VariantConfig::human_like(6));
        let expected = 90_000.0 / 450.0;
        let got = variants.len() as f64;
        assert!((got - expected).abs() < expected * 0.2, "got {got}");
    }

    #[test]
    fn kind_mix_is_human_like() {
        let reference = generate_reference(&GenomeConfig::human_like(400_000, 7));
        let variants = simulate_variants(&reference, &VariantConfig::human_like(8));
        let mix = classify(&variants);
        let total = variants.len() as f64;
        assert!(mix.snps as f64 / total > 0.8, "{mix:?}");
        assert!(mix.svs as f64 / total < 0.05, "{mix:?}");
        assert!(mix.insertions > 0 && mix.deletions > 0, "{mix:?}");
    }

    #[test]
    fn snps_never_equal_reference_base() {
        let reference = generate_reference(&GenomeConfig::human_like(30_000, 9));
        let variants = simulate_variants(&reference, &VariantConfig::human_like(10));
        for v in variants.iter() {
            if let segram_graph::VariantKind::Snp { alt } = v.kind {
                assert_ne!(
                    alt, reference[v.pos as usize],
                    "SNP at {} is a no-op",
                    v.pos
                );
            }
        }
    }

    #[test]
    fn variants_build_a_valid_graph() {
        let reference = generate_reference(&GenomeConfig::human_like(20_000, 13));
        let variants = simulate_variants(&reference, &VariantConfig::human_like(14));
        let built = segram_graph::build_graph(&reference, variants).unwrap();
        assert!(built.graph.is_topologically_sorted());
        assert!(built.graph.node_count() > 10);
        assert!(built.graph.total_chars() >= reference.len() as u64 / 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let reference = generate_reference(&GenomeConfig::human_like(10_000, 1));
        let a = simulate_variants(&reference, &VariantConfig::human_like(2));
        let b = simulate_variants(&reference, &VariantConfig::human_like(2));
        assert_eq!(a, b);
    }

    #[test]
    fn base_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VariantConfig>();
    }

    #[test]
    fn multi_allelic_sites_appear_and_survive_graph_construction() {
        let reference = generate_reference(&GenomeConfig::human_like(40_000, 31));
        let mut config = VariantConfig::human_like(32);
        config.multi_allelic_fraction = 0.5; // force plenty of second alleles
        let variants = simulate_variants(&reference, &config);

        // Count sites with more than one alternate.
        let sorted = variants.clone().into_sorted();
        let mut multi_sites = 0usize;
        let mut last: Option<(u64, u64)> = None;
        for v in sorted.iter() {
            let interval = v.ref_interval();
            if last == Some(interval) && interval.0 != interval.1 {
                multi_sites += 1;
            }
            last = Some(interval);
        }
        assert!(multi_sites > 10, "only {multi_sites} multi-allelic sites");

        // Graph construction keeps them: more non-backbone branches than a
        // biallelic set of the same density would produce.
        let built = segram_graph::build_graph(&reference, sorted).unwrap();
        assert!(built.graph.is_topologically_sorted());
        assert!(built.embedded_variants > 0);
        let max_out = built
            .graph
            .node_ids()
            .map(|n| built.graph.successors(n).len())
            .max()
            .unwrap();
        assert!(
            max_out >= 3,
            "expected a node with >= 3 outgoing branches (ref + 2 alts), max {max_out}"
        );
    }

    #[test]
    fn zero_multi_allelic_fraction_reproduces_biallelic_sets() {
        let reference = generate_reference(&GenomeConfig::human_like(10_000, 5));
        let mut config = VariantConfig::human_like(6);
        config.multi_allelic_fraction = 0.0;
        let variants = simulate_variants(&reference, &config).into_sorted();
        let mut last: Option<(u64, u64)> = None;
        for v in variants.iter() {
            let interval = v.ref_interval();
            assert!(
                !(last == Some(interval) && interval.0 != interval.1),
                "unexpected multi-allelic site at {interval:?}"
            );
            last = Some(interval);
        }
    }
}
