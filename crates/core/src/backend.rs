//! Pluggable mapping backends behind one engine: SeGraM itself and the
//! software baselines as first-class [`ReadMapper`]s, selected by name
//! through one factory.
//!
//! The paper's evaluation hinges on apples-to-apples comparison: the same
//! read stream driven through SeGraM and through the software baselines
//! (GraphAligner-like, vg-like, HGA-like), measured under one
//! methodology. This module makes that structural instead of incidental:
//!
//! * [`BaselineAdapter`] lifts any [`BaselineMapper`] into the
//!   [`ReadMapper`] interface the [`MapEngine`](crate::MapEngine) drives,
//!   adapting [`BaselineMapping`]/[`StepTimes`] into
//!   [`Mapping`]/[`MapStats`] (the located window is re-aligned with
//!   BitAlign so every backend emits the same SAM/GAF record shape);
//! * [`BackendKind`] + [`Backend`] name the four backends and build them
//!   from one graph + configuration (`segram map --backend ...`);
//! * [`run_backend_eval`] drives one backend over one read set through
//!   the engine and distills the comparison row `eval compare` prints —
//!   throughput, per-stage times, truth accuracy, and the accelerator
//!   occupancy the backend's candidate-region stream implies in the
//!   `segram-hw` pipeline simulator.
//!
//! Because every backend runs through the same engine (same batching,
//! same order-preserving output, same queue accounting), each backend's
//! output is byte-identical across thread counts; the differential
//! property test (`tests/backend_props.rs`) and the `ci.sh`
//! backend-matrix tier enforce this end to end.

use std::time::Instant;

use segram_graph::{DnaSeq, GenomeGraph, LinearizedGraph};
use segram_hw::{simulate_pipeline, SeedJob};
use segram_index::SeedRegion;
use segram_sim::Strand;

use crate::baseline::{
    BaselineMapper, BaselineMapping, GraphAlignerLike, HgaLike, StepTimes, VgLike,
};
use crate::config::SegramConfig;
use crate::mapper::{MapStats, Mapping, ReadMapper, SegramMapper};
use crate::pipeline::{Aligner, BitAlignStage, EngineConfig, EngineReport, MapEngine};
use crate::shard::ShardedIndex;

/// Modeled MinSeed time per candidate region when a backend's region
/// stream is fed into the hardware pipeline simulator (the Section 8.3
/// steady-state figure, shared with `benches/sharding.rs`).
pub const MODELED_MINSEED_NS: f64 = 10.0;

/// Modeled BitAlign time for a candidate region of
/// [`MODELED_REGION_CHARS`] reference characters (Section 8.3); longer
/// regions scale linearly, the way the windowed systolic array does.
pub const MODELED_BITALIGN_NS: f64 = 34.0;

/// Nominal region length the [`MODELED_BITALIGN_NS`] figure corresponds
/// to (one short-read window). Scaling BitAlign time by actual region
/// length is what makes modeled occupancy comparable across backends:
/// HGA's single whole-graph candidate costs what whole-graph DP costs,
/// not what one short window costs.
pub const MODELED_REGION_CHARS: f64 = 128.0;

/// The four mapping backends the evaluation compares, by CLI name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The native SeGraM pipeline (MinSeed + BitAlign), monolithic or
    /// sharded.
    Segram,
    /// [`GraphAlignerLike`]: seeding + chaining + bit-parallel alignment.
    GraphAligner,
    /// [`VgLike`]: seeding + chunked DP alignment.
    Vg,
    /// [`HgaLike`]: whole-graph DP, no seeding.
    Hga,
}

impl BackendKind {
    /// Every backend, in the evaluation's canonical order.
    pub const ALL: [BackendKind; 4] = [Self::Segram, Self::GraphAligner, Self::Vg, Self::Hga];

    /// The CLI name (`segram|graphaligner|vg|hga`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Segram => "segram",
            Self::GraphAligner => "graphaligner",
            Self::Vg => "vg",
            Self::Hga => "hga",
        }
    }

    /// Parses a CLI name; `None` for anything unknown.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|kind| kind.name() == name)
    }

    /// Whether `--shards` applies: only the native backend has the
    /// coordinate-range sharded index (the per-HBM-channel split).
    pub fn supports_shards(self) -> bool {
        matches!(self, Self::Segram)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Lifts a [`BaselineMapper`] into the [`ReadMapper`] interface the
/// engine drives.
///
/// The baselines report a *locus* — best edit distance plus linear start —
/// because they are throughput comparators, not CIGAR producers. To emit
/// the same SAM/GAF record shape as the native path (and with it a graph
/// path `gaf_record_for` can validate), the adapter re-aligns the located
/// window with BitAlign; the re-alignment time is charged to the
/// alignment stage so stage-time comparisons stay honest.
#[derive(Debug)]
pub struct BaselineAdapter<B> {
    inner: B,
    config: SegramConfig,
    backend: &'static str,
}

impl<B: BaselineMapper> BaselineAdapter<B> {
    /// Wraps a baseline with the configuration used to finalize its loci
    /// and the backend name reported to the engine.
    pub fn new(inner: B, config: SegramConfig, backend: &'static str) -> Self {
        Self {
            inner,
            config,
            backend,
        }
    }

    /// The wrapped baseline.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Turns a located window into a full [`Mapping`]: extract a padded
    /// window around the locus and BitAlign the read against it. Returns
    /// `None` when the window cannot be extracted or exceeds the edit
    /// threshold — deterministically, so engine output stays
    /// thread-invariant.
    fn finalize(&self, read: &DnaSeq, located: BaselineMapping) -> Option<Mapping> {
        let total = self.inner.graph().total_chars();
        let pad = (read.len() as u64 / 4).max(32);
        let start = located.linear_start.saturating_sub(pad);
        let end = (located.linear_start + read.len() as u64 + pad).min(total);
        if end <= start {
            return None;
        }
        let lin = LinearizedGraph::extract(self.inner.graph(), start, end).ok()?;
        let alignment = BitAlignStage::new(&self.config).align(&lin, read).ok()?;
        let anchor = lin.origin(alignment.text_start.min(lin.len().saturating_sub(1)));
        Some(Mapping {
            start: anchor,
            linear_start: start + alignment.text_start as u64,
            path: alignment.graph_path(&lin),
            region: SeedRegion {
                start,
                end,
                seed: anchor,
                read_offset: 0,
            },
            alignment,
        })
    }
}

/// [`StepTimes`] carried over into the engine's stage accounting: stage
/// times map one-to-one, and the baseline's alignment-step workload
/// (candidates evaluated, reference characters covered) becomes the
/// region accounting — so MAPQ estimation and the cross-backend
/// occupancy model both see the baseline's *real* candidate stream, not
/// just the one finalized window.
fn stats_from_times(times: &StepTimes) -> MapStats {
    MapStats {
        seeding: times.seeding,
        filtering: times.filtering,
        alignment: times.alignment,
        regions_aligned: times.candidates,
        total_region_len: times.aligned_chars,
        ..MapStats::default()
    }
}

impl<B: BaselineMapper> ReadMapper for BaselineAdapter<B> {
    fn graph(&self) -> &GenomeGraph {
        self.inner.graph()
    }

    fn backend_name(&self) -> &'static str {
        self.backend
    }

    fn map_read(&self, read: &DnaSeq) -> (Option<Mapping>, MapStats) {
        let (located, times) = self.inner.map_read(read);
        let mut stats = stats_from_times(&times);
        let Some(located) = located else {
            return (None, stats);
        };
        let finalize_started = Instant::now();
        let mapping = self.finalize(read, located);
        stats.alignment += finalize_started.elapsed();
        (mapping, stats)
    }

    fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, Strand)>, MapStats) {
        let (forward, mut stats) = self.map_read(read);
        let rc = read.reverse_complement();
        let (reverse, reverse_stats) = self.map_read(&rc);
        stats.merge(&reverse_stats);
        (crate::mapper::better_stranded(forward, reverse), stats)
    }
}

/// One engine backend, built by [`Backend::build`]: the native SeGraM
/// mapper (monolithic or sharded) or one of the software baselines behind
/// a [`BaselineAdapter`]. Implements [`ReadMapper`] by delegation, so a
/// `MapEngine<'_, Backend>` drives any of the four through the identical
/// batched, order-preserving path.
#[derive(Debug)]
pub enum Backend {
    /// The native pipeline over one monolithic index.
    Segram(SegramMapper),
    /// The native pipeline over a coordinate-range sharded index.
    Sharded(ShardedIndex),
    /// The GraphAligner-like baseline.
    GraphAligner(BaselineAdapter<GraphAlignerLike>),
    /// The vg-like baseline.
    Vg(BaselineAdapter<VgLike>),
    /// The HGA-like baseline.
    Hga(BaselineAdapter<HgaLike>),
}

impl Backend {
    /// Builds a backend over one reference graph. `shards > 1` selects the
    /// sharded index for the native backend and is ignored for the
    /// baselines (the CLI rejects the combination up front).
    ///
    /// # Panics
    ///
    /// Panics when the graph is empty (the HGA baseline linearizes the
    /// whole graph at construction) or `shards` is zero for the sharded
    /// native backend.
    pub fn build(
        kind: BackendKind,
        graph: GenomeGraph,
        config: SegramConfig,
        shards: usize,
    ) -> Self {
        match kind {
            BackendKind::Segram if shards > 1 => {
                Self::Sharded(ShardedIndex::build(graph, config, shards))
            }
            BackendKind::Segram => Self::Segram(SegramMapper::new(graph, config)),
            BackendKind::GraphAligner => Self::GraphAligner(BaselineAdapter::new(
                GraphAlignerLike::new(graph, config),
                config,
                BackendKind::GraphAligner.name(),
            )),
            BackendKind::Vg => Self::Vg(BaselineAdapter::new(
                VgLike::new(graph, config),
                config,
                BackendKind::Vg.name(),
            )),
            BackendKind::Hga => Self::Hga(BaselineAdapter::new(
                HgaLike::new(graph),
                config,
                BackendKind::Hga.name(),
            )),
        }
    }

    /// Which backend this is.
    pub fn kind(&self) -> BackendKind {
        match self {
            Self::Segram(_) | Self::Sharded(_) => BackendKind::Segram,
            Self::GraphAligner(_) => BackendKind::GraphAligner,
            Self::Vg(_) => BackendKind::Vg,
            Self::Hga(_) => BackendKind::Hga,
        }
    }

    /// The sharded index, when this is the sharded native backend (for
    /// per-shard reporting).
    pub fn sharded(&self) -> Option<&ShardedIndex> {
        match self {
            Self::Sharded(index) => Some(index),
            _ => None,
        }
    }

    /// The wrapped mapper as a trait object: the single delegation point
    /// every [`ReadMapper`] method routes through, so adding a variant or
    /// a trait method means touching one match, not four.
    fn mapper(&self) -> &dyn ReadMapper {
        match self {
            Self::Segram(m) => m,
            Self::Sharded(m) => m,
            Self::GraphAligner(m) => m,
            Self::Vg(m) => m,
            Self::Hga(m) => m,
        }
    }
}

impl ReadMapper for Backend {
    fn graph(&self) -> &GenomeGraph {
        self.mapper().graph()
    }

    fn backend_name(&self) -> &'static str {
        self.mapper().backend_name()
    }

    fn map_read(&self, read: &DnaSeq) -> (Option<Mapping>, MapStats) {
        self.mapper().map_read(read)
    }

    fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, Strand)>, MapStats) {
        self.mapper().map_read_both(read)
    }
}

/// One read of an `eval compare` input: the sequence plus, when the FASTQ
/// came from `segram simulate`, the simulated truth location parsed from
/// its description.
#[derive(Clone, Debug)]
pub struct EvalRead {
    /// The read sequence.
    pub seq: DnaSeq,
    /// Linear coordinate the read was simulated from, when known.
    pub truth_linear: Option<u64>,
}

/// One backend's row of an `eval compare` run: the engine report plus
/// wall-clock, truth accuracy, and the modeled accelerator occupancy its
/// candidate-region stream implies.
#[derive(Clone, Copy, Debug)]
pub struct BackendEval {
    /// Backend identifier (from [`ReadMapper::backend_name`]).
    pub backend: &'static str,
    /// The engine's aggregate report for this run.
    pub report: EngineReport,
    /// Wall-clock seconds for the whole run.
    pub seconds: f64,
    /// Reads that carried a simulated truth location.
    pub with_truth: usize,
    /// Truth-carrying reads mapped within the tolerance.
    pub correct: usize,
    /// Modeled makespan of this backend's candidate-region stream on the
    /// two-stage accelerator pipeline (ns).
    pub modeled_makespan_ns: f64,
    /// Modeled BitAlign-stage utilization under the same stream.
    pub modeled_bitalign_utilization: f64,
}

impl BackendEval {
    /// Reads *consumed* per wall-clock second (total throughput; unmapped
    /// reads cost pipeline time too and count toward it).
    pub fn reads_per_second(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.report.reads as f64 / self.seconds
        }
    }

    /// Fraction of truth-carrying reads mapped within the tolerance, or
    /// `None` when the input carried no truth at all.
    pub fn accuracy(&self) -> Option<f64> {
        if self.with_truth == 0 {
            None
        } else {
            Some(self.correct as f64 / self.with_truth as f64)
        }
    }
}

/// Drives one backend over one read set through the engine and distills
/// the comparison row: throughput, per-stage times (in
/// [`BackendEval::report`]), truth accuracy, and the modeled accelerator
/// occupancy of the backend's candidate-region stream. Each aligned
/// region becomes one MinSeed+BitAlign job in the `segram-hw` pipeline
/// simulator — preserving the per-read burstiness the averaged analytic
/// model hides — with BitAlign time scaled by the read's average region
/// length, so a backend that aligns few huge candidates (HGA) and one
/// that aligns many small ones (SeGraM) are charged their real relative
/// workloads.
pub fn run_backend_eval(
    backend: &Backend,
    reads: &[EvalRead],
    threads: usize,
    both_strands: bool,
    tolerance: u64,
) -> BackendEval {
    let engine = MapEngine::new(
        backend,
        EngineConfig::with_threads(threads).both_strands(both_strands),
    );
    let mut jobs: Vec<SeedJob> = Vec::new();
    let mut with_truth = 0usize;
    let mut correct = 0usize;
    let started = Instant::now();
    let report = engine.map_stream(
        reads.iter(),
        |read| &read.seq,
        |read, outcome| {
            if outcome.stats.regions_aligned > 0 {
                let avg_chars =
                    outcome.stats.total_region_len as f64 / outcome.stats.regions_aligned as f64;
                let bitalign_ns = MODELED_BITALIGN_NS * (avg_chars / MODELED_REGION_CHARS);
                for _ in 0..outcome.stats.regions_aligned {
                    jobs.push(SeedJob {
                        minseed_ns: MODELED_MINSEED_NS,
                        bitalign_ns,
                    });
                }
            }
            if let Some(truth) = read.truth_linear {
                with_truth += 1;
                if let Some(mapping) = &outcome.mapping {
                    if mapping.linear_start.abs_diff(truth) <= tolerance {
                        correct += 1;
                    }
                }
            }
        },
    );
    let seconds = started.elapsed().as_secs_f64();
    let trace = simulate_pipeline(&jobs);
    BackendEval {
        backend: report.backend,
        report,
        seconds,
        with_truth,
        correct,
        modeled_makespan_ns: trace.makespan_ns(),
        modeled_bitalign_utilization: trace.bitalign_utilization(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_sim::DatasetConfig;

    fn dataset() -> segram_sim::Dataset {
        // The full 30 kb tiny reference: smaller genomes carry exact
        // repeats that legitimately divert a few 0-edit mappings away
        // from the simulated origin, which is not what these tests probe.
        let mut config = DatasetConfig::tiny(201);
        config.read_count = 12;
        config.illumina(100)
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::parse("nope"), None);
        assert_eq!(BackendKind::parse("GraphAligner"), None); // CLI names are lowercase
        assert!(BackendKind::Segram.supports_shards());
        assert!(!BackendKind::Vg.supports_shards());
    }

    #[test]
    fn factory_builds_every_kind_with_matching_identity() {
        let dataset = dataset();
        let config = SegramConfig::short_reads();
        for kind in BackendKind::ALL {
            let backend = Backend::build(kind, dataset.graph().clone(), config, 1);
            assert_eq!(backend.kind(), kind);
            assert_eq!(backend.backend_name(), kind.name());
            assert_eq!(backend.graph().total_chars(), dataset.graph().total_chars());
            assert!(backend.sharded().is_none());
        }
        let sharded = Backend::build(BackendKind::Segram, dataset.graph().clone(), config, 3);
        assert_eq!(sharded.kind(), BackendKind::Segram);
        assert_eq!(sharded.backend_name(), "segram");
        assert_eq!(sharded.sharded().expect("sharded").shards().len(), 3);
    }

    #[test]
    fn segram_backend_is_identical_to_the_direct_mapper() {
        let dataset = dataset();
        let config = SegramConfig::short_reads();
        let direct = SegramMapper::new(dataset.graph().clone(), config);
        let backend = Backend::build(BackendKind::Segram, dataset.graph().clone(), config, 1);
        for read in &dataset.reads {
            let (a, a_stats) = direct.map_read(&read.seq);
            let (b, b_stats) = backend.map_read(&read.seq);
            assert_eq!(a, b);
            assert_eq!(a_stats.regions_aligned, b_stats.regions_aligned);
        }
    }

    #[test]
    fn baseline_backends_map_near_truth_with_full_mappings() {
        let dataset = dataset();
        let config = SegramConfig::short_reads();
        for kind in [BackendKind::GraphAligner, BackendKind::Vg, BackendKind::Hga] {
            let backend = Backend::build(kind, dataset.graph().clone(), config, 1);
            let mut near = 0usize;
            for read in &dataset.reads {
                let (mapping, stats) = backend.map_read(&read.seq);
                if let Some(m) = mapping {
                    // The adapter produces a *complete* mapping: a CIGAR, a
                    // graph path, and a region — everything SAM/GAF needs.
                    assert!(!m.path.is_empty(), "{kind}: empty graph path");
                    assert!(!m.alignment.cigar.is_empty(), "{kind}: empty CIGAR");
                    assert!(m.region.start <= m.linear_start);
                    assert!(stats.regions_aligned >= 1);
                    if m.linear_start.abs_diff(read.true_start_linear) < 150 {
                        near += 1;
                    }
                }
            }
            assert!(
                near * 10 >= dataset.reads.len() * 7,
                "{kind}: only {near}/{} near truth",
                dataset.reads.len()
            );
        }
    }

    #[test]
    fn adapter_both_strand_mapping_recovers_reverse_reads() {
        let dataset = dataset();
        let config = SegramConfig::short_reads();
        let backend = Backend::build(
            BackendKind::GraphAligner,
            dataset.graph().clone(),
            config,
            1,
        );
        let stranded = segram_sim::simulate_stranded_reads(
            dataset.graph(),
            &segram_sim::ReadConfig::short_reads(8, 100, 203),
            1.0, // all reverse
        );
        let mut reverse_hits = 0usize;
        for read in &stranded {
            if let (Some((m, strand)), _) = backend.map_read_both(&read.seq) {
                if m.linear_start.abs_diff(read.true_start_linear) < 150 {
                    assert_eq!(strand, Strand::Reverse);
                    reverse_hits += 1;
                }
            }
        }
        assert!(reverse_hits >= 6, "only {reverse_hits}/8 recovered");
    }

    #[test]
    fn backend_eval_measures_throughput_accuracy_and_occupancy() {
        let dataset = dataset();
        let config = SegramConfig::short_reads();
        let reads: Vec<EvalRead> = dataset
            .reads
            .iter()
            .map(|r| EvalRead {
                seq: r.seq.clone(),
                truth_linear: Some(r.true_start_linear),
            })
            .collect();
        let backend = Backend::build(BackendKind::Segram, dataset.graph().clone(), config, 1);
        let eval = run_backend_eval(&backend, &reads, 2, false, 150);
        assert_eq!(eval.backend, "segram");
        assert_eq!(eval.report.reads, reads.len());
        assert_eq!(eval.with_truth, reads.len());
        assert!(eval.accuracy().expect("truth present") > 0.7);
        assert!(eval.reads_per_second() > 0.0);
        // Every aligned region became one modeled pipeline job.
        assert!(eval.modeled_makespan_ns > 0.0);
        assert!(eval.modeled_bitalign_utilization > 0.0);

        // Without truth annotations, accuracy is reported as absent, not 0.
        let blind: Vec<EvalRead> = reads
            .iter()
            .map(|r| EvalRead {
                seq: r.seq.clone(),
                truth_linear: None,
            })
            .collect();
        let eval = run_backend_eval(&backend, &blind, 1, false, 150);
        assert_eq!(eval.with_truth, 0);
        assert!(eval.accuracy().is_none());
    }
}
