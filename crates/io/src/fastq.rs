//! FASTQ reading and writing (the sequencer output format query reads
//! arrive in before they are streamed to the accelerator, Section 4).
//!
//! The strict four-line layout is enforced: `@header`, sequence, `+`
//! separator, quality string of the same length. Qualities are decoded from
//! Phred+33 into numeric scores so error-model code can consume them
//! directly.

use std::fmt::Write as _;

use segram_graph::DnaSeq;

use crate::error::FormatError;
use crate::fasta::{append_bases, Ambiguity};

/// Offset between an ASCII quality character and its Phred score.
pub const PHRED_OFFSET: u8 = 33;

/// Highest Phred score representable in the printable ASCII range.
pub const MAX_PHRED: u8 = b'~' - PHRED_OFFSET;

/// One FASTQ record: header, sequence, and per-base Phred qualities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read identifier: the first whitespace-delimited token after `@`.
    pub id: String,
    /// The rest of the header line (may be empty).
    pub description: String,
    /// The read sequence.
    pub seq: DnaSeq,
    /// Phred quality scores, one per base (already offset-corrected).
    pub qual: Vec<u8>,
}

impl FastqRecord {
    /// Creates a record with a uniform quality score and empty description.
    ///
    /// Useful when synthesizing FASTQ from simulators that model errors but
    /// not per-base confidence.
    ///
    /// # Panics
    ///
    /// Panics if `phred > MAX_PHRED` (the score would not be printable).
    pub fn with_uniform_quality(id: impl Into<String>, seq: DnaSeq, phred: u8) -> Self {
        assert!(
            phred <= MAX_PHRED,
            "phred score {phred} exceeds {MAX_PHRED}"
        );
        let qual = vec![phred; seq.len()];
        Self {
            id: id.into(),
            description: String::new(),
            seq,
            qual,
        }
    }

    /// The probability of error implied by the record's mean Phred score.
    ///
    /// Returns 1.0 for an empty quality vector (no evidence of correctness).
    pub fn mean_error_probability(&self) -> f64 {
        if self.qual.is_empty() {
            return 1.0;
        }
        let mean = self.qual.iter().map(|&q| f64::from(q)).sum::<f64>() / self.qual.len() as f64;
        10f64.powf(-mean / 10.0)
    }
}

/// Converts a per-base error probability into the closest Phred score.
///
/// # Examples
///
/// ```
/// use segram_io::phred_from_error_rate;
///
/// assert_eq!(phred_from_error_rate(0.01), 20); // Illumina-like
/// assert_eq!(phred_from_error_rate(0.10), 10); // noisy long reads
/// ```
pub fn phred_from_error_rate(error_rate: f64) -> u8 {
    if error_rate <= 0.0 {
        return MAX_PHRED;
    }
    let q = (-10.0 * error_rate.log10()).round();
    q.clamp(0.0, f64::from(MAX_PHRED)) as u8
}

/// Parses a FASTQ document with the given ambiguity policy.
///
/// # Errors
///
/// Returns [`FormatError`] on truncated records, missing `@`/`+` markers,
/// length mismatches between sequence and quality, quality characters
/// outside the printable Phred+33 range, or (under [`Ambiguity::Reject`])
/// non-`ACGT` sequence characters.
///
/// # Examples
///
/// ```
/// use segram_io::{read_fastq, Ambiguity};
///
/// let records = read_fastq("@r1\nACGT\n+\nIIII\n", Ambiguity::Reject)?;
/// assert_eq!(records[0].id, "r1");
/// assert_eq!(records[0].qual, vec![40; 4]);
/// # Ok::<(), segram_io::FormatError>(())
/// ```
pub fn read_fastq(text: &str, ambiguity: Ambiguity) -> Result<Vec<FastqRecord>, FormatError> {
    let mut records = Vec::new();
    let mut lines = text.lines().map(|l| l.trim_end_matches('\r')).enumerate();

    while let Some((idx, header)) = lines.next() {
        let line_no = idx + 1;
        if header.is_empty() {
            continue;
        }
        let Some(header) = header.strip_prefix('@') else {
            return Err(FormatError::malformed(
                line_no,
                "expected '@' at the start of a FASTQ record",
            ));
        };
        let header = header.trim();
        let (id, description) = match header.split_once(char::is_whitespace) {
            Some((id, desc)) => (id.to_owned(), desc.trim().to_owned()),
            None => (header.to_owned(), String::new()),
        };
        if id.is_empty() {
            return Err(FormatError::malformed(line_no, "empty FASTQ header"));
        }

        let (seq_idx, seq_line) = lines.next().ok_or(FormatError::UnexpectedEof {
            line: line_no + 1,
            expected: "a sequence line",
        })?;
        let mut seq = DnaSeq::with_capacity(seq_line.len());
        append_bases(&mut seq, seq_line.as_bytes(), seq_idx + 1, ambiguity)?;
        if seq.is_empty() {
            return Err(FormatError::invalid_record(
                seq_idx + 1,
                format!("read {id:?} has an empty sequence"),
            ));
        }

        let (sep_idx, sep) = lines.next().ok_or(FormatError::UnexpectedEof {
            line: seq_idx + 2,
            expected: "the '+' separator line",
        })?;
        if !sep.starts_with('+') {
            return Err(FormatError::malformed(
                sep_idx + 1,
                "expected '+' separator line",
            ));
        }

        let (qual_idx, qual_line) = lines.next().ok_or(FormatError::UnexpectedEof {
            line: sep_idx + 2,
            expected: "a quality line",
        })?;
        if qual_line.len() != seq.len() {
            return Err(FormatError::invalid_record(
                qual_idx + 1,
                format!(
                    "quality length {} does not match sequence length {}",
                    qual_line.len(),
                    seq.len()
                ),
            ));
        }
        let mut qual = Vec::with_capacity(qual_line.len());
        for &byte in qual_line.as_bytes() {
            if !(PHRED_OFFSET..=b'~').contains(&byte) {
                return Err(FormatError::malformed(
                    qual_idx + 1,
                    format!("quality character 0x{byte:02x} outside Phred+33 range"),
                ));
            }
            qual.push(byte - PHRED_OFFSET);
        }

        records.push(FastqRecord {
            id,
            description,
            seq,
            qual,
        });
    }
    Ok(records)
}

/// Renders records as a FASTQ document.
///
/// # Panics
///
/// Panics if any record's quality vector length differs from its sequence
/// length or contains scores above [`MAX_PHRED`]; such records cannot be
/// expressed in the format.
pub fn write_fastq(records: &[FastqRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        assert_eq!(
            rec.qual.len(),
            rec.seq.len(),
            "record {:?}: quality/sequence length mismatch",
            rec.id
        );
        if rec.description.is_empty() {
            let _ = writeln!(out, "@{}", rec.id);
        } else {
            let _ = writeln!(out, "@{} {}", rec.id, rec.description);
        }
        let _ = writeln!(out, "{}", rec.seq);
        out.push_str("+\n");
        for &q in &rec.qual {
            assert!(q <= MAX_PHRED, "record {:?}: phred {q} unprintable", rec.id);
            out.push((q + PHRED_OFFSET) as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        "@r1 first\nACGT\n+\nII5I\n@r2\nTTAA\n+anything\n!!!!\n".to_owned()
    }

    #[test]
    fn parses_two_records() {
        let records = read_fastq(&sample(), Ambiguity::Reject).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "r1");
        assert_eq!(records[0].description, "first");
        assert_eq!(records[0].qual, vec![40, 40, 20, 40]);
        assert_eq!(records[1].qual, vec![0; 4]);
    }

    #[test]
    fn round_trips() {
        let records = read_fastq(&sample(), Ambiguity::Reject).unwrap();
        let text = write_fastq(&records);
        let reparsed = read_fastq(&text, Ambiguity::Reject).unwrap();
        // The writer normalizes the separator line to bare '+'.
        assert_eq!(reparsed, records);
    }

    #[test]
    fn truncation_is_reported_per_missing_line() {
        for (text, expected_line) in [("@r1\n", 2), ("@r1\nACGT\n", 3), ("@r1\nACGT\n+\n", 4)] {
            let err = read_fastq(text, Ambiguity::Reject).unwrap_err();
            assert!(
                matches!(err, FormatError::UnexpectedEof { line, .. } if line == expected_line),
                "text {text:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn quality_length_mismatch_is_rejected() {
        let err = read_fastq("@r1\nACGT\n+\nIII\n", Ambiguity::Reject).unwrap_err();
        assert!(matches!(err, FormatError::InvalidRecord { line: 4, .. }));
    }

    #[test]
    fn missing_markers_are_rejected() {
        assert!(read_fastq("r1\nACGT\n+\nIIII\n", Ambiguity::Reject).is_err());
        assert!(read_fastq("@r1\nACGT\n-\nIIII\n", Ambiguity::Reject).is_err());
    }

    #[test]
    fn uniform_quality_constructor_and_error_probability() {
        let rec = FastqRecord::with_uniform_quality("r", "ACGT".parse().unwrap(), 20);
        assert_eq!(rec.qual, vec![20; 4]);
        let p = rec.mean_error_probability();
        assert!((p - 0.01).abs() < 1e-12);
    }

    #[test]
    fn phred_conversion_clamps() {
        assert_eq!(phred_from_error_rate(0.0), MAX_PHRED);
        assert_eq!(phred_from_error_rate(1.0), 0);
        assert_eq!(phred_from_error_rate(0.05), 13);
    }

    #[test]
    fn blank_lines_between_records_are_tolerated() {
        let records =
            read_fastq("@r1\nACGT\n+\nIIII\n\n@r2\nTT\n+\nII\n", Ambiguity::Reject).unwrap();
        assert_eq!(records.len(), 2);
    }
}
