//! Property tests for the pangenome's channel placement — the greedy
//! size-balanced assignment of chromosomes to memory channels
//! (Section 8.3), which now also drives the engine's worker-to-shard
//! affinity through the shared `balance_loads`.
//!
//! Invariants: every chromosome is placed on exactly one channel, the
//! imbalance metric is well-formed (`>= 1.0`), and equal-size chromosomes
//! split evenly over channels with exactly zero excess imbalance.

use segram_core::{Pangenome, SegramConfig};
use segram_graph::{build_graph, GenomeGraph};
use segram_sim::{generate_reference, simulate_variants, GenomeConfig, VariantConfig};
use segram_testkit::prelude::*;

/// Builds a pangenome whose chromosome `i` has length `sizes[i]` and is
/// generated from seed `seeds[i]` (identical seeds + sizes give byte- and
/// memory-identical chromosomes).
fn pangenome(sizes: &[usize], seeds: &[u64]) -> Pangenome {
    let chroms: Vec<(String, GenomeGraph)> = sizes
        .iter()
        .zip(seeds)
        .enumerate()
        .map(|(i, (&len, &seed))| {
            let reference = generate_reference(&GenomeConfig::human_like(len, seed));
            let variants = simulate_variants(&reference, &VariantConfig::human_like(seed ^ 0x5a));
            (
                format!("chr{}", i + 1),
                build_graph(&reference, variants).unwrap().graph,
            )
        })
        .collect();
    Pangenome::new(chroms, SegramConfig::short_reads())
}

proptest! {
    #[test]
    fn every_chromosome_is_placed_exactly_once(
        sizes in prop::collection::vec(2_000usize..6_000, 1..6),
        channels in 1usize..9,
    ) {
        let seeds: Vec<u64> = (0..sizes.len() as u64).map(|i| 900 + i).collect();
        let p = pangenome(&sizes, &seeds);
        let placement = p.channel_placement(channels);
        prop_assert_eq!(placement.len(), channels);
        // Exactly-once partition of chromosome indices.
        let mut placed: Vec<usize> = placement.iter().flatten().copied().collect();
        placed.sort_unstable();
        let expected: Vec<usize> = (0..sizes.len()).collect();
        prop_assert_eq!(placed, expected);
        // The imbalance metric is max-over-mean, so never below 1.0 for a
        // placement that carries any load at all.
        let imbalance = p.placement_imbalance(&placement);
        prop_assert!(imbalance >= 1.0 - 1e-12, "imbalance {imbalance}");
    }

    #[test]
    fn equal_size_chromosomes_split_with_zero_imbalance(
        per_channel in 1usize..4,
        channels in 1usize..5,
        size in prop::sample::select(vec![2_500usize, 4_000]),
    ) {
        // `channels * per_channel` identical chromosomes (same seed, same
        // size => identical graph + index bytes): greedy largest-first
        // placement must distribute them `per_channel`-per-channel, with
        // imbalance exactly 1.0 (zero excess).
        let count = per_channel * channels;
        let sizes = vec![size; count];
        let seeds = vec![777u64; count];
        let p = pangenome(&sizes, &seeds);
        let placement = p.channel_placement(channels);
        for channel in &placement {
            prop_assert_eq!(channel.len(), per_channel);
        }
        let imbalance = p.placement_imbalance(&placement);
        prop_assert!(
            (imbalance - 1.0).abs() < 1e-12,
            "equal-size shards must have zero excess imbalance, got {imbalance}"
        );
    }
}
