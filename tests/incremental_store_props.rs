//! Differential and corruption-class tests for the versioned pangenome
//! store.
//!
//! The core contract: [`update_store`] applied to a persisted epoch-N
//! store plus a variant delta must produce exactly the graph and index
//! payloads a from-scratch build over the combined variant set would —
//! while provably re-extracting only the touched coordinate ranges. And
//! every CHANGELOG corruption class (truncation, epoch skew,
//! parent-checksum mismatch, missing changelog, non-reconstructing
//! history) must surface as a named [`PersistError`], never a panic.

use segram_graph::{build_graph, graphs_identical, Base, DnaSeq, Variant, VariantSet};
use segram_index::{
    decode_index, encode_index, frequency_threshold, initial_changelog, update_store, GraphIndex,
    MinimizerScheme, PersistError, PersistedIndex,
};

const DISCARD: f64 = 0.02;
const BUCKET_BITS: u32 = 6;

fn scheme() -> MinimizerScheme {
    MinimizerScheme::new(5, 11)
}

/// 2880 bp of non-trivial periodic reference.
fn reference() -> DnaSeq {
    "ACGTTGCAGTCATGCAACGGTTAC"
        .repeat(120)
        .parse()
        .expect("valid bases")
}

/// Builds a complete epoch-0 store the way `segram index build` does:
/// graph from reference + variants, index over the graph, changelog
/// recording the reference and the applied set.
fn build_store(reference: &DnaSeq, variants: VariantSet, source: &str) -> PersistedIndex {
    let built = build_graph(reference, variants).expect("variants apply");
    let changelog = initial_changelog(reference.clone(), &built, source);
    let index = GraphIndex::build(&built.graph, scheme(), BUCKET_BITS);
    let freq_threshold = frequency_threshold(&index, DISCARD);
    PersistedIndex {
        graph: built.graph,
        index,
        discard_frac: DISCARD,
        freq_threshold,
        changelog: Some(changelog),
        provenance: None,
    }
}

/// Widely spaced epoch-0 variants across the whole reference (no two
/// conflict, so the applied set equals the input set).
fn base_variants() -> Vec<Variant> {
    vec![
        Variant::snp(40, Base::C),
        Variant::insertion(301, "TTAG".parse().expect("valid bases")),
        Variant::deletion(702, 3),
        Variant::snp(1203, Base::A),
        Variant::deletion(1804, 2),
        Variant::snp(2205, Base::G),
    ]
}

/// The delta: confined to the last ~10 % of the reference, including one
/// deliberately conflicting pair (the SNP sits inside the deletion's
/// footprint) so the conflict-dropping path is exercised too.
fn delta_variants() -> Vec<Variant> {
    vec![
        Variant::snp(2610, Base::A),
        Variant::insertion(2650, "CATT".parse().expect("valid bases")),
        Variant::deletion(2700, 4),
        Variant::snp(2702, Base::C),
    ]
}

/// A second delta, elsewhere, for epoch-chaining tests.
fn second_delta() -> Vec<Variant> {
    vec![Variant::snp(150, Base::G), Variant::deletion(180, 2)]
}

fn store_and_delta() -> (PersistedIndex, VariantSet) {
    let reference = reference();
    let v1 = build_store(
        &reference,
        base_variants().into_iter().collect(),
        "base.vcf",
    );
    (v1, delta_variants().into_iter().collect())
}

/// The union the incremental path effectively builds over: the parent's
/// *applied* set plus the delta.
fn combined(parent: &PersistedIndex, delta: &VariantSet) -> VariantSet {
    let applied = &parent.changelog.as_ref().expect("versioned store").applied;
    applied.iter().chain(delta.iter()).cloned().collect()
}

#[test]
fn update_store_equals_scratch_build_over_combined_variants() {
    let (v1, delta) = store_and_delta();
    let out = update_store(&v1, &delta, "delta.vcf").expect("delta applies");

    let scratch = build_store(&reference(), combined(&v1, &delta), "combined.vcf");
    assert!(
        graphs_identical(&out.persisted.graph, &scratch.graph),
        "updated graph differs from the scratch build"
    );
    // identity() hashes the encoded GRAPH and INDEX payload bytes, so
    // equality here is byte-identity of everything mapping consumes.
    assert_eq!(out.persisted.identity(), scratch.identity());
    assert_eq!(out.persisted.freq_threshold, scratch.freq_threshold);

    // The update was genuinely partial: most locations carried over, and
    // the re-extracted characters are a fraction of the genome.
    assert!(out.stats.carried_locations > 0, "nothing carried");
    assert!(
        out.stats.carried_locations > out.stats.extracted_locations,
        "carried {} <= extracted {}",
        out.stats.carried_locations,
        out.stats.extracted_locations
    );
    let total = out.persisted.graph.total_chars();
    assert!(
        out.stats.extracted_chars < total / 2,
        "re-extracted {} of {total} chars — not a partial update",
        out.stats.extracted_chars
    );
    // The touched ranges cover a strict subset of the reference.
    let touched_span: u64 = out.log.touched.iter().map(|(s, e)| e - s).sum();
    assert!(!out.log.touched.is_empty());
    assert!(touched_span < reference().len() as u64 / 2);

    // Epoch bookkeeping: one step forward, full history retained.
    let log = out.persisted.changelog.as_ref().expect("still versioned");
    assert_eq!(log.epoch, 1);
    assert_eq!(log.parent, v1.identity());
    assert_eq!(log.history.len(), 2);
    assert_eq!(log.history[1].source, "delta.vcf");
    assert!(log.history[1].added_variants > 0);
    assert!(
        log.history[1].dropped_variants > 0,
        "the conflicting SNP should have been dropped"
    );
}

#[test]
fn chained_updates_equal_one_scratch_build_in_memory_and_through_disk() {
    let (v1, delta1) = store_and_delta();
    let delta2: VariantSet = second_delta().into_iter().collect();

    // In-memory chain: v1 -> v2 -> v3 without touching disk.
    let v2 = update_store(&v1, &delta1, "d1.vcf")
        .expect("d1 applies")
        .persisted;
    let v3 = update_store(&v2, &delta2, "d2.vcf")
        .expect("d2 applies")
        .persisted;

    let all = combined(&v2, &delta2);
    let scratch = build_store(&reference(), all, "all.vcf");
    assert!(graphs_identical(&v3.graph, &scratch.graph));
    assert_eq!(v3.identity(), scratch.identity());
    assert_eq!(v3.freq_threshold, scratch.freq_threshold);

    // Disk chain: persist v2, reload it, and update the reloaded copy —
    // the CHANGELOG section alone must be enough to continue the chain.
    let reloaded = decode_index(&encode_index(&v2)).expect("own encoding loads");
    assert_eq!(reloaded.identity(), v2.identity());
    let v3_from_disk = update_store(&reloaded, &delta2, "d2.vcf")
        .expect("reloaded store updates")
        .persisted;
    assert_eq!(v3_from_disk.identity(), v3.identity());
    let log = v3_from_disk.changelog.as_ref().expect("versioned");
    assert_eq!(log.epoch, 2);
    assert_eq!(
        log.history.iter().map(|e| e.epoch).collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
}

#[test]
fn updated_store_round_trips_byte_identically() {
    let (v1, delta) = store_and_delta();
    let out = update_store(&v1, &delta, "delta.vcf").expect("delta applies");
    let bytes = encode_index(&out.persisted);
    let loaded = decode_index(&bytes).expect("own encoding loads");
    assert_eq!(encode_index(&loaded), bytes);
    assert_eq!(loaded.identity(), out.persisted.identity());
    let log = loaded.changelog.as_ref().expect("changelog survives");
    assert_eq!(log.history.len(), 2);
    assert_eq!(log.history[1].touched, out.log.touched);
}

#[test]
fn legacy_store_without_changelog_is_refused_by_name() {
    let (v1, delta) = store_and_delta();
    let legacy = PersistedIndex {
        changelog: None,
        ..v1
    };
    assert!(matches!(
        update_store(&legacy, &delta, "delta.vcf"),
        Err(PersistError::NoChangelog)
    ));
}

#[test]
fn epoch_skew_in_the_persisted_chain_is_detected() {
    let (v1, delta) = store_and_delta();
    let mut v2 = update_store(&v1, &delta, "delta.vcf")
        .expect("delta applies")
        .persisted;

    // Tamper the *top-level* epoch: encode re-stamps identities from the
    // payloads, but epochs are trusted as stored — the decoder must catch
    // the disagreement with the history tail.
    v2.changelog.as_mut().expect("versioned").epoch = 5;
    let err = decode_index(&encode_index(&v2)).expect_err("skewed epoch must not load");
    assert!(
        matches!(
            err,
            PersistError::EpochSkew {
                expected: 1,
                found: 5
            }
        ),
        "got {err}"
    );

    // Tamper an *inner* history epoch: entries must count 0..n.
    let (v1, delta) = store_and_delta();
    let mut v2 = update_store(&v1, &delta, "delta.vcf")
        .expect("delta applies")
        .persisted;
    v2.changelog.as_mut().expect("versioned").history[0].epoch = 3;
    let err = decode_index(&encode_index(&v2)).expect_err("skewed history must not load");
    assert!(matches!(err, PersistError::EpochSkew { .. }), "got {err}");
}

#[test]
fn parent_checksum_mismatch_in_the_chain_is_detected() {
    let (v1, delta) = store_and_delta();
    let mut v2 = update_store(&v1, &delta, "delta.vcf")
        .expect("delta applies")
        .persisted;

    // Break the hash chain between history entries: entry 1's parent no
    // longer equals entry 0's identity.
    v2.changelog.as_mut().expect("versioned").history[0].identity ^= 0xdead_beef;
    let err = decode_index(&encode_index(&v2)).expect_err("broken chain must not load");
    assert!(
        matches!(err, PersistError::ParentMismatch { .. }),
        "got {err}"
    );

    // Break the top-level parent against the history tail.
    let (v1, delta) = store_and_delta();
    let mut v2 = update_store(&v1, &delta, "delta.vcf")
        .expect("delta applies")
        .persisted;
    v2.changelog.as_mut().expect("versioned").parent ^= 1;
    let err = decode_index(&encode_index(&v2)).expect_err("forged parent must not load");
    assert!(
        matches!(err, PersistError::ParentMismatch { .. }),
        "got {err}"
    );
}

#[test]
fn non_reconstructing_changelog_is_refused_before_any_delta_math() {
    // A changelog whose applied set does not rebuild the stored graph
    // must be rejected — otherwise it would seed a silently wrong delta.
    let (v1, delta) = store_and_delta();
    let mut forged = v1.clone();
    forged.changelog.as_mut().expect("versioned").applied = std::iter::empty::<Variant>().collect();
    match update_store(&forged, &delta, "delta.vcf") {
        Err(PersistError::Corrupt { section, .. }) => assert_eq!(section, "changelog"),
        other => panic!("forged applied set gave {other:?}"),
    }
}

#[test]
fn every_truncation_point_of_a_versioned_store_errors_cleanly() {
    let (v1, delta) = store_and_delta();
    let v2 = update_store(&v1, &delta, "delta.vcf")
        .expect("delta applies")
        .persisted;
    let bytes = encode_index(&v2);
    for cut in 0..bytes.len() {
        let err = decode_index(&bytes[..cut]).expect_err("truncated file must not load");
        match err {
            PersistError::BadMagic
            | PersistError::Truncated { .. }
            | PersistError::ChecksumMismatch { .. }
            | PersistError::Corrupt { .. } => {}
            other => panic!("truncation at {cut} gave unexpected error {other}"),
        }
    }
}

#[test]
fn changelog_payload_flips_are_caught_by_the_section_checksum() {
    let (v1, delta) = store_and_delta();
    let v2 = update_store(&v1, &delta, "delta.vcf")
        .expect("delta applies")
        .persisted;
    let bytes = encode_index(&v2);
    // A versioned store has four sections; everything past the header is
    // checksummed payload.
    let header = 8 + 4 + 4 + 4 * 28;
    for pos in [header, header + (bytes.len() - header) / 2, bytes.len() - 1] {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x40;
        let err = decode_index(&flipped).expect_err("flip must be detected");
        assert!(
            matches!(
                err,
                PersistError::ChecksumMismatch { .. }
                    | PersistError::Truncated { .. }
                    | PersistError::Corrupt { .. }
            ),
            "payload flip at {pos} gave {err}"
        );
    }
}
