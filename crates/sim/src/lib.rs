//! # segram-sim
//!
//! Deterministic synthetic-data substrate for the SeGraM reproduction:
//! reference genomes ([`generate_reference`]), variant sets
//! ([`simulate_variants`]), graph-aware read simulation
//! ([`simulate_reads`]) and the Section-10 dataset presets
//! ([`DatasetConfig`], [`brca1_like`], [`pasgal_suite`]).
//!
//! These stand in for GRCh38 + GIAB VCFs, PBSIM2 and Mason (see DESIGN.md
//! for the substitution rationale); everything is seeded and reproducible.
//!
//! ## Example
//!
//! ```
//! use segram_sim::{DatasetConfig, measured_error_rate};
//!
//! let dataset = DatasetConfig::tiny(7).illumina(100);
//! assert_eq!(dataset.reads.len(), 20);
//! let rate = measured_error_rate(&dataset.reads);
//! assert!(rate < 0.03); // ~1% Illumina-like error
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod datasets;
mod genome;
mod reads;
mod variants;

pub use datasets::{brca1_like, pasgal_suite, Brca1Dataset, Dataset, DatasetConfig, RegionDataset};
pub use genome::{gc_fraction, generate_reference, GenomeConfig};
pub use reads::{
    measured_error_rate, path_fragment, simulate_reads, simulate_stranded_reads,
    suggested_threshold, true_node, ErrorProfile, ReadConfig, SimulatedRead, Strand,
};
pub use variants::{classify, simulate_variants, VariantConfig, VariantMix};
