//! Genetic variants (the content of the paper's VCF inputs): SNPs, small
//! insertions/deletions, and larger structural variants, all expressed
//! against a linear reference.

use std::fmt;

use crate::{Base, DnaSeq};

/// The kind and payload of a single genetic variant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum VariantKind {
    /// Single-nucleotide polymorphism: one reference base replaced by `alt`.
    Snp {
        /// The alternative base.
        alt: Base,
    },
    /// Insertion of `seq` *before* the reference position.
    Insertion {
        /// Inserted sequence (non-empty).
        seq: DnaSeq,
    },
    /// Deletion of `len` reference bases starting at the reference position.
    Deletion {
        /// Number of deleted bases (non-zero).
        len: u64,
    },
    /// Balanced replacement of `ref_len` reference bases by `alt`
    /// (covers multi-base substitutions and structural variants).
    Replacement {
        /// Number of replaced reference bases.
        ref_len: u64,
        /// Replacement sequence (non-empty).
        alt: DnaSeq,
    },
}

/// A variant anchored at a 0-based reference position.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Variant {
    /// 0-based position on the linear reference.
    pub pos: u64,
    /// Kind and payload.
    pub kind: VariantKind,
}

impl Variant {
    /// Creates a SNP.
    pub fn snp(pos: u64, alt: Base) -> Self {
        Self {
            pos,
            kind: VariantKind::Snp { alt },
        }
    }

    /// Creates an insertion of `seq` before `pos`.
    pub fn insertion(pos: u64, seq: DnaSeq) -> Self {
        Self {
            pos,
            kind: VariantKind::Insertion { seq },
        }
    }

    /// Creates a deletion of `len` bases starting at `pos`.
    pub fn deletion(pos: u64, len: u64) -> Self {
        Self {
            pos,
            kind: VariantKind::Deletion { len },
        }
    }

    /// Creates a replacement of `ref_len` bases at `pos` by `alt`.
    pub fn replacement(pos: u64, ref_len: u64, alt: DnaSeq) -> Self {
        Self {
            pos,
            kind: VariantKind::Replacement { ref_len, alt },
        }
    }

    /// The half-open reference interval `[start, end)` consumed by this
    /// variant. Insertions consume an empty interval.
    pub fn ref_interval(&self) -> (u64, u64) {
        match &self.kind {
            VariantKind::Snp { .. } => (self.pos, self.pos + 1),
            VariantKind::Insertion { .. } => (self.pos, self.pos),
            VariantKind::Deletion { len } => (self.pos, self.pos + len),
            VariantKind::Replacement { ref_len, .. } => (self.pos, self.pos + ref_len),
        }
    }

    /// The alternative allele sequence (empty for deletions).
    pub fn alt_seq(&self) -> DnaSeq {
        match &self.kind {
            VariantKind::Snp { alt } => [*alt].into_iter().collect(),
            VariantKind::Insertion { seq } => seq.clone(),
            VariantKind::Deletion { .. } => DnaSeq::new(),
            VariantKind::Replacement { alt, .. } => alt.clone(),
        }
    }

    /// `true` when the variant consumes no reference characters.
    pub fn is_insertion(&self) -> bool {
        matches!(self.kind, VariantKind::Insertion { .. })
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            VariantKind::Snp { alt } => write!(f, "snp@{}={}", self.pos, alt),
            VariantKind::Insertion { seq } => write!(f, "ins@{}={}", self.pos, seq),
            VariantKind::Deletion { len } => write!(f, "del@{}+{}", self.pos, len),
            VariantKind::Replacement { ref_len, alt } => {
                write!(f, "rep@{}+{}={}", self.pos, ref_len, alt)
            }
        }
    }
}

/// A collection of variants against one linear reference, playing the role
/// of the paper's VCF files (Section 5).
///
/// # Examples
///
/// ```
/// use segram_graph::{Base, Variant, VariantSet};
///
/// let mut set = VariantSet::new();
/// set.push(Variant::snp(10, Base::T));
/// set.push(Variant::deletion(4, 2));
/// let sorted = set.into_sorted();
/// assert_eq!(sorted.as_slice()[0].pos, 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VariantSet {
    variants: Vec<Variant>,
}

impl VariantSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variant.
    pub fn push(&mut self, variant: Variant) {
        self.variants.push(variant);
    }

    /// Number of variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Returns `true` when the set has no variants.
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Borrows the variants.
    pub fn as_slice(&self) -> &[Variant] {
        &self.variants
    }

    /// Iterates over the variants.
    pub fn iter(&self) -> std::slice::Iter<'_, Variant> {
        self.variants.iter()
    }

    /// Sorts the set by `(ref start, insertion-first)` and returns it.
    ///
    /// Graph construction requires this order; insertion-first matches the
    /// node ordering rule described in
    /// [`build_graph`](crate::construct::build_graph).
    pub fn into_sorted(mut self) -> Self {
        self.variants.sort_by_key(|v| {
            let (start, end) = v.ref_interval();
            (start, end, v.alt_seq().len())
        });
        self
    }

    /// Removes variants whose reference intervals overlap an earlier
    /// variant's interval, returning the number removed.
    ///
    /// The set must already be sorted (see [`Self::into_sorted`]). Two
    /// zero-length intervals at the same position do **not** overlap;
    /// multiple alternates over the same interval (multi-allelic sites) are
    /// kept.
    pub fn drop_overlapping(&mut self) -> usize {
        let mut kept: Vec<Variant> = Vec::with_capacity(self.variants.len());
        let mut dropped = 0usize;
        let mut frontier = 0u64; // first ref position not yet consumed
        let mut last_interval: Option<(u64, u64)> = None;
        for v in self.variants.drain(..) {
            let (start, end) = v.ref_interval();
            let multi_allelic = last_interval == Some((start, end)) && start != end;
            if start >= frontier || multi_allelic {
                frontier = frontier.max(end);
                last_interval = Some((start, end));
                kept.push(v);
            } else {
                dropped += 1;
            }
        }
        self.variants = kept;
        dropped
    }
}

impl FromIterator<Variant> for VariantSet {
    fn from_iter<I: IntoIterator<Item = Variant>>(iter: I) -> Self {
        Self {
            variants: iter.into_iter().collect(),
        }
    }
}

impl Extend<Variant> for VariantSet {
    fn extend<I: IntoIterator<Item = Variant>>(&mut self, iter: I) {
        self.variants.extend(iter);
    }
}

impl IntoIterator for VariantSet {
    type Item = Variant;
    type IntoIter = std::vec::IntoIter<Variant>;

    fn into_iter(self) -> Self::IntoIter {
        self.variants.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_intervals() {
        assert_eq!(Variant::snp(5, Base::A).ref_interval(), (5, 6));
        assert_eq!(
            Variant::insertion(5, "AC".parse().unwrap()).ref_interval(),
            (5, 5)
        );
        assert_eq!(Variant::deletion(5, 3).ref_interval(), (5, 8));
        assert_eq!(
            Variant::replacement(5, 2, "GGG".parse().unwrap()).ref_interval(),
            (5, 7)
        );
    }

    #[test]
    fn alt_seqs() {
        assert_eq!(Variant::snp(0, Base::G).alt_seq().to_string(), "G");
        assert_eq!(Variant::deletion(0, 2).alt_seq().len(), 0);
        assert_eq!(
            Variant::replacement(0, 1, "TT".parse().unwrap())
                .alt_seq()
                .to_string(),
            "TT"
        );
    }

    #[test]
    fn sorting_orders_by_position() {
        let set: VariantSet = [
            Variant::snp(9, Base::A),
            Variant::deletion(2, 2),
            Variant::insertion(5, "T".parse().unwrap()),
        ]
        .into_iter()
        .collect();
        let sorted = set.into_sorted();
        let positions: Vec<u64> = sorted.iter().map(|v| v.pos).collect();
        assert_eq!(positions, vec![2, 5, 9]);
    }

    #[test]
    fn overlap_dropping_keeps_disjoint_and_multiallelic() {
        let set: VariantSet = [
            Variant::deletion(0, 3),
            Variant::snp(1, Base::A), // overlaps the deletion
            Variant::snp(4, Base::C), // disjoint
            Variant::snp(4, Base::G), // multi-allelic with previous: kept
            Variant::insertion(4, "T".parse().unwrap()), // zero-length at 4... after [4,5) -> overlaps
            Variant::insertion(5, "T".parse().unwrap()), // at frontier: kept
        ]
        .into_iter()
        .collect();
        let mut set = set.into_sorted();
        // sorted order: ins@4 has interval (4,4) and sorts before snp@4 (4,5)
        let dropped = set.drop_overlapping();
        assert_eq!(dropped, 1, "only the snp under the deletion is dropped");
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Variant::snp(3, Base::T).to_string(), "snp@3=T");
        assert_eq!(Variant::deletion(3, 4).to_string(), "del@3+4");
    }
}
