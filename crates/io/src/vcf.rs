//! A VCF subset reader/writer (the paper's variation input, Section 5).
//!
//! The paper builds its genome graphs from GRCh38 plus seven GIAB VCF
//! files. This module implements the subset of VCF 4.2 needed for that
//! role: site records with `CHROM POS ID REF ALT QUAL FILTER INFO` columns,
//! multi-allelic `ALT` lists, and the left-anchored indel convention.
//! Genotype columns are tolerated and ignored (graph construction cares
//! about which alleles exist, not who carries them). Symbolic alleles
//! (`<DEL>`, breakends) are either skipped or rejected according to
//! [`VcfOptions`].
//!
//! Parsed records become [`segram_graph::Variant`] values so they can be
//! fed straight into [`segram_graph::build_graph`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use segram_graph::{Base, DnaSeq, Variant, VariantKind, VariantSet};

use crate::error::FormatError;

/// Parsing options for [`read_vcf`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VcfOptions {
    /// When `true`, records this subset cannot express (symbolic alleles,
    /// breakends, `N`-containing alleles, missing `.` alleles) are counted
    /// in [`VcfDocument::skipped`] instead of failing the parse.
    pub skip_unsupported: bool,
}

impl VcfOptions {
    /// Options that skip unsupported records instead of erroring.
    pub fn lenient() -> Self {
        Self {
            skip_unsupported: true,
        }
    }
}

/// The result of parsing a VCF document: variants grouped per chromosome.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VcfDocument {
    /// Variants per `CHROM` value, in file order.
    pub per_chrom: BTreeMap<String, VariantSet>,
    /// Records skipped under [`VcfOptions::skip_unsupported`].
    pub skipped: usize,
}

impl VcfDocument {
    /// Total number of variants across all chromosomes.
    pub fn len(&self) -> usize {
        self.per_chrom.values().map(VariantSet::len).sum()
    }

    /// `true` when no variants were parsed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The variants for one chromosome, if any record mentioned it.
    pub fn chrom(&self, name: &str) -> Option<&VariantSet> {
        self.per_chrom.get(name)
    }

    /// Consumes the document and returns the single chromosome's variants.
    ///
    /// Convenient for single-reference workflows (one graph per chromosome,
    /// as in the paper's per-chromosome pre-processing).
    ///
    /// # Errors
    ///
    /// Returns the document unchanged when it does not contain exactly one
    /// chromosome.
    pub fn into_single_chrom(mut self) -> Result<(String, VariantSet), Self> {
        if self.per_chrom.len() == 1 {
            let (name, set) = self.per_chrom.pop_first().expect("len checked");
            Ok((name, set))
        } else {
            Err(self)
        }
    }
}

/// Parses a VCF document.
///
/// Positions are converted from VCF's 1-based coordinates to the 0-based
/// coordinates used by [`Variant`]. Indels following the VCF anchor-base
/// convention are recognized and converted to anchor-free
/// [`VariantKind::Insertion`]/[`VariantKind::Deletion`] values; everything
/// else becomes a [`VariantKind::Replacement`].
///
/// # Errors
///
/// Returns [`FormatError`] for missing columns, unparsable positions,
/// invalid allele strings, and (unless [`VcfOptions::skip_unsupported`])
/// symbolic or missing alleles.
///
/// # Examples
///
/// ```
/// use segram_io::{read_vcf, VcfOptions};
/// use segram_graph::{Base, VariantKind};
///
/// let text = concat!(
///     "##fileformat=VCFv4.2\n",
///     "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n",
///     "chr1\t5\trs1\tA\tG\t.\tPASS\t.\n",
///     "chr1\t7\t.\tC\tCTT\t.\tPASS\t.\n",
/// );
/// let doc = read_vcf(text, VcfOptions::default())?;
/// let set = doc.chrom("chr1").unwrap();
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.as_slice()[0].pos, 4); // 0-based
/// assert!(matches!(set.as_slice()[0].kind, VariantKind::Snp { alt: Base::G }));
/// assert!(matches!(set.as_slice()[1].kind, VariantKind::Insertion { .. }));
/// # Ok::<(), segram_io::FormatError>(())
/// ```
pub fn read_vcf(text: &str, options: VcfOptions) -> Result<VcfDocument, FormatError> {
    let mut doc = VcfDocument::default();
    let mut saw_column_header = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() || line.starts_with("##") {
            continue;
        }
        if let Some(header) = line.strip_prefix('#') {
            validate_column_header(header, line_no)?;
            saw_column_header = true;
            continue;
        }
        if !saw_column_header {
            return Err(FormatError::malformed(
                line_no,
                "data record before the #CHROM column header",
            ));
        }
        parse_record(line, line_no, options, &mut doc)?;
    }
    Ok(doc)
}

fn validate_column_header(header: &str, line_no: usize) -> Result<(), FormatError> {
    let mut cols = header.split('\t');
    const MANDATORY: [&str; 8] = ["CHROM", "POS", "ID", "REF", "ALT", "QUAL", "FILTER", "INFO"];
    for want in MANDATORY {
        match cols.next() {
            Some(got) if got == want => {}
            got => {
                return Err(FormatError::malformed(
                    line_no,
                    format!("column header: expected {want:?}, found {got:?}"),
                ))
            }
        }
    }
    Ok(())
}

fn parse_record(
    line: &str,
    line_no: usize,
    options: VcfOptions,
    doc: &mut VcfDocument,
) -> Result<(), FormatError> {
    let mut cols = line.split('\t');
    let mut next = |name: &'static str| {
        cols.next().ok_or(FormatError::UnexpectedEof {
            line: line_no,
            expected: name,
        })
    };
    let chrom = next("the CHROM column")?;
    let pos_text = next("the POS column")?;
    let _id = next("the ID column")?;
    let ref_text = next("the REF column")?;
    let alt_text = next("the ALT column")?;
    // QUAL/FILTER/INFO and any genotype columns are ignored.

    let pos_1based: u64 = pos_text
        .parse()
        .map_err(|_| FormatError::malformed(line_no, format!("unparsable POS {pos_text:?}")))?;
    if pos_1based == 0 {
        return Err(FormatError::malformed(line_no, "POS must be >= 1"));
    }
    let pos = pos_1based - 1;

    let Some(ref_allele) = parse_allele(ref_text) else {
        return skip_or_fail(options, doc, line_no, "unsupported REF allele");
    };
    if ref_allele.is_empty() {
        return Err(FormatError::malformed(line_no, "empty REF allele"));
    }

    for alt_text in alt_text.split(',') {
        let Some(alt_allele) = parse_allele(alt_text) else {
            skip_or_fail(options, doc, line_no, "unsupported ALT allele")?;
            continue;
        };
        if alt_allele.is_empty() {
            return Err(FormatError::malformed(line_no, "empty ALT allele"));
        }
        if alt_allele == ref_allele {
            // A non-variant record (e.g. gVCF reference block): nothing to add.
            continue;
        }
        let variant = classify_alleles(pos, &ref_allele, &alt_allele);
        doc.per_chrom
            .entry(chrom.to_owned())
            .or_default()
            .push(variant);
    }
    Ok(())
}

fn skip_or_fail(
    options: VcfOptions,
    doc: &mut VcfDocument,
    line_no: usize,
    message: &str,
) -> Result<(), FormatError> {
    if options.skip_unsupported {
        doc.skipped += 1;
        Ok(())
    } else {
        Err(FormatError::invalid_record(line_no, message))
    }
}

/// Parses an allele string into bases; `None` marks alleles this subset
/// cannot express (symbolic, breakend, missing, or ambiguity codes).
fn parse_allele(text: &str) -> Option<DnaSeq> {
    if text.is_empty() || text == "." || text == "*" || text.starts_with('<') {
        return None;
    }
    let mut seq = DnaSeq::with_capacity(text.len());
    for &byte in text.as_bytes() {
        seq.push(Base::from_ascii(byte)?);
    }
    Some(seq)
}

/// Converts a (REF, ALT) allele pair at 0-based `pos` into the graph
/// model's anchor-free representation.
fn classify_alleles(pos: u64, ref_allele: &DnaSeq, alt_allele: &DnaSeq) -> Variant {
    let r = ref_allele.as_slice();
    let a = alt_allele.as_slice();
    if r.len() == 1 && a.len() == 1 {
        return Variant::snp(pos, a[0]);
    }
    if r.len() == 1 && a.len() > 1 && a[0] == r[0] {
        // Left-anchored insertion: bases a[1..] inserted after `pos`, i.e.
        // before reference position `pos + 1`.
        return Variant::insertion(pos + 1, alt_allele.slice(1, a.len()));
    }
    if a.len() == 1 && r.len() > 1 && r[0] == a[0] {
        // Left-anchored deletion of r[1..].
        return Variant::deletion(pos + 1, (r.len() - 1) as u64);
    }
    Variant::replacement(pos, r.len() as u64, alt_allele.clone())
}

/// Renders one chromosome's variants as a VCF document.
///
/// `reference` supplies the anchor bases VCF requires for indels; it must
/// be the same linear reference the variants are expressed against.
/// Variants are emitted in sorted order (the order
/// [`segram_graph::build_graph`] consumes).
///
/// # Errors
///
/// Returns [`FormatError`] when a variant lies outside the reference or an
/// insertion at position 0 cannot be left-anchored (VCF then requires
/// right-anchoring, which is emitted instead).
///
/// # Examples
///
/// ```
/// use segram_io::{read_vcf, write_vcf, VcfOptions};
/// use segram_graph::{Base, Variant, VariantSet};
///
/// let reference: segram_graph::DnaSeq = "ACGTACGTAC".parse()?;
/// let mut set = VariantSet::new();
/// set.push(Variant::snp(3, Base::A));
/// set.push(Variant::deletion(6, 2));
/// let text = write_vcf("chr1", &reference, &set)?;
/// let doc = read_vcf(&text, VcfOptions::default())?;
/// assert_eq!(doc.chrom("chr1").unwrap(), &set.into_sorted());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_vcf(
    chrom: &str,
    reference: &DnaSeq,
    variants: &VariantSet,
) -> Result<String, FormatError> {
    let mut out = String::from("##fileformat=VCFv4.2\n");
    let _ = writeln!(out, "##contig=<ID={chrom},length={}>", reference.len());
    out.push_str("#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n");

    let sorted = variants.clone().into_sorted();
    for variant in sorted.iter() {
        let (pos_1based, ref_allele, alt_allele) = encode_variant(reference, variant)?;
        let _ = writeln!(
            out,
            "{chrom}\t{pos_1based}\t.\t{ref_allele}\t{alt_allele}\t.\tPASS\t."
        );
    }
    Ok(out)
}

fn ref_slice(reference: &DnaSeq, start: u64, end: u64) -> Result<DnaSeq, FormatError> {
    if end > reference.len() as u64 || start > end {
        return Err(FormatError::invalid_record(
            0,
            format!(
                "variant interval [{start}, {end}) outside reference of length {}",
                reference.len()
            ),
        ));
    }
    Ok(reference.slice(start as usize, end as usize))
}

fn encode_variant(
    reference: &DnaSeq,
    variant: &Variant,
) -> Result<(u64, String, String), FormatError> {
    match &variant.kind {
        VariantKind::Snp { alt } => {
            let ref_base = ref_slice(reference, variant.pos, variant.pos + 1)?;
            Ok((variant.pos + 1, ref_base.to_string(), alt.to_string()))
        }
        VariantKind::Insertion { seq } => {
            if variant.pos == 0 {
                // No base to the left: right-anchor on the first reference base.
                let anchor = ref_slice(reference, 0, 1)?;
                Ok((1, anchor.to_string(), format!("{seq}{anchor}")))
            } else {
                let anchor = ref_slice(reference, variant.pos - 1, variant.pos)?;
                Ok((variant.pos, anchor.to_string(), format!("{anchor}{seq}")))
            }
        }
        VariantKind::Deletion { len } => {
            if variant.pos == 0 {
                // Right-anchor: REF = deleted bases + following base.
                let ref_allele = ref_slice(reference, 0, len + 1)?;
                let anchor = ref_slice(reference, *len, len + 1)?;
                Ok((1, ref_allele.to_string(), anchor.to_string()))
            } else {
                let ref_allele = ref_slice(reference, variant.pos - 1, variant.pos + len)?;
                let anchor = ref_slice(reference, variant.pos - 1, variant.pos)?;
                Ok((variant.pos, ref_allele.to_string(), anchor.to_string()))
            }
        }
        VariantKind::Replacement { ref_len, alt } => {
            let ref_allele = ref_slice(reference, variant.pos, variant.pos + ref_len)?;
            Ok((variant.pos + 1, ref_allele.to_string(), alt.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n";

    fn parse(body: &str) -> VcfDocument {
        read_vcf(&format!("{HEADER}{body}"), VcfOptions::default()).unwrap()
    }

    #[test]
    fn snp_record_parses_to_zero_based_snp() {
        let doc = parse("chr1\t10\trs1\tA\tT\t50\tPASS\tAC=2\n");
        let set = doc.chrom("chr1").unwrap();
        assert_eq!(set.as_slice(), &[Variant::snp(9, Base::T)]);
    }

    #[test]
    fn anchored_insertion_and_deletion_lose_their_anchor() {
        let doc = parse("chr1\t5\t.\tG\tGAT\t.\t.\t.\nchr1\t9\t.\tCAA\tC\t.\t.\t.\n");
        let set = doc.chrom("chr1").unwrap();
        assert_eq!(
            set.as_slice(),
            &[
                Variant::insertion(5, "AT".parse().unwrap()),
                Variant::deletion(9, 2),
            ]
        );
    }

    #[test]
    fn non_anchored_pair_becomes_replacement() {
        let doc = parse("chr1\t3\t.\tAC\tTG\t.\t.\t.\n");
        assert_eq!(
            doc.chrom("chr1").unwrap().as_slice(),
            &[Variant::replacement(2, 2, "TG".parse().unwrap())]
        );
    }

    #[test]
    fn multi_allelic_alt_splits_into_variants() {
        let doc = parse("chr1\t4\t.\tA\tC,G\t.\t.\t.\n");
        assert_eq!(
            doc.chrom("chr1").unwrap().as_slice(),
            &[Variant::snp(3, Base::C), Variant::snp(3, Base::G)]
        );
    }

    #[test]
    fn genotype_columns_are_ignored() {
        let doc = parse("chr1\t4\t.\tA\tC\t.\tPASS\t.\tGT\t0|1\t1|1\n");
        assert_eq!(doc.len(), 1);
    }

    #[test]
    fn identical_alleles_produce_no_variant() {
        let doc = parse("chr1\t4\t.\tA\tA\t.\t.\t.\n");
        assert!(doc.is_empty());
    }

    #[test]
    fn symbolic_alt_fails_strict_and_skips_lenient() {
        let body = "chr1\t4\t.\tA\t<DEL>\t.\t.\t.\n";
        let err = read_vcf(&format!("{HEADER}{body}"), VcfOptions::default()).unwrap_err();
        assert!(matches!(err, FormatError::InvalidRecord { line: 3, .. }));
        let doc = read_vcf(&format!("{HEADER}{body}"), VcfOptions::lenient()).unwrap();
        assert!(doc.is_empty());
        assert_eq!(doc.skipped, 1);
    }

    #[test]
    fn data_before_header_is_rejected() {
        let err = read_vcf("chr1\t4\t.\tA\tC\t.\t.\t.\n", VcfOptions::default()).unwrap_err();
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn bad_position_is_rejected() {
        for bad in ["chr1\t0\t.\tA\tC\t.\t.\t.\n", "chr1\tx\t.\tA\tC\t.\t.\t.\n"] {
            assert!(read_vcf(&format!("{HEADER}{bad}"), VcfOptions::default()).is_err());
        }
    }

    #[test]
    fn wrong_column_header_is_rejected() {
        let err = read_vcf("#CHROM\tPOS\tID\tREF\tALT\tQUAL\n", VcfOptions::default()).unwrap_err();
        assert!(matches!(err, FormatError::Malformed { .. }));
    }

    #[test]
    fn multiple_chromosomes_are_grouped() {
        let doc = parse("chr1\t4\t.\tA\tC\t.\t.\t.\nchr2\t8\t.\tG\tT\t.\t.\t.\n");
        assert_eq!(doc.per_chrom.len(), 2);
        assert!(doc.into_single_chrom().is_err());
    }

    #[test]
    fn write_then_read_round_trips_all_kinds() {
        let reference: DnaSeq = "ACGTACGTACGTACGT".parse().unwrap();
        let mut set = VariantSet::new();
        set.push(Variant::snp(2, Base::T));
        set.push(Variant::insertion(5, "GG".parse().unwrap()));
        set.push(Variant::deletion(8, 3));
        set.push(Variant::replacement(12, 2, "AAA".parse().unwrap()));
        let set = set.into_sorted();
        let text = write_vcf("chrX", &reference, &set).unwrap();
        let doc = read_vcf(&text, VcfOptions::default()).unwrap();
        assert_eq!(doc.chrom("chrX").unwrap(), &set);
    }

    #[test]
    fn position_zero_indels_round_trip_via_right_anchor() {
        let reference: DnaSeq = "ACGTACGT".parse().unwrap();
        // Insertion before the first base.
        let mut set = VariantSet::new();
        set.push(Variant::insertion(0, "TT".parse().unwrap()));
        let text = write_vcf("c", &reference, &set).unwrap();
        let doc = read_vcf(&text, VcfOptions::default()).unwrap();
        // Right-anchoring encodes "TT inserted before position 0" as
        // REF=A ALT=TTA; the parser classifies that as a replacement with
        // identical edit semantics.
        let parsed = doc.chrom("c").unwrap().as_slice();
        assert_eq!(parsed.len(), 1);
        let (start, end) = parsed[0].ref_interval();
        assert_eq!((start, end), (0, 1));
        assert_eq!(parsed[0].alt_seq().to_string(), "TTA");
    }

    #[test]
    fn out_of_bounds_variant_fails_to_encode() {
        let reference: DnaSeq = "ACGT".parse().unwrap();
        let mut set = VariantSet::new();
        set.push(Variant::deletion(3, 5));
        assert!(write_vcf("c", &reference, &set).is_err());
    }
}
