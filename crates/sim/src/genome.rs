//! Synthetic reference genomes.
//!
//! The paper evaluates on GRCh38; this reproduction substitutes
//! deterministic synthetic references (see DESIGN.md). Two properties of
//! real genomes matter for the pipeline's behaviour and are modelled here:
//!
//! 1. **GC content** (affects k-mer composition only mildly);
//! 2. **repeats** — real genomes are repeat-rich, which produces the
//!    heavy-tailed minimizer-frequency distribution that MinSeed's
//!    frequency filter (discard the top 0.02 % most frequent minimizers,
//!    Section 6) exists to handle.

use segram_graph::{Base, DnaSeq};
use segram_testkit::rng::ChaCha8Rng;
use segram_testkit::rng::Rng;
use segram_testkit::rng::SeedableRng;

/// Configuration for [`generate_reference`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenomeConfig {
    /// Reference length in base pairs.
    pub len: usize,
    /// GC content in `[0, 1]` (human ≈ 0.41).
    pub gc_content: f64,
    /// Number of repeat insertions to perform after the random draw.
    pub repeat_count: usize,
    /// Length of each repeated segment.
    pub repeat_len: usize,
    /// RNG seed (all simulation in this workspace is deterministic).
    pub seed: u64,
}

impl GenomeConfig {
    /// A human-like configuration at the given scale.
    pub fn human_like(len: usize, seed: u64) -> Self {
        Self {
            len,
            gc_content: 0.41,
            // ~20% of the genome covered by a few repeat families of
            // ~300 bp elements — a scaled-down stand-in for the ~50%
            // repetitive fraction (SINE/LINE) of the human genome that
            // gives minimizer frequencies their heavy tail.
            repeat_count: len / 1500,
            repeat_len: 300,
            seed,
        }
    }
}

impl Default for GenomeConfig {
    fn default() -> Self {
        Self::human_like(100_000, 42)
    }
}

/// Generates a deterministic synthetic reference genome.
///
/// # Panics
///
/// Panics when `len == 0` or `gc_content` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use segram_sim::{generate_reference, GenomeConfig};
///
/// let a = generate_reference(&GenomeConfig::human_like(10_000, 1));
/// let b = generate_reference(&GenomeConfig::human_like(10_000, 1));
/// assert_eq!(a, b); // fully deterministic
/// assert_eq!(a.len(), 10_000);
/// ```
pub fn generate_reference(config: &GenomeConfig) -> DnaSeq {
    assert!(config.len > 0, "reference length must be positive");
    assert!(
        (0.0..=1.0).contains(&config.gc_content),
        "gc_content must be within [0, 1]"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut bases: Vec<Base> = (0..config.len)
        .map(|_| {
            let gc: bool = rng.gen_bool(config.gc_content);
            if gc {
                if rng.gen_bool(0.5) {
                    Base::C
                } else {
                    Base::G
                }
            } else if rng.gen_bool(0.5) {
                Base::A
            } else {
                Base::T
            }
        })
        .collect();
    // Repeat injection: real genomes carry repeat *families* (SINE/LINE
    // elements pasted many times), which is what gives the minimizer
    // frequency distribution its heavy tail — the reason MinSeed's
    // frequency filter exists. Draw a few templates and paste each many
    // times.
    let repeat_len = config.repeat_len.min(config.len / 2).max(1);
    if config.repeat_count > 0 && config.len > repeat_len + 1 {
        let family_count = (config.repeat_count / 8).clamp(1, 4);
        let templates: Vec<Vec<Base>> = (0..family_count)
            .map(|_| {
                let src = rng.gen_range(0..config.len - repeat_len);
                bases[src..src + repeat_len].to_vec()
            })
            .collect();
        for i in 0..config.repeat_count {
            let dst = rng.gen_range(0..config.len - repeat_len);
            bases[dst..dst + repeat_len].copy_from_slice(&templates[i % family_count]);
        }
    }
    DnaSeq::from(bases)
}

/// Measured GC fraction of a sequence (for tests and dataset reports).
pub fn gc_fraction(seq: &DnaSeq) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    let gc = seq
        .iter()
        .filter(|&b| matches!(b, Base::C | Base::G))
        .count();
    gc as f64 / seq.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let c = GenomeConfig::human_like(5000, 9);
        assert_eq!(generate_reference(&c), generate_reference(&c));
        let other = GenomeConfig::human_like(5000, 10);
        assert_ne!(generate_reference(&c), generate_reference(&other));
    }

    #[test]
    fn gc_content_is_respected() {
        for target in [0.2, 0.41, 0.7] {
            let config = GenomeConfig {
                len: 200_000,
                gc_content: target,
                repeat_count: 0,
                repeat_len: 0,
                seed: 3,
            };
            let genome = generate_reference(&config);
            let measured = gc_fraction(&genome);
            assert!(
                (measured - target).abs() < 0.01,
                "target {target}, measured {measured}"
            );
        }
    }

    #[test]
    fn repeats_create_duplicate_segments() {
        let config = GenomeConfig {
            len: 50_000,
            gc_content: 0.5,
            repeat_count: 30,
            repeat_len: 500,
            seed: 11,
        };
        let genome = generate_reference(&config);
        // Count distinct 32-mers: with repeats there must be fewer distinct
        // k-mers than positions.
        let mut kmers = std::collections::HashSet::new();
        let text = genome.to_string();
        for w in text.as_bytes().windows(32) {
            kmers.insert(w.to_vec());
        }
        assert!(kmers.len() < text.len() - 31);
    }

    #[test]
    fn extremes_of_gc() {
        let at_only = generate_reference(&GenomeConfig {
            len: 100,
            gc_content: 0.0,
            repeat_count: 0,
            repeat_len: 0,
            seed: 1,
        });
        assert_eq!(gc_fraction(&at_only), 0.0);
        let gc_only = generate_reference(&GenomeConfig {
            len: 100,
            gc_content: 1.0,
            repeat_count: 0,
            repeat_len: 0,
            seed: 1,
        });
        assert_eq!(gc_fraction(&gc_only), 1.0);
    }
}
