//! Standalone sequence-to-graph alignment (Section 9's second use case):
//! BitAlign consumes a GFA graph directly — no seeding — and reports the
//! optimal alignment plus the hardware cycle estimate for the accelerator.
//!
//! Run with: `cargo run --release --example standalone_bitalign`

use segram_align::{bitalign, graph_dp_distance, StartMode};
use segram_graph::{gfa, LinearizedGraph};
use segram_hw::BitAlignHwConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small pangenome region in GFA v1 (two SNP bubbles + one deletion).
    let gfa_text = "\
H\tVN:Z:1.0
S\t1\tACGTTGCA
S\t2\tG
S\t3\tT
S\t4\tCCATG
S\t5\tGGA
S\t6\tTTACGCAT
L\t1\t+\t2\t+\t0M
L\t1\t+\t3\t+\t0M
L\t2\t+\t4\t+\t0M
L\t3\t+\t4\t+\t0M
L\t4\t+\t5\t+\t0M
L\t4\t+\t6\t+\t0M
L\t5\t+\t6\t+\t0M
";
    let graph = gfa::from_gfa(gfa_text)?;
    println!(
        "loaded GFA: {} nodes / {} edges / {} chars",
        graph.node_count(),
        graph.edge_count(),
        graph.total_chars()
    );

    // Linearize the whole graph (a caller would pass a seed region here).
    let lin = LinearizedGraph::extract(&graph, 0, graph.total_chars())?;
    println!("hops in the linearization: {:?}", lin.hop_distances());

    // Align reads spelling different allele combinations.
    for read_text in [
        "ACGTTGCAGCCATGTTACGCAT", // SNP allele G + deletion of GGA
        "ACGTTGCATCCATGGGATTACG", // SNP allele T + GGA retained (prefix)
        "GCAGCCATGGGATT",         // internal fragment
        "ACGTTGCATCCTTGGGATT",    // with two sequencing errors
    ] {
        let read: segram_graph::DnaSeq = read_text.parse()?;
        let a = bitalign(&lin, &read, 4)?;
        let (dp, _) = graph_dp_distance(&lin, &read, StartMode::Free)?;
        assert_eq!(a.edit_distance, dp, "BitAlign must equal exact DP");
        println!(
            "read {:<24} -> {} edits, CIGAR {}, path start {}",
            read_text, a.edit_distance, a.cigar, a.text_start
        );
    }

    // What would the accelerator cost for these alignments?
    let hw = BitAlignHwConfig::bitalign();
    let read_len = 22;
    println!(
        "\naccelerator estimate for a {read_len} bp read: {} windows x {} cycles = {} cycles ({} ns at 1 GHz)",
        hw.window_count(read_len),
        hw.cycles_per_window(),
        hw.cycles_per_alignment(read_len),
        hw.alignment_ns(read_len)
    );
    println!(
        "10 kbp long read: {} cycles = {:.1} us (paper: 34.0 k cycles)",
        hw.cycles_per_alignment(10_000),
        hw.alignment_ns(10_000) / 1000.0
    );
    Ok(())
}
