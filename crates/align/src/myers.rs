//! Myers' bit-parallel edit-distance algorithm (Myers, JACM 1999) with
//! Hyyrö-style block extension for patterns longer than 64 bases.
//!
//! One of the two classical bitvector ASM algorithms the paper cites as the
//! low-complexity alternative to DP ("bitvector-based algorithms, such as
//! Bitap and the Myers' algorithm", Section 2.1). Used here as an
//! independent sequence-to-sequence cross-check for BitAlign and as a
//! software baseline in the benchmarks.
//!
//! Semantics match the rest of the crate: pattern-global, text free at both
//! ends (semi-global).

use segram_graph::{Base, ALPHABET_SIZE};

use crate::AlignError;

/// Computes the semi-global edit distance between `pattern` and `text`.
///
/// # Errors
///
/// Returns an error when either input is empty.
///
/// # Examples
///
/// ```
/// use segram_align::myers_distance;
/// use segram_graph::DnaSeq;
///
/// let text: DnaSeq = "ACGTACGTACGT".parse()?;
/// let read: DnaSeq = "GTACG".parse()?;
/// assert_eq!(myers_distance(text.as_slice(), read.as_slice())?, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn myers_distance(text: &[Base], pattern: &[Base]) -> Result<u32, AlignError> {
    if pattern.is_empty() {
        return Err(AlignError::EmptyPattern);
    }
    if text.is_empty() {
        return Err(AlignError::EmptyText);
    }
    let m = pattern.len();
    let blocks = m.div_ceil(64);
    // Active-high equality masks: bit j of eq[c][b] <=> pattern[b*64+j] == c.
    let mut eq = vec![[0u64; ALPHABET_SIZE]; blocks];
    for (idx, &p) in pattern.iter().enumerate() {
        eq[idx / 64][p.code() as usize] |= 1 << (idx % 64);
    }
    let last_bit = (m - 1) % 64;

    let mut pv = vec![u64::MAX; blocks];
    let mut mv = vec![0u64; blocks];
    let mut score = m as u32;
    let mut best = score;

    for &tc in text {
        // Horizontal delta entering the bottom block: 0 for semi-global
        // (the first DP row is all zeros, so no cost flows in).
        let mut ph_in = 0u64; // 1 when the incoming horizontal delta is +1
        let mut mh_in = 0u64; // 1 when the incoming horizontal delta is -1
        for b in 0..blocks {
            let mut eq_b = eq[b][tc.code() as usize];
            let pv_b = pv[b];
            let mv_b = mv[b];
            let xv = eq_b | mv_b;
            eq_b |= mh_in;
            let xh = (((eq_b & pv_b).wrapping_add(pv_b)) ^ pv_b) | eq_b;
            let ph = mv_b | !(xh | pv_b);
            let mh = pv_b & xh;
            if b == blocks - 1 {
                score += ((ph >> last_bit) & 1) as u32;
                score -= ((mh >> last_bit) & 1) as u32;
            }
            let ph_out = (ph >> 63) & 1;
            let mh_out = (mh >> 63) & 1;
            let ph_shift = (ph << 1) | ph_in;
            let mh_shift = (mh << 1) | mh_in;
            pv[b] = mh_shift | !(xv | ph_shift);
            mv[b] = ph_shift & xv;
            ph_in = ph_out;
            mh_in = mh_out;
        }
        best = best.min(score);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_dp::semiglobal_distance;
    use segram_graph::DnaSeq;

    fn bases(s: &str) -> Vec<Base> {
        s.parse::<DnaSeq>().unwrap().into_bases()
    }

    #[test]
    fn exact_and_simple_edits() {
        assert_eq!(
            myers_distance(&bases("ACGTACGT"), &bases("GTAC")).unwrap(),
            0
        );
        assert_eq!(
            myers_distance(&bases("ACGTACGT"), &bases("GGAC")).unwrap(),
            1
        );
        assert_eq!(myers_distance(&bases("AAAA"), &bases("TTTT")).unwrap(), 4);
    }

    #[test]
    fn matches_dp_on_short_patterns() {
        let texts = ["ACGTACGTACGTACGT", "TTTTGGGGCCCCAAAA", "ACACACACACAC"];
        let patterns = ["ACG", "GTACG", "TTTT", "CAGT", "ACACACG"];
        for t in texts {
            for p in patterns {
                let expect = semiglobal_distance(&bases(t), &bases(p)).unwrap();
                let got = myers_distance(&bases(t), &bases(p)).unwrap();
                assert_eq!(got, expect, "text {t} pattern {p}");
            }
        }
    }

    #[test]
    fn multi_block_patterns_cross_word_boundaries() {
        // Pattern of 100 bases spans two blocks; plant it in a longer text
        // with one substitution.
        let unit = "ACGTTGCAGT";
        let pattern: String = unit.repeat(10); // 100 bases
        let mut mutated = pattern.clone();
        mutated.replace_range(50..51, "A"); // the original char at 50 is 'A'? ensure an edit below
        let text = format!("TTTTT{}TTTTT", &mutated);
        let expect = semiglobal_distance(&bases(&text), &bases(&pattern)).unwrap();
        let got = myers_distance(&bases(&text), &bases(&pattern)).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn block_boundary_pattern_lengths() {
        // Exercise m = 63, 64, 65, 128, 129 against the DP oracle.
        let text: String = "ACGT".repeat(64);
        for m in [63usize, 64, 65, 128, 129] {
            let pattern: String = text.chars().skip(17).take(m).collect();
            let expect = semiglobal_distance(&bases(&text), &bases(&pattern)).unwrap();
            let got = myers_distance(&bases(&text), &bases(&pattern)).unwrap();
            assert_eq!(got, expect, "m = {m}");
            assert_eq!(got, 0, "substring must match exactly (m = {m})");
        }
    }

    #[test]
    fn pattern_longer_than_text() {
        // 70 pattern chars vs 4 text chars: at least 66 insertions.
        let pattern = "A".repeat(70);
        let expect = semiglobal_distance(&bases("ACGT"), &bases(&pattern)).unwrap();
        let got = myers_distance(&bases("ACGT"), &bases(&pattern)).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(myers_distance(&[], &bases("A")).is_err());
        assert!(myers_distance(&bases("A"), &[]).is_err());
    }
}
