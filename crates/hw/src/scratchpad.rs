//! On-chip scratchpad (SRAM) modelling with the paper's exact sizes
//! (Sections 8.1–8.2) and the double-buffering capacity rule.

/// One scratchpad instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scratchpad {
    /// Human-readable name.
    pub name: &'static str,
    /// Capacity in bytes.
    pub bytes: u64,
    /// Whether the paper double-buffers it (capacity is split in two so the
    /// next item can stream in while the current one is processed).
    pub double_buffered: bool,
}

impl Scratchpad {
    /// Usable bytes per buffer (half the capacity when double-buffered).
    pub fn usable_bytes(&self) -> u64 {
        if self.double_buffered {
            self.bytes / 2
        } else {
            self.bytes
        }
    }

    /// Whether one item of `item_bytes` fits in a single buffer.
    pub fn fits(&self, item_bytes: u64) -> bool {
        item_bytes <= self.usable_bytes()
    }
}

/// The MinSeed accelerator's three scratchpads (Section 8.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinSeedScratchpads {
    /// Query-read scratchpad: 6 kB, "2 query reads of 10 kbp length,
    /// where each character ... 2 bits".
    pub read: Scratchpad,
    /// Minimizer scratchpad: 40 kB, "minimizers of 2 different query
    /// reads", max 2 050 minimizers × 10 B.
    pub minimizer: Scratchpad,
    /// Seed scratchpad: 4 kB, "seed locations of 2 different minimizers",
    /// max 242 locations × 8 B.
    pub seed: Scratchpad,
}

impl Default for MinSeedScratchpads {
    fn default() -> Self {
        Self {
            read: Scratchpad {
                name: "read",
                bytes: 6 * 1024,
                double_buffered: true,
            },
            minimizer: Scratchpad {
                name: "minimizer",
                bytes: 40 * 1024,
                double_buffered: true,
            },
            seed: Scratchpad {
                name: "seed",
                bytes: 4 * 1024,
                double_buffered: true,
            },
        }
    }
}

impl MinSeedScratchpads {
    /// Total SRAM bytes.
    pub fn total_bytes(&self) -> u64 {
        self.read.bytes + self.minimizer.bytes + self.seed.bytes
    }

    /// Checks the paper's sizing claims against a workload: a read of
    /// `read_len` bases (2 bits each), up to `max_minimizers` minimizers
    /// (10 B each), up to `max_locations` locations (8 B each).
    pub fn supports(&self, read_len: usize, max_minimizers: usize, max_locations: usize) -> bool {
        self.read.fits(read_len.div_ceil(4) as u64)
            && self.minimizer.fits(max_minimizers as u64 * 10)
            && self.seed.fits(max_locations as u64 * 8)
    }
}

/// The BitAlign accelerator's storage (Section 8.2, for the 64-PE /
/// 128-bit configuration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitAlignStorage {
    /// Input scratchpad: 24 kB (linearized subgraph + HopBits + pattern
    /// bitmasks).
    pub input: Scratchpad,
    /// Bitvector scratchpad per PE: 2 kB (128 kB total over 64 PEs).
    pub bitvector_per_pe: Scratchpad,
    /// Hop queue register bytes per PE: 192 B (12 kB total).
    pub hop_queue_bytes_per_pe: u64,
    /// Number of processing elements.
    pub pe_count: usize,
}

impl Default for BitAlignStorage {
    fn default() -> Self {
        Self {
            input: Scratchpad {
                name: "input",
                bytes: 24 * 1024,
                double_buffered: true,
            },
            bitvector_per_pe: Scratchpad {
                name: "bitvector",
                bytes: 2 * 1024,
                double_buffered: false,
            },
            hop_queue_bytes_per_pe: 192,
            pe_count: 64,
        }
    }
}

impl BitAlignStorage {
    /// Total bitvector SRAM (paper: 128 kB).
    pub fn bitvector_total_bytes(&self) -> u64 {
        self.bitvector_per_pe.bytes * self.pe_count as u64
    }

    /// Total hop-queue register bytes (paper: 12 kB).
    pub fn hop_queue_total_bytes(&self) -> u64 {
        self.hop_queue_bytes_per_pe * self.pe_count as u64
    }

    /// Total SRAM + register bytes of the BitAlign side.
    pub fn total_bytes(&self) -> u64 {
        self.input.bytes + self.bitvector_total_bytes() + self.hop_queue_total_bytes()
    }

    /// Hop-queue depth in entries of `window_bits` each. The paper stores
    /// window-width (`W`) bitvectors — "each element of the hop queue
    /// register has a length equal to the window size (W)" — and sizes the
    /// queue for the hop limit (12 by default, Figure 13).
    pub fn hop_queue_depth(&self, window_bits: usize) -> usize {
        (self.hop_queue_bytes_per_pe as usize * 8) / window_bits
    }

    /// Bytes written per cycle to bitvector scratchpads and hop queues
    /// ("in each cycle, 128 bits of data (16 B) is written to each
    /// bitvector scratchpad and to each hop queue register by each PE").
    pub fn write_bytes_per_cycle(&self, window_bits: usize) -> u64 {
        (window_bits as u64 / 8) * 2 * self.pe_count as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_minseed_sizes() {
        let pads = MinSeedScratchpads::default();
        assert_eq!(pads.total_bytes(), 50 * 1024);
        // Section 8.1's workload maxima: 10 kbp reads, ~2 050 minimizers,
        // 242 locations. (The paper quotes 2 × 2 050 × 10 B = 41 000 B as
        // "40 kB"; the exact capacity holds 2 048 per buffer.)
        assert!(pads.supports(10_000, 2_048, 242));
        // Oversize workloads are rejected (the paper's batching case).
        assert!(!pads.supports(30_000, 2_050, 242));
        assert!(!pads.supports(10_000, 4_000, 242));
        assert!(!pads.supports(10_000, 2_050, 600));
    }

    #[test]
    fn paper_bitalign_sizes() {
        let storage = BitAlignStorage::default();
        assert_eq!(storage.bitvector_total_bytes(), 128 * 1024);
        assert_eq!(storage.hop_queue_total_bytes(), 12 * 1024);
        assert_eq!(storage.total_bytes(), (24 + 128 + 12) * 1024);
    }

    #[test]
    fn hop_queue_holds_the_hop_limit() {
        let storage = BitAlignStorage::default();
        // 192 B per PE at 128-bit entries = 12 entries: exactly the
        // hop limit of 12 chosen in Figure 13.
        assert_eq!(storage.hop_queue_depth(128), 12);
    }

    #[test]
    fn per_cycle_write_traffic_matches_paper() {
        let storage = BitAlignStorage::default();
        // 16 B per PE per cycle to each of the two destinations.
        assert_eq!(storage.write_bytes_per_cycle(128), 16 * 2 * 64);
    }

    #[test]
    fn double_buffering_halves_usable_capacity() {
        let pad = Scratchpad {
            name: "x",
            bytes: 8192,
            double_buffered: true,
        };
        assert_eq!(pad.usable_bytes(), 4096);
        assert!(pad.fits(4096));
        assert!(!pad.fits(4097));
    }
}
