//! Error type for genome-graph operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the `segram-graph` crate.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A 2-bit code outside `0..4` was decoded into a [`Base`](crate::Base).
    InvalidBaseCode(u8),
    /// A non-`ACGT` character was parsed into a sequence.
    InvalidCharacter {
        /// The offending byte.
        ch: u8,
        /// Byte offset within the parsed input.
        offset: usize,
    },
    /// A node identifier referenced a node that does not exist.
    NodeOutOfBounds {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// An offset pointed past the end of a node's sequence.
    OffsetOutOfBounds {
        /// The node being addressed.
        node: u32,
        /// The offending offset.
        offset: u32,
        /// Length of the node's sequence.
        node_len: usize,
    },
    /// A node with an empty sequence was added; the paper's node table
    /// assumes every node carries at least one character.
    EmptyNode,
    /// An edge would create a duplicate entry in the adjacency list.
    DuplicateEdge {
        /// Source node.
        from: u32,
        /// Destination node.
        to: u32,
    },
    /// An edge would point from a node to itself.
    SelfLoop {
        /// The node in question.
        node: u32,
    },
    /// The graph contains a cycle, so it cannot be topologically sorted.
    CyclicGraph,
    /// A linear position lies beyond the total character count of the graph.
    LinearPosOutOfBounds {
        /// The offending position.
        pos: u64,
        /// Total character count.
        total: u64,
    },
    /// Two variants claim overlapping reference intervals.
    OverlappingVariants {
        /// Start of the second (conflicting) variant.
        pos: u64,
    },
    /// A variant references coordinates outside the linear reference.
    VariantOutOfBounds {
        /// The variant's reference start.
        pos: u64,
        /// The reference length.
        ref_len: u64,
    },
    /// A variant's stated reference allele disagrees with the reference.
    RefAlleleMismatch {
        /// The variant's reference start.
        pos: u64,
    },
    /// GFA input could not be parsed.
    MalformedGfa {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidBaseCode(code) => {
                write!(f, "invalid 2-bit base code {code}")
            }
            GraphError::InvalidCharacter { ch, offset } => write!(
                f,
                "invalid nucleotide byte 0x{ch:02x} ({:?}) at offset {offset}",
                *ch as char
            ),
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(f, "node id {node} out of bounds for {node_count} nodes")
            }
            GraphError::OffsetOutOfBounds {
                node,
                offset,
                node_len,
            } => write!(
                f,
                "offset {offset} out of bounds for node {node} of length {node_len}"
            ),
            GraphError::EmptyNode => write!(f, "nodes must carry at least one character"),
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            GraphError::SelfLoop { node } => write!(f, "self loop on node {node}"),
            GraphError::CyclicGraph => write!(f, "graph contains a cycle"),
            GraphError::LinearPosOutOfBounds { pos, total } => write!(
                f,
                "linear position {pos} out of bounds for {total} total characters"
            ),
            GraphError::OverlappingVariants { pos } => {
                write!(f, "variant at reference position {pos} overlaps a previous variant")
            }
            GraphError::VariantOutOfBounds { pos, ref_len } => write!(
                f,
                "variant at reference position {pos} out of bounds for reference of length {ref_len}"
            ),
            GraphError::RefAlleleMismatch { pos } => write!(
                f,
                "variant reference allele at position {pos} disagrees with the reference sequence"
            ),
            GraphError::MalformedGfa { line, reason } => {
                write!(f, "malformed GFA at line {line}: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            GraphError::InvalidBaseCode(9),
            GraphError::EmptyNode,
            GraphError::CyclicGraph,
            GraphError::SelfLoop { node: 3 },
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<GraphError>();
    }
}
