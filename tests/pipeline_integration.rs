//! Cross-crate integration tests: the full pipeline (simulate → construct →
//! index → seed → align → model) wired end to end.

use segram_core::{
    measure_workload, BaselineMapper, GraphAlignerLike, HgaLike, SegramConfig, SegramMapper,
};
use segram_graph::{gfa, hop_coverage, GraphTables};
use segram_hw::{system_cost, BitAlignStorage, HbmConfig, MinSeedScratchpads, SegramSystem};
use segram_sim::{DatasetConfig, ErrorProfile, ReadConfig};

#[test]
fn end_to_end_s2g_mapping_is_accurate() {
    let dataset = DatasetConfig::tiny(101).illumina(100);
    let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
    let measurement = measure_workload(&mapper, &dataset.reads, 100);
    assert!(measurement.mapped_fraction > 0.9, "{measurement:?}");
    // Reads drawn from injected repeats legitimately multi-map, so a small
    // fraction may report an equally-good location elsewhere.
    assert!(measurement.accuracy >= 0.85, "{measurement:?}");
}

#[test]
fn graph_mapping_beats_linear_mapping_on_variant_reads() {
    // The paper's core motivation: reads drawn from a population (graph
    // paths with variants) map better to the graph than to the bare linear
    // reference.
    let mut config = DatasetConfig::tiny(103);
    config.read_count = 40;
    let dataset = config.illumina(150);
    let graph_mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
    let linear_mapper =
        SegramMapper::new_linear(&dataset.reference, SegramConfig::short_reads()).unwrap();
    let mut graph_edits = 0u64;
    let mut linear_edits = 0u64;
    let mut both = 0usize;
    for read in &dataset.reads {
        let (g, _) = graph_mapper.map_read(&read.seq);
        let (l, _) = linear_mapper.map_read(&read.seq);
        if let (Some(g), Some(l)) = (g, l) {
            graph_edits += g.alignment.edit_distance as u64;
            linear_edits += l.alignment.edit_distance as u64;
            both += 1;
        }
    }
    assert!(both > 20, "too few commonly mapped reads: {both}");
    assert!(
        graph_edits <= linear_edits,
        "graph mapping should never need more edits: graph {graph_edits} vs linear {linear_edits}"
    );
}

#[test]
fn segram_agrees_with_whole_graph_dp_on_small_inputs() {
    let mut config = DatasetConfig::tiny(105);
    config.reference_len = 4_000;
    config.read_count = 8;
    let dataset = config.illumina(100);
    let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
    let oracle = HgaLike::new(dataset.graph().clone());
    for read in &dataset.reads {
        let (mapping, _) = mapper.map_read(&read.seq);
        let (oracle_mapping, _) = oracle.map_read(&read.seq);
        let oracle_dist = oracle_mapping.unwrap().edit_distance;
        if let Some(m) = mapping {
            // The seeded mapper may only lose to the global optimum if the
            // seed was missed entirely; when it maps, it must match.
            assert!(
                m.alignment.edit_distance >= oracle_dist,
                "seeded {} < oracle {}",
                m.alignment.edit_distance,
                oracle_dist
            );
            assert!(
                m.alignment.edit_distance <= oracle_dist + 2,
                "seeded {} much worse than oracle {}",
                m.alignment.edit_distance,
                oracle_dist
            );
        }
    }
}

#[test]
fn graph_survives_gfa_round_trip_and_still_maps() {
    let dataset = DatasetConfig::tiny(107).illumina(100);
    let text = gfa::to_gfa(dataset.graph());
    let round = gfa::from_gfa(&text).unwrap();
    assert_eq!(round.stats(), dataset.graph().stats());
    let mapper = SegramMapper::new(round, SegramConfig::short_reads());
    let (mapping, _) = mapper.map_read(&dataset.reads[0].seq);
    assert!(mapping.is_some());
}

#[test]
fn measured_workload_drives_hardware_model() {
    let dataset = DatasetConfig::tiny(109).illumina(150);
    let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
    let measurement = measure_workload(&mapper, &dataset.reads, 100);
    let system = SegramSystem::default();
    let throughput = system.throughput_reads_per_s(&measurement.workload);
    // Short reads on 32 accelerators: must be far beyond software rates.
    assert!(throughput > 10_000.0, "throughput {throughput}");
    // And the per-seed latency must be far below a long-read alignment.
    assert!(system.per_seed_latency_us(&measurement.workload) < 34.0);
}

#[test]
fn hardware_scratchpads_support_measured_workloads() {
    let dataset = DatasetConfig::tiny(111).illumina(250);
    let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
    let pads = MinSeedScratchpads::default();
    for read in dataset.reads.iter().take(10) {
        let result = mapper.seed(&read.seq);
        // Reads, minimizer counts and per-minimizer location counts all fit
        // the paper's scratchpad sizing at our scales.
        let max_locs = segram_index::extract_minimizers(&read.seq, mapper.index().scheme())
            .iter()
            .map(|m| mapper.index().frequency(m.rank) as usize)
            .max()
            .unwrap_or(0)
            .max(1);
        assert!(pads.supports(read.seq.len(), result.stats.minimizers, max_locs));
    }
}

#[test]
fn hop_coverage_and_hop_queue_depth_are_consistent() {
    // Figure 13's hop limit of 12 must cover >99% of hops on human-like
    // variation graphs, and the hop queue must hold exactly that depth.
    let dataset = DatasetConfig::tiny(113).illumina(100);
    let coverage = hop_coverage(dataset.graph(), 12).unwrap();
    assert!(coverage > 0.9, "coverage at limit 12: {coverage}");
    let storage = BitAlignStorage::default();
    assert_eq!(storage.hop_queue_depth(128), 12);
}

#[test]
fn table1_and_memory_capacity_hold_at_paper_scale() {
    let sys = system_cost(32, HbmConfig::default().total_dynamic_power_w());
    assert!((sys.per_accelerator.area_mm2 - 0.867).abs() < 0.02);
    assert!((sys.total_power_w - 28.1).abs() < 0.6);
    // The paper's human-scale graph (1.4 GB) + index (9.8 GB) fit per stack.
    let hbm = HbmConfig::default();
    assert!(hbm.fits_per_stack(1_400_000_000, 9_800_000_000));
}

#[test]
fn long_reads_flow_through_windowed_alignment() {
    let mut config = DatasetConfig::tiny(115);
    config.read_count = 3;
    config.long_read_len = 1_200;
    let dataset = config.pacbio_5();
    // Cap candidate regions (as real long-read configs do): the unlimited
    // default aligns hundreds of regions per read, which belongs in the
    // ablation binaries, not a smoke test.
    let mut mapper_config = SegramConfig::long_reads(0.05);
    mapper_config.max_regions = 12;
    let mapper = SegramMapper::new(dataset.graph().clone(), mapper_config);
    let mut mapped = 0;
    for read in &dataset.reads {
        let (mapping, stats) = mapper.map_read(&read.seq);
        assert!(stats.regions_aligned > 0 || stats.minimizers == 0);
        if let Some(m) = mapping {
            mapped += 1;
            assert_eq!(m.alignment.cigar.read_len() as usize, read.seq.len());
        }
    }
    assert!(mapped >= 2, "only {mapped}/3 long reads mapped");
}

#[test]
fn baseline_and_segram_agree_on_locations() {
    let dataset = DatasetConfig::tiny(117).illumina(100);
    let segram = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
    let baseline = GraphAlignerLike::new(dataset.graph().clone(), SegramConfig::short_reads());
    let mut agreements = 0usize;
    let mut comparable = 0usize;
    for read in dataset.reads.iter().take(10) {
        let (s, _) = segram.map_read(&read.seq);
        let (b, _) = baseline.map_read(&read.seq);
        if let (Some(s), Some(b)) = (s, b) {
            comparable += 1;
            if s.linear_start.abs_diff(b.linear_start) < 150 {
                agreements += 1;
            }
        }
    }
    assert!(comparable >= 5);
    assert!(
        agreements * 10 >= comparable * 8,
        "{agreements}/{comparable}"
    );
}

#[test]
fn s2s_special_case_reads_map_like_s2g() {
    // Section 9: S2S is the single-successor special case; a linear-graph
    // mapper must handle plain resequencing reads.
    let reference =
        segram_sim::generate_reference(&segram_sim::GenomeConfig::human_like(30_000, 119));
    let graph = segram_graph::linear_graph(&reference, 4096).unwrap();
    let reads = segram_sim::simulate_reads(
        &graph,
        &ReadConfig {
            count: 15,
            len: 120,
            errors: ErrorProfile::illumina(),
            seed: 120,
        },
    );
    let mapper = SegramMapper::new_linear(&reference, SegramConfig::short_reads()).unwrap();
    let measurement = measure_workload(&mapper, &reads, 100);
    assert!(measurement.mapped_fraction > 0.85, "{measurement:?}");
    // ~20% of the synthetic genome is repeat families, so up to that
    // fraction of reads legitimately multi-map to another repeat copy.
    assert!(measurement.accuracy >= 0.75, "{measurement:?}");
}

#[test]
fn graph_tables_round_trip_a_dataset_graph() {
    let dataset = DatasetConfig::tiny(121).illumina(100);
    let tables = GraphTables::from_graph(dataset.graph());
    assert_eq!(tables.node_count(), dataset.graph().node_count());
    let fp = tables.footprint();
    assert_eq!(
        fp.node_table_bytes,
        dataset.graph().node_count() as u64 * 32
    );
    for node in dataset.graph().node_ids().take(50) {
        assert_eq!(
            tables.node_edges(node).unwrap(),
            dataset.graph().successors(node)
        );
    }
}

/// With a region cap in effect, the mapper's clustering step (Figure 2's
/// optional step 2) must keep the true locus: long reads whose early
/// minimizers hit repeats still map, because clusters are ranked by seed
/// support rather than read order.
#[test]
fn capped_long_read_mapping_keeps_the_true_locus() {
    let mut config = DatasetConfig::tiny(29);
    config.read_count = 10;
    let dataset = config.pacbio_5();
    let mut mapper_config = SegramConfig::long_reads(0.05);
    mapper_config.max_regions = 8; // aggressive cap
    let mapper = SegramMapper::new(dataset.graph().clone(), mapper_config);
    let mut accurate = 0usize;
    for read in &dataset.reads {
        let (mapping, _) = mapper.map_read(&read.seq);
        if let Some(m) = mapping {
            if m.linear_start.abs_diff(read.true_start_linear) <= 500 {
                accurate += 1;
            }
        }
    }
    assert!(
        accurate >= 8,
        "only {accurate}/10 capped long reads found their locus"
    );
}
