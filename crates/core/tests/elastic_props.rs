//! Property tests for the elastic scheduler: on random simulated
//! datasets, the SAM and GAF documents produced by the per-shard-group
//! pool schedule are byte-identical to the monolithic fanout engine's,
//! across shard counts {1, 2, 4} x thread counts {1, 4} — with an
//! aggressive rebalancer configuration, so shard migrations happen *during*
//! the runs being compared. Migrations move shard ownership between pools;
//! they must never move bytes in the output.

use segram_core::{
    gaf_record_for, sam_record_for, ElasticScheduler, EngineConfig, MapEngine, ReadMapper,
    RebalanceConfig, SegramConfig, SegramMapper, ShardAffinity, ShardedIndex,
};
use segram_graph::DnaSeq;
use segram_io::{GafWriter, SamWriter};
use segram_sim::DatasetConfig;
use segram_testkit::prelude::*;

/// Renders both output documents from the fanout engine, exactly as the
/// CLI's streaming path does (shared renderers, shared writers).
fn fanout_documents<M: ReadMapper>(
    mapper: &M,
    reads: &[(String, DnaSeq)],
    threads: usize,
    both_strands: bool,
) -> (Vec<u8>, Vec<u8>) {
    let mut config = EngineConfig::with_threads(threads).both_strands(both_strands);
    config.batch_size = 2;
    let engine = MapEngine::new(mapper, config);
    let mut sam = SamWriter::new(Vec::new(), "graph", mapper.graph().total_chars())
        .expect("vec write cannot fail");
    let mut gaf = GafWriter::new(Vec::new());
    engine.map_stream(
        reads.iter(),
        |(_, seq)| seq,
        |(id, seq), outcome| {
            let record = sam_record_for(id, seq, &outcome);
            sam.write_line(&record.to_sam_line())
                .expect("vec write cannot fail");
            if let Some(record) =
                gaf_record_for(id, seq, mapper.graph(), &outcome).expect("consistent graph path")
            {
                gaf.write_record(&record).expect("vec write cannot fail");
            }
        },
    );
    (
        sam.finish().expect("vec flush cannot fail"),
        gaf.finish().expect("vec flush cannot fail"),
    )
}

/// Renders both output documents from the elastic scheduler over an
/// already-sharded index, with a hair-trigger rebalancer (threshold just
/// above 1.0, one-observation cooldown) so ownership migrates mid-run.
fn elastic_documents(
    sharded: &ShardedIndex,
    reads: &[(String, DnaSeq)],
    threads: usize,
    both_strands: bool,
) -> (Vec<u8>, Vec<u8>) {
    let mut config = EngineConfig::with_threads(threads).both_strands(both_strands);
    config.batch_size = 2;
    let affinity = ShardAffinity::pin_workers(&sharded.shard_loads(), threads);
    let scheduler =
        ElasticScheduler::new(sharded, config, affinity).with_rebalance(RebalanceConfig {
            threshold: 1.05,
            cooldown: 1,
        });
    let mut sam = SamWriter::new(Vec::new(), "graph", sharded.graph().total_chars())
        .expect("vec write cannot fail");
    let mut gaf = GafWriter::new(Vec::new());
    scheduler.map_stream(
        reads.iter(),
        |(_, seq)| seq,
        |(id, seq), outcome| {
            let record = sam_record_for(id, seq, &outcome);
            sam.write_line(&record.to_sam_line())
                .expect("vec write cannot fail");
            if let Some(record) =
                gaf_record_for(id, seq, sharded.graph(), &outcome).expect("consistent graph path")
            {
                gaf.write_record(&record).expect("vec write cannot fail");
            }
        },
    );
    (
        sam.finish().expect("vec flush cannot fail"),
        gaf.finish().expect("vec flush cannot fail"),
    )
}

proptest! {
    #[test]
    fn elastic_sam_and_gaf_bytes_match_fanout(
        seed in 0u64..5_000,
        read_count in 3usize..8,
        read_len in prop::sample::select(vec![80usize, 100, 130]),
        both_strands in any::<bool>(),
    ) {
        let mut dataset_config = DatasetConfig::tiny(seed);
        dataset_config.read_count = read_count;
        let dataset = dataset_config.illumina(read_len);
        let config = SegramConfig::short_reads();
        let mapper = SegramMapper::new(dataset.graph().clone(), config);
        let reads: Vec<(String, DnaSeq)> = dataset
            .reads
            .iter()
            .map(|r| (format!("read{}", r.id), r.seq.clone()))
            .collect();

        let (sam_base, gaf_base) = fanout_documents(&mapper, &reads, 1, both_strands);

        for shards in [1usize, 2, 4] {
            let sharded = ShardedIndex::build(dataset.graph().clone(), config, shards);
            for threads in [1usize, 4] {
                let (sam, gaf) = elastic_documents(&sharded, &reads, threads, both_strands);
                prop_assert_eq!(
                    &sam, &sam_base,
                    "sam bytes differ: shards={} threads={}", shards, threads
                );
                prop_assert_eq!(
                    &gaf, &gaf_base,
                    "gaf bytes differ: shards={} threads={}", shards, threads
                );
            }
        }
    }
}
