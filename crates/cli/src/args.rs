//! A small `--flag value` argument parser (no external dependencies, per
//! the workspace's offline-crate policy).

use std::collections::{BTreeMap, BTreeSet};

use crate::error::CliError;

/// Parsed command-line options: `--key value` pairs and bare `--switch`es.
#[derive(Clone, Debug, Default)]
pub struct Options {
    values: BTreeMap<String, String>,
    switches: BTreeSet<String>,
}

/// Switches (flags without a value) recognized anywhere.
const SWITCHES: [&str; 7] = [
    "help",
    "both-strands",
    "compress-output",
    "lenient",
    "quiet",
    "retry",
    "shutdown",
];

impl Options {
    /// Parses everything after the subcommand.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] on positional arguments, repeated keys,
    /// or a trailing `--key` with no value.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut options = Self::default();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(CliError::usage(format!(
                    "unexpected positional argument {arg:?}"
                )));
            };
            if SWITCHES.contains(&key) {
                options.switches.insert(key.to_owned());
                continue;
            }
            let Some(value) = iter.next() else {
                return Err(CliError::usage(format!("--{key} expects a value")));
            };
            if options
                .values
                .insert(key.to_owned(), value.clone())
                .is_some()
            {
                return Err(CliError::usage(format!("--{key} given twice")));
            }
        }
        Ok(options)
    }

    /// The value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// The value of a mandatory `--key`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the option is missing.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::usage(format!("missing required option --{key}")))
    }

    /// Whether a bare `--switch` was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.contains(key)
    }

    /// Parses `--key` as a number, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the value does not parse.
    pub fn number<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| CliError::usage(format!("--{key}: unparsable value {text:?}"))),
        }
    }

    /// Keys that were provided but never consumed by the command — used to
    /// reject typos like `--referenec`.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.values
            .keys()
            .map(String::as_str)
            .chain(self.switches.iter().map(String::as_str))
    }

    /// Rejects any option not in `known`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] naming the first unknown option.
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), CliError> {
        for key in self.keys() {
            if !known.contains(&key) {
                return Err(CliError::usage(format!("unknown option --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, CliError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Options::parse(&owned)
    }

    #[test]
    fn parses_pairs_and_switches() {
        let o = parse(&["--reference", "ref.fa", "--lenient", "--w", "10"]).unwrap();
        assert_eq!(o.get("reference"), Some("ref.fa"));
        assert!(o.switch("lenient"));
        assert_eq!(o.number::<usize>("w", 0).unwrap(), 10);
        assert_eq!(o.number::<usize>("k", 15).unwrap(), 15);
    }

    #[test]
    fn rejects_positional_duplicate_and_dangling() {
        assert!(parse(&["ref.fa"]).is_err());
        assert!(parse(&["--a", "1", "--a", "2"]).is_err());
        assert!(parse(&["--a"]).is_err());
    }

    #[test]
    fn require_and_reject_unknown() {
        let o = parse(&["--graph", "g.gfa"]).unwrap();
        assert!(o.require("graph").is_ok());
        assert!(o.require("reads").is_err());
        assert!(o.reject_unknown(&["graph"]).is_ok());
        assert!(o.reject_unknown(&["reads"]).is_err());
    }

    #[test]
    fn bad_number_is_reported() {
        let o = parse(&["--w", "ten"]).unwrap();
        assert!(o.number::<usize>("w", 0).is_err());
    }
}
