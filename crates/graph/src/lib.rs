//! # segram-graph
//!
//! Genome-graph substrate for the SeGraM reproduction (Senol Cali et al.,
//! *SeGraM: A Universal Hardware Accelerator for Genomic Sequence-to-Graph
//! and Sequence-to-Sequence Mapping*, ISCA 2022).
//!
//! A genome graph combines a linear reference genome with the known genetic
//! variations of a population: nodes carry one or more base pairs, and
//! multiple outgoing edges capture variation (Figure 1 of the paper). This
//! crate provides:
//!
//! * the 2-bit DNA alphabet ([`Base`]) and sequences ([`DnaSeq`],
//!   [`PackedSeq`]);
//! * the graph itself ([`GenomeGraph`], [`GraphBuilder`]) with topological
//!   sorting (the paper's `vg ids -s` step);
//! * graph construction from a linear reference plus variants
//!   ([`build_graph`], the paper's `vg construct` step);
//! * the hardware-facing flat memory layout ([`GraphTables`], Figure 5);
//! * subgraph extraction and linearization for alignment
//!   ([`LinearizedGraph`], Figure 12), including hop statistics
//!   ([`hop_coverage`], Figure 13);
//! * a minimal GFA v1 reader/writer ([`gfa`]).
//!
//! ## Example
//!
//! ```
//! use segram_graph::{build_graph, Base, LinearizedGraph, Variant};
//!
//! // A reference with one SNP becomes a bubble graph...
//! let built = build_graph(
//!     &"ACGTACGT".parse()?,
//!     [Variant::snp(3, Base::G)].into_iter().collect(),
//! )?;
//! assert!(built.graph.is_topologically_sorted());
//!
//! // ...which linearizes into the character-level form BitAlign consumes.
//! let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars())?;
//! assert_eq!(lin.hop_distances(), vec![2, 2]);
//! # Ok::<(), segram_graph::GraphError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod base;
mod construct;
mod error;
pub mod gfa;
mod graph;
mod ops;
mod region;
mod seq;
mod tables;
mod variants;

pub use base::{Base, ALPHABET_SIZE, BASES};
pub use construct::{build_graph, ConstructedGraph};
pub use error::GraphError;
pub use graph::{linear_graph, GenomeGraph, GraphBuilder, GraphPos, GraphStats, NodeId};
pub use ops::{
    apply_variants, diff_graphs, graphs_identical, merge_ranges, ranges_intersect, ChangeLog,
    DeltaBuild, GraphOp,
};
pub use region::{hop_coverage, LinearizedGraph};
pub use seq::{DnaSeq, PackedSeq};
pub use tables::{GraphFootprint, GraphTables, NodeEntry, EDGE_ENTRY_BYTES, NODE_ENTRY_BYTES};
pub use variants::{Variant, VariantKind, VariantSet};
