//! Quickstart: build a genome graph from a reference + variants, map a
//! read with SeGraM (MinSeed + BitAlign), and print the alignment.
//!
//! Run with: `cargo run --release --example quickstart`

use segram_core::{SegramConfig, SegramMapper};
use segram_graph::{build_graph, Base, Variant, VariantSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A linear reference plus known population variants (the paper's
    //    Figure 1 setting: one SNP, one insertion, one deletion).
    let reference = "ACGTACGTTGCAGCATGGCA".repeat(12).parse()?;
    let variants: VariantSet = [
        Variant::snp(30, Base::A),
        Variant::insertion(100, "TTT".parse()?),
        Variant::deletion(160, 4),
    ]
    .into_iter()
    .collect();

    // 2. Pre-processing: construct + topologically sort the graph
    //    (vg construct / vg ids -s in the paper).
    let built = build_graph(&reference, variants)?;
    println!(
        "graph: {} nodes, {} edges, {} characters (topologically sorted: {})",
        built.graph.node_count(),
        built.graph.edge_count(),
        built.graph.total_chars(),
        built.graph.is_topologically_sorted(),
    );

    // 3. Build the mapper: this indexes the graph (three-level hash table)
    //    and derives the minimizer frequency threshold.
    let mut config = SegramConfig::short_reads();
    config.scheme = segram_index::MinimizerScheme::new(5, 11); // small demo genome
    let mapper = SegramMapper::new(built.graph.clone(), config);

    // 4. A read sampled from the ALT path (carries the SNP) with one
    //    sequencing error injected by hand.
    let mut read_text = String::new();
    for (i, base) in reference.iter().enumerate().take(80).skip(10) {
        let ch = if i == 30 {
            'A' // the SNP allele
        } else {
            char::from(base)
        };
        read_text.push(ch);
    }
    read_text.replace_range(40..41, if &read_text[40..41] == "G" { "C" } else { "G" });
    let read = read_text.parse()?;

    // 5. Map it.
    let (mapping, stats) = mapper.map_read(&read);
    let mapping = mapping.expect("read maps");
    println!(
        "mapped at linear position {} with {} edits",
        mapping.linear_start, mapping.alignment.edit_distance
    );
    println!("CIGAR: {}", mapping.alignment.cigar);
    println!(
        "seeding: {} minimizers -> {} seed locations ({} regions aligned)",
        stats.minimizers, stats.seed_locations, stats.regions_aligned
    );

    // The SNP is handled by the graph (no edit charged), so only the
    // injected sequencing error should remain.
    assert_eq!(mapping.alignment.edit_distance, 1);
    assert_eq!(mapping.linear_start, 10);
    println!("ok: the SNP costs no edits because the graph encodes it");
    Ok(())
}
