//! The flat, hardware-facing memory layout of the graph-based reference
//! (Figure 5): the node table, the character table, and the edge table,
//! with the paper's exact byte accounting (32 B per node entry, 2 bits per
//! character, 4 B per edge entry).

use crate::{Base, GenomeGraph, GraphError, NodeId, PackedSeq};

/// Bytes per node-table entry (Figure 5: "each entry in the node table
/// requires 32 B").
pub const NODE_ENTRY_BYTES: u64 = 32;

/// Bytes per edge-table entry (Figure 5: "each entry in the edge table
/// requires 4 B").
pub const EDGE_ENTRY_BYTES: u64 = 4;

/// One entry of the node table: four fields, exactly as in Figure 5.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeEntry {
    /// (i) Length of the node sequence in characters.
    pub seq_len: u32,
    /// (ii) Starting index of the node sequence in the character table.
    pub char_start: u64,
    /// (iii) Outgoing edge count.
    pub out_count: u32,
    /// (iv) Starting index of the node's outgoing edges in the edge table.
    pub edge_start: u64,
}

/// The graph-based reference in its main-memory layout (Figure 5).
///
/// # Examples
///
/// ```
/// use segram_graph::{build_graph, Base, GraphTables, Variant};
///
/// let built = build_graph(
///     &"ACGTACGT".parse()?,
///     [Variant::snp(3, Base::G)].into_iter().collect(),
/// )?;
/// let tables = GraphTables::from_graph(&built.graph);
/// assert_eq!(tables.node_count(), 4);
/// // 4 nodes * 32 B + ceil(9 chars / 4) B + 4 edges * 4 B
/// assert_eq!(tables.footprint().total_bytes(), 4 * 32 + 3 + 4 * 4);
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphTables {
    nodes: Vec<NodeEntry>,
    chars: PackedSeq,
    edges: Vec<u32>,
}

/// Byte footprint of a [`GraphTables`], per the paper's formulas
/// (`#nodes * 32 B`, `total sequence length * 2 bits`, `#edges * 4 B`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphFootprint {
    /// Bytes of the node table.
    pub node_table_bytes: u64,
    /// Bytes of the character table.
    pub char_table_bytes: u64,
    /// Bytes of the edge table.
    pub edge_table_bytes: u64,
}

impl GraphFootprint {
    /// Total bytes across the three tables.
    pub fn total_bytes(&self) -> u64 {
        self.node_table_bytes + self.char_table_bytes + self.edge_table_bytes
    }
}

impl GraphTables {
    /// Lays out a graph into the three tables.
    pub fn from_graph(graph: &GenomeGraph) -> Self {
        let mut nodes = Vec::with_capacity(graph.node_count());
        let mut chars = PackedSeq::new();
        let mut edges: Vec<u32> = Vec::with_capacity(graph.edge_count());
        for node in graph.node_ids() {
            let seq = graph.seq(node);
            let entry = NodeEntry {
                seq_len: seq.len() as u32,
                char_start: chars.len() as u64,
                out_count: graph.successors(node).len() as u32,
                edge_start: edges.len() as u64,
            };
            for base in seq.iter() {
                chars.push(base);
            }
            edges.extend(graph.successors(node).iter().map(|n| n.0));
            nodes.push(entry);
        }
        Self {
            nodes,
            chars,
            edges,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total characters in the character table.
    pub fn char_count(&self) -> usize {
        self.chars.len()
    }

    /// The node-table entry for `node`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for unknown nodes.
    pub fn node(&self, node: NodeId) -> Result<NodeEntry, GraphError> {
        self.nodes
            .get(node.index())
            .copied()
            .ok_or(GraphError::NodeOutOfBounds {
                node: node.0,
                node_count: self.nodes.len(),
            })
    }

    /// Reads a node's sequence back out of the character table.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for unknown nodes.
    pub fn node_seq(&self, node: NodeId) -> Result<Vec<Base>, GraphError> {
        let entry = self.node(node)?;
        Ok((entry.char_start..entry.char_start + entry.seq_len as u64)
            .map(|i| self.chars.get(i as usize).expect("char table in bounds"))
            .collect())
    }

    /// Reads a node's successor list back out of the edge table.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for unknown nodes.
    pub fn node_edges(&self, node: NodeId) -> Result<Vec<NodeId>, GraphError> {
        let entry = self.node(node)?;
        Ok(
            self.edges[entry.edge_start as usize..][..entry.out_count as usize]
                .iter()
                .map(|&id| NodeId(id))
                .collect(),
        )
    }

    /// Byte footprint per the paper's formulas.
    pub fn footprint(&self) -> GraphFootprint {
        GraphFootprint {
            node_table_bytes: self.nodes.len() as u64 * NODE_ENTRY_BYTES,
            char_table_bytes: self.chars.byte_len() as u64,
            edge_table_bytes: self.edges.len() as u64 * EDGE_ENTRY_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_graph, Variant};

    fn tables() -> (GenomeGraph, GraphTables) {
        let graph = build_graph(
            &"ACGTACGT".parse().unwrap(),
            [Variant::snp(3, crate::Base::G)].into_iter().collect(),
        )
        .unwrap()
        .graph;
        let tables = GraphTables::from_graph(&graph);
        (graph, tables)
    }

    #[test]
    fn tables_round_trip_graph_content() {
        let (graph, tables) = tables();
        assert_eq!(tables.node_count(), graph.node_count());
        assert_eq!(tables.edge_count(), graph.edge_count());
        assert_eq!(tables.char_count() as u64, graph.total_chars());
        for node in graph.node_ids() {
            let seq: Vec<Base> = graph.seq(node).iter().collect();
            assert_eq!(tables.node_seq(node).unwrap(), seq);
            assert_eq!(tables.node_edges(node).unwrap(), graph.successors(node));
        }
    }

    #[test]
    fn footprint_formulas_match_paper() {
        let (graph, tables) = tables();
        let fp = tables.footprint();
        assert_eq!(fp.node_table_bytes, graph.node_count() as u64 * 32);
        assert_eq!(
            fp.char_table_bytes,
            (graph.total_chars() as usize).div_ceil(4) as u64
        );
        assert_eq!(fp.edge_table_bytes, graph.edge_count() as u64 * 4);
    }

    #[test]
    fn unknown_node_is_an_error() {
        let (_, tables) = tables();
        assert!(tables.node(NodeId(99)).is_err());
        assert!(tables.node_seq(NodeId(99)).is_err());
    }

    #[test]
    fn human_scale_footprint_extrapolation() {
        // The paper: 20.4 M nodes, 27.9 M edges, 3.1 B chars -> 1.4 GB.
        let bytes = 20_400_000u64 * NODE_ENTRY_BYTES
            + 3_100_000_000u64 / 4
            + 27_900_000u64 * EDGE_ENTRY_BYTES;
        let gib = bytes as f64 / (1 << 30) as f64;
        assert!((1.2..1.6).contains(&gib), "got {gib} GiB");
    }
}
