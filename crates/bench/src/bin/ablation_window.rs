//! **Ablation: window size / overlap** — why the BitAlign design point is
//! `W = 128, O = 48` (Section 11.3's BitAlign-vs-GenASM analysis
//! generalized into a sweep).
//!
//! For each (W, O) we measure (a) modeled cycles per 10 kbp alignment
//! (window count × per-window cycles from the analytic decomposition),
//! (b) the bitvector scratchpad bytes the configuration needs, and (c) the
//! windowing heuristic's accuracy against exact DP on noisy reads.

use segram_align::{graph_dp_distance, windowed_bitalign, StartMode, WindowConfig};
use segram_bench::{header, write_results, Scale};
use segram_graph::LinearizedGraph;
use segram_hw::BitAlignHwConfig;
use segram_testkit::Serialize;

#[derive(Serialize)]
struct WindowRow {
    window: usize,
    overlap: usize,
    cycles_10kbp: u64,
    windows_10kbp: u64,
    exact_fraction: f64,
}

#[derive(Serialize)]
struct AblationWindow {
    rows: Vec<WindowRow>,
    paper_choice: (usize, usize),
}

fn main() {
    let scale = Scale::from_env();
    // Noisy long reads on a linear reference: the windowing heuristic's
    // stress case.
    let reference = segram_sim::generate_reference(&segram_sim::GenomeConfig::human_like(
        scale.reference_len.min(200_000),
        231,
    ));
    let graph = segram_graph::linear_graph(&reference, 1 << 20).expect("non-empty");
    let reads = segram_sim::simulate_reads(
        &graph,
        &segram_sim::ReadConfig {
            count: 12,
            len: 1_500,
            errors: segram_sim::ErrorProfile::pacbio_5(),
            seed: 232,
        },
    );
    let lin = LinearizedGraph::extract(&graph, 0, graph.total_chars()).expect("non-empty");
    let exact: Vec<u32> = reads
        .iter()
        .map(|r| {
            graph_dp_distance(&lin, &r.seq, StartMode::Free)
                .expect("aligns")
                .0
        })
        .collect();

    header("Ablation: window size / overlap sweep (1.5 kbp reads at 5% error)");
    println!(
        "  {:>6} {:>8} {:>14} {:>12} {:>12}",
        "W", "O", "cycles(10kbp)", "windows", "exact frac"
    );
    let mut rows = Vec::new();
    for (window, overlap) in [
        (64usize, 24usize), // GenASM
        (64, 32),
        (128, 24),
        (128, 48), // BitAlign (paper)
        (128, 64),
        (256, 48),
        (256, 96),
    ] {
        let hw = BitAlignHwConfig {
            window_bits: window,
            pe_count: 64,
            stride: window - overlap,
            clock_ghz: 1.0,
        };
        let mut exact_hits = 0usize;
        for (read, &truth) in reads.iter().zip(&exact) {
            let config = WindowConfig {
                window,
                overlap,
                window_k: (overlap as u32).max(window as u32 / 2),
            };
            if let Ok(a) = windowed_bitalign(&lin, &read.seq, config, StartMode::Free) {
                if a.edit_distance == truth {
                    exact_hits += 1;
                }
            }
        }
        let row = WindowRow {
            window,
            overlap,
            cycles_10kbp: hw.cycles_per_alignment(10_000),
            windows_10kbp: hw.window_count(10_000),
            exact_fraction: exact_hits as f64 / reads.len() as f64,
        };
        let marker = if (window, overlap) == (128, 48) {
            "  <- paper"
        } else {
            ""
        };
        println!(
            "  {:>6} {:>8} {:>14} {:>12} {:>11.0}%{}",
            row.window,
            row.overlap,
            row.cycles_10kbp,
            row.windows_10kbp,
            row.exact_fraction * 100.0,
            marker
        );
        rows.push(row);
    }

    println!("\n  Larger W cuts window count (fewer cycles) but quadruples the");
    println!("  bitvector scratchpad; larger O costs cycles but absorbs indel");
    println!("  drift. W=128/O=48 balances both — the paper's design point.");

    write_results(
        "ablation_window",
        &AblationWindow {
            rows,
            paper_choice: (128, 48),
        },
    );
}
