//! The character-composition bound, the cheapest of the four filters.

use segram_graph::{Base, ALPHABET_SIZE};

use crate::EditLowerBound;

/// Bounds edit distance by comparing character compositions.
///
/// Every read character of base `b` that is matched (cost 0) consumes one
/// `b` from the aligned reference substring, and the substring's
/// composition is dominated by the whole text's composition. So any excess
/// `max(0, count_read(b) - count_text(b))` must be paid for with one edit
/// (substitution or insertion) per character:
///
/// ```text
/// edit_distance >= Σ_b max(0, count_read(b) - count_text(b))
/// ```
///
/// This is the weakest bound here — it ignores order entirely — but it
/// runs in `O(|read| + |text|)` with four counters and catches candidates
/// whose composition is grossly wrong (e.g. seeds landing in GC-shifted
/// repeats).
///
/// # Examples
///
/// ```
/// use segram_filter::{BaseCountFilter, EditLowerBound};
/// use segram_graph::DnaSeq;
///
/// let read: DnaSeq = "AAAA".parse()?;
/// let text: DnaSeq = "TTTTTTT".parse()?;
/// // No A available: all four read chars need edits.
/// assert_eq!(BaseCountFilter.lower_bound(read.as_slice(), text.as_slice(), 10), 4);
/// assert!(!BaseCountFilter.accepts(read.as_slice(), text.as_slice(), 3));
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaseCountFilter;

impl EditLowerBound for BaseCountFilter {
    fn name(&self) -> &'static str {
        "base-count"
    }

    fn lower_bound(&self, read: &[Base], text: &[Base], _k: u32) -> u32 {
        let mut read_counts = [0u32; ALPHABET_SIZE];
        let mut text_counts = [0u32; ALPHABET_SIZE];
        for &b in read {
            read_counts[b.code() as usize] += 1;
        }
        for &b in text {
            text_counts[b.code() as usize] += 1;
        }
        read_counts
            .iter()
            .zip(&text_counts)
            .map(|(&r, &t)| r.saturating_sub(t))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_graph::DnaSeq;

    fn bases(s: &str) -> Vec<Base> {
        s.parse::<DnaSeq>().unwrap().into_bases()
    }

    #[test]
    fn identical_sequences_have_zero_bound() {
        let s = bases("ACGTACGT");
        assert_eq!(BaseCountFilter.lower_bound(&s, &s, 5), 0);
    }

    #[test]
    fn substring_has_zero_bound() {
        let read = bases("GTAC");
        let text = bases("ACGTACGT");
        assert_eq!(BaseCountFilter.lower_bound(&read, &text, 5), 0);
    }

    #[test]
    fn bound_counts_missing_characters() {
        let read = bases("AACC");
        let text = bases("AGGG");
        // read needs 2 A (text has 1) and 2 C (text has 0): bound 1 + 2.
        assert_eq!(BaseCountFilter.lower_bound(&read, &text, 9), 3);
    }

    #[test]
    fn empty_read_is_always_accepted() {
        let text = bases("ACGT");
        assert_eq!(BaseCountFilter.lower_bound(&[], &text, 0), 0);
        assert!(BaseCountFilter.accepts(&[], &text, 0));
    }

    #[test]
    fn empty_text_costs_whole_read() {
        let read = bases("ACGT");
        assert_eq!(BaseCountFilter.lower_bound(&read, &[], 10), 4);
    }
}
