//! The CLI's error type: every failure mode carries a user-facing message.

use std::error::Error;
use std::fmt;

use segram_graph::GraphError;
use segram_index::PersistError;
use segram_io::{BgzfError, FormatError};

/// Errors surfaced to the terminal by the `segram` binary.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was wrong; the message includes usage help.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// An input file was malformed.
    Format {
        /// The path involved.
        path: String,
        /// The underlying parse error (with line number).
        source: FormatError,
    },
    /// A graph operation failed (construction, topological sort, ...).
    Graph(GraphError),
    /// A persistent `.sgi` index file could not be loaded or written
    /// (corrupt, truncated, or version-skewed — never a panic).
    Index {
        /// The index file involved.
        path: String,
        /// The named persistence error.
        source: PersistError,
    },
    /// A BGZF-compressed input was malformed (bad framing, a failed
    /// checksum, corrupt DEFLATE data, or a truncation — never a panic).
    Bgzf {
        /// The compressed file involved.
        path: String,
        /// The named corruption class.
        source: BgzfError,
    },
    /// A `segram serve` / `segram request` protocol failure: the server
    /// refused (`BUSY`), reported an error (`ERR`), or answered something
    /// the client does not understand.
    Server(String),
}

impl CliError {
    /// Convenience constructor for usage errors.
    pub fn usage(message: impl Into<String>) -> Self {
        Self::Usage(message.into())
    }

    /// Wraps an I/O error with its path.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        Self::Io {
            path: path.into(),
            source,
        }
    }

    /// Wraps a parse error with its path.
    pub fn format(path: impl Into<String>, source: FormatError) -> Self {
        Self::Format {
            path: path.into(),
            source,
        }
    }

    /// Wraps a persistence error with its path; plain I/O failures fold
    /// into [`CliError::Io`] so missing-file messages stay uniform.
    pub fn index(path: impl Into<String>, source: PersistError) -> Self {
        match source {
            PersistError::Io(err) => Self::io(path, err),
            other => Self::Index {
                path: path.into(),
                source: other,
            },
        }
    }

    /// Wraps a BGZF corruption error with its path.
    pub fn bgzf(path: impl Into<String>, source: BgzfError) -> Self {
        Self::Bgzf {
            path: path.into(),
            source,
        }
    }

    /// Convenience constructor for serve-protocol errors.
    pub fn server(message: impl Into<String>) -> Self {
        Self::Server(message.into())
    }

    /// The conventional process exit code for this error class.
    pub fn exit_code(&self) -> i32 {
        match self {
            Self::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(message) => write!(f, "usage error: {message}"),
            Self::Io { path, source } => write!(f, "{path}: {source}"),
            Self::Format { path, source } => write!(f, "{path}: {source}"),
            Self::Graph(err) => write!(f, "graph error: {err}"),
            Self::Index { path, source } => write!(f, "{path}: {source}"),
            Self::Bgzf { path, source } => write!(f, "{path}: {source}"),
            Self::Server(message) => write!(f, "server error: {message}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Usage(_) => None,
            Self::Io { source, .. } => Some(source),
            Self::Format { source, .. } => Some(source),
            Self::Graph(err) => Some(err),
            Self::Index { source, .. } => Some(source),
            Self::Bgzf { source, .. } => Some(source),
            Self::Server(_) => None,
        }
    }
}

impl From<GraphError> for CliError {
    fn from(err: GraphError) -> Self {
        Self::Graph(err)
    }
}
