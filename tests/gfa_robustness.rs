//! Failure-injection tests for the GFA reader: arbitrary byte soup must
//! never panic, and structured corruption must produce precise errors.

use segram_graph::{gfa, GraphError};
use segram_testkit::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text never panics the parser — it either parses or errors.
    #[test]
    fn arbitrary_text_never_panics(text in "\\PC{0,400}") {
        let _ = gfa::from_gfa(&text);
    }

    /// Arbitrary *line soup* built from GFA-ish fragments never panics.
    #[test]
    fn gfa_like_soup_never_panics(
        lines in prop::collection::vec(
            prop_oneof![
                Just("S\ta\tACGT".to_string()),
                Just("S\tb\tGG".to_string()),
                Just("L\ta\t+\tb\t+\t0M".to_string()),
                Just("L\tb\t+\ta\t+\t0M".to_string()),
                Just("H\tVN:Z:1.0".to_string()),
                Just("S\tmissing".to_string()),
                Just("L\ta\t+".to_string()),
                Just("garbage line".to_string()),
                "[ SLH]\\PC{0,20}",
            ],
            0..12,
        )
    ) {
        let text = lines.join("\n");
        let _ = gfa::from_gfa(&text);
    }

    /// Round trip through GFA is lossless for random variation graphs.
    #[test]
    fn round_trip_random_graphs(
        reference in prop::collection::vec(0u8..4, 20..100),
        snps in prop::collection::vec(0u64..90, 0..5),
    ) {
        let reference: segram_graph::DnaSeq = reference
            .into_iter()
            .map(segram_graph::Base::from_code_masked)
            .collect();
        let len = reference.len() as u64;
        let variants: segram_graph::VariantSet = snps
            .into_iter()
            .filter(|&p| p < len)
            .map(|p| segram_graph::Variant::snp(p, reference[p as usize].complement()))
            .collect();
        let graph = segram_graph::build_graph(&reference, variants).unwrap().graph;
        let round = gfa::from_gfa(&gfa::to_gfa(&graph)).unwrap();
        prop_assert_eq!(round.stats(), graph.stats());
        for node in graph.node_ids() {
            prop_assert_eq!(round.seq(node), graph.seq(node));
            prop_assert_eq!(round.successors(node), graph.successors(node));
        }
    }
}

#[test]
fn cyclic_gfa_is_rejected_not_looped() {
    let text = "S\ta\tAC\nS\tb\tGG\nL\ta\t+\tb\t+\t0M\nL\tb\t+\ta\t+\t0M\n";
    match gfa::from_gfa(text) {
        Err(GraphError::CyclicGraph) => {}
        other => panic!("expected CyclicGraph, got {other:?}"),
    }
}

#[test]
fn empty_input_gives_empty_graph() {
    let graph = gfa::from_gfa("").unwrap();
    assert_eq!(graph.node_count(), 0);
}

#[test]
fn windows_line_endings_accepted() {
    let text = "S\ta\tACGT\r\nS\tb\tGG\r\nL\ta\t+\tb\t+\t0M\r\n";
    let graph = gfa::from_gfa(text).unwrap();
    assert_eq!(graph.node_count(), 2);
    assert_eq!(graph.edge_count(), 1);
}
