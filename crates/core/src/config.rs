//! End-to-end mapper configuration.

use segram_align::WindowConfig;
use segram_filter::FilterSpec;
use segram_index::MinimizerScheme;

/// Configuration of a [`SegramMapper`](crate::SegramMapper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegramConfig {
    /// Minimizer scheme used for indexing and seeding. The paper follows
    /// Minimap2's defaults (`w = 10, k = 15` for short reads;
    /// `w = 10, k = 15`/`19` for long).
    pub scheme: MinimizerScheme,
    /// `log2` of the first-level bucket count (paper: 24; scaled-down
    /// defaults use fewer for small synthetic genomes).
    pub bucket_bits: u32,
    /// Fraction of most-frequent minimizers to discard (paper: 0.02 %).
    pub discard_frac: f64,
    /// Expected read error rate `E` (enters seed-region extension,
    /// Figure 9, and the alignment threshold).
    pub error_rate: f64,
    /// Multiplier on `read_len * error_rate` when deriving the edit
    /// threshold `k` for alignment.
    pub threshold_margin: f64,
    /// Window configuration for long-read alignment.
    pub window: WindowConfig,
    /// Align at most this many candidate regions per read (0 = unlimited).
    /// MinSeed itself performs no such filtering (Section 11.4); this knob
    /// exists for the baseline mappers that do.
    pub max_regions: usize,
    /// Stop early once an alignment with at most this many edits is found
    /// (0 disables early exit).
    pub early_exit_edits: u32,
    /// Optional pre-alignment filter applied to candidate regions before
    /// BitAlign (the future-work study of the paper's footnote 6; see
    /// [`segram_filter::filter_region`] for the graph-soundness rules).
    /// `None` reproduces the paper's filter-free MinSeed.
    pub prefilter: Option<FilterSpec>,
}

impl SegramConfig {
    /// A configuration for short accurate reads (Illumina-like).
    pub fn short_reads() -> Self {
        Self {
            scheme: MinimizerScheme::new(10, 15),
            bucket_bits: 16,
            discard_frac: 0.0002,
            error_rate: 0.05,
            threshold_margin: 2.0,
            window: WindowConfig::bitalign(),
            max_regions: 0,
            early_exit_edits: 0,
            prefilter: None,
        }
    }

    /// A configuration for long noisy reads (PacBio/ONT-like).
    pub fn long_reads(error_rate: f64) -> Self {
        Self {
            scheme: MinimizerScheme::new(10, 15),
            bucket_bits: 16,
            discard_frac: 0.0002,
            error_rate,
            threshold_margin: 1.6,
            window: WindowConfig::bitalign(),
            max_regions: 0,
            early_exit_edits: 0,
            prefilter: None,
        }
    }

    /// Returns a copy with the given pre-alignment filter enabled.
    ///
    /// # Examples
    ///
    /// ```
    /// use segram_core::SegramConfig;
    /// use segram_filter::FilterSpec;
    ///
    /// let config = SegramConfig::short_reads().with_prefilter(FilterSpec::cascade());
    /// assert_eq!(config.prefilter, Some(FilterSpec::cascade()));
    /// ```
    pub fn with_prefilter(mut self, filter: FilterSpec) -> Self {
        self.prefilter = Some(filter);
        self
    }

    /// Edit-distance threshold for a read of `len` bases.
    pub fn threshold_for(&self, len: usize) -> u32 {
        ((len as f64) * self.error_rate * self.threshold_margin).ceil() as u32 + 2
    }
}

impl Default for SegramConfig {
    fn default() -> Self {
        Self::short_reads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_scale_with_error_rate() {
        let short = SegramConfig::short_reads();
        let long = SegramConfig::long_reads(0.10);
        assert!(long.threshold_for(10_000) > short.threshold_for(10_000));
        assert!(short.threshold_for(100) >= 2);
    }

    #[test]
    fn presets_differ_where_expected() {
        let short = SegramConfig::short_reads();
        let long = SegramConfig::long_reads(0.10);
        assert_eq!(short.scheme, long.scheme);
        assert!(long.error_rate > short.error_rate);
    }
}
