//! The full SeGraM accelerator and system model (Section 8.3): one
//! MinSeed and one BitAlign per HBM channel, pipelined with double
//! buffering; four stacks × eight channels = 32 accelerators running
//! independent reads.

use crate::bitalign_model::BitAlignHwConfig;
use crate::hbm::HbmConfig;
use crate::minseed_model::{MinSeedHwConfig, SeedWorkload};

/// One SeGraM accelerator (MinSeed + BitAlign behind one HBM channel).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SegramAccelerator {
    /// The seeding half.
    pub minseed: MinSeedHwConfig,
    /// The alignment half.
    pub bitalign: BitAlignHwConfig,
}

impl SegramAccelerator {
    /// Time to process one seed in the pipelined steady state: MinSeed and
    /// BitAlign overlap (Section 8.3: "While BitAlign is running, MinSeed
    /// finds the next set of minimizers ..."), so the per-seed latency is
    /// the maximum of the two stages.
    pub fn per_seed_ns(&self, workload: &SeedWorkload, hbm: &HbmConfig) -> f64 {
        let minseed = self.minseed.per_seed_ns(workload, hbm);
        let bitalign = self.bitalign.alignment_ns(workload.read_len);
        minseed.max(bitalign)
    }

    /// Time to map one read end to end: all its seeds flow through the
    /// pipeline back to back.
    pub fn per_read_ns(&self, workload: &SeedWorkload, hbm: &HbmConfig) -> f64 {
        let seeds = workload.seeds_per_read.max(1.0);
        // One pipeline fill (the first seed's MinSeed work is exposed),
        // then steady-state issue.
        self.minseed.per_seed_ns(workload, hbm) + seeds * self.per_seed_ns(workload, hbm)
    }

    /// Average memory bandwidth demand of one accelerator (bytes/s) — the
    /// paper reports 3.4 GB/s per read stream for long reads, far below a
    /// channel's capacity.
    pub fn bandwidth_demand_bytes_per_s(&self, workload: &SeedWorkload, hbm: &HbmConfig) -> f64 {
        let per_read_s = self.per_read_ns(workload, hbm) / 1e9;
        let bytes_per_read = workload.minimizers_per_read * 12.0
            + workload.seeds_per_read * 8.0
            + workload.seeds_per_read
                * (workload.avg_region_len / 4.0 + workload.avg_region_len / 32.0 * 36.0);
        bytes_per_read / per_read_s
    }
}

/// The complete SeGraM system: `hbm.total_channels()` accelerators.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SegramSystem {
    /// Per-accelerator configuration.
    pub accelerator: SegramAccelerator,
    /// The memory subsystem.
    pub hbm: HbmConfig,
}

impl SegramSystem {
    /// End-to-end mapping throughput in reads per second. Reads are
    /// independent, each accelerator owns its channel, and the reference is
    /// replicated per stack, so throughput scales linearly in the number of
    /// accelerators (Section 11.2, "SeGraM scales linearly").
    pub fn throughput_reads_per_s(&self, workload: &SeedWorkload) -> f64 {
        let per_read_s = self.accelerator.per_read_ns(workload, &self.hbm) / 1e9;
        self.hbm.total_channels() as f64 / per_read_s
    }

    /// Single-read mapping latency in microseconds.
    pub fn read_latency_us(&self, workload: &SeedWorkload) -> f64 {
        self.accelerator.per_read_ns(workload, &self.hbm) / 1e3
    }

    /// A single SeGraM execution (one seed, MinSeed + BitAlign pipelined) —
    /// the paper's "a single SeGraM execution ... takes 35.9 µs at a 5 %
    /// error rate" quantity, in microseconds.
    pub fn per_seed_latency_us(&self, workload: &SeedWorkload) -> f64 {
        self.accelerator.per_seed_ns(workload, &self.hbm) / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn long_read_workload() -> SeedWorkload {
        SeedWorkload {
            read_len: 10_000,
            minimizers_per_read: 1200.0,
            surviving_minimizers: 1100.0,
            seeds_per_read: 3500.0,
            avg_region_len: 11_000.0,
        }
    }

    fn short_read_workload() -> SeedWorkload {
        SeedWorkload {
            read_len: 150,
            minimizers_per_read: 18.0,
            surviving_minimizers: 17.0,
            seeds_per_read: 37.0,
            avg_region_len: 180.0,
        }
    }

    #[test]
    fn per_seed_latency_matches_paper_magnitude() {
        // Paper: a single SeGraM execution takes 35.9 µs at 5 % error for
        // 10 kbp reads. Our model: BitAlign-bound at 34 µs plus any MinSeed
        // exposure -> must land in the same ballpark.
        let system = SegramSystem::default();
        let us = system.per_seed_latency_us(&long_read_workload());
        assert!((30.0..45.0).contains(&us), "{us} µs");
    }

    #[test]
    fn pipeline_hides_minseed_for_long_reads() {
        // BitAlign dominates: the pipelined per-seed time equals the
        // BitAlign time.
        let acc = SegramAccelerator::default();
        let hbm = HbmConfig::default();
        let w = long_read_workload();
        let per_seed = acc.per_seed_ns(&w, &hbm);
        let bitalign = acc.bitalign.alignment_ns(w.read_len);
        assert_eq!(per_seed, bitalign);
    }

    #[test]
    fn throughput_scales_with_channel_count() {
        let mut system = SegramSystem::default();
        let base = system.throughput_reads_per_s(&short_read_workload());
        system.hbm.stacks = 8;
        let doubled = system.throughput_reads_per_s(&short_read_workload());
        assert!((doubled / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn short_reads_are_much_faster_than_long() {
        let system = SegramSystem::default();
        let long = system.throughput_reads_per_s(&long_read_workload());
        let short = system.throughput_reads_per_s(&short_read_workload());
        assert!(short > long * 50.0, "short {short}, long {long}");
    }

    #[test]
    fn bandwidth_demand_stays_below_channel_capacity() {
        // Section 11.2: "the memory bandwidth requirement of each read is
        // low (3.4 GB/s)" — our model must stay below one channel's 57 GB/s.
        let acc = SegramAccelerator::default();
        let hbm = HbmConfig::default();
        for w in [long_read_workload(), short_read_workload()] {
            let demand = acc.bandwidth_demand_bytes_per_s(&w, &hbm);
            assert!(
                demand < hbm.channel_bw_bytes_per_ns * 1e9,
                "demand {demand} exceeds channel bandwidth"
            );
        }
    }

    #[test]
    fn latency_accumulates_over_seeds() {
        let system = SegramSystem::default();
        let w = long_read_workload();
        let total_us = system.read_latency_us(&w);
        let per_seed_us = system.per_seed_latency_us(&w);
        assert!(total_us >= per_seed_us * w.seeds_per_read);
    }
}
