//! Integration: the full downstream-consumer path — map a stranded read
//! set against a multi-chromosome pangenome and emit a valid SAM document.

use segram_align::Cigar;
use segram_core::{mapq_estimate, sam_document, Pangenome, SamRecord, SegramConfig, SegramMapper};
use segram_graph::build_graph;
use segram_sim::{
    generate_reference, simulate_stranded_reads, simulate_variants, GenomeConfig, ReadConfig,
    VariantConfig,
};

#[test]
fn stranded_mapping_to_sam_document() {
    let reference = generate_reference(&GenomeConfig::human_like(40_000, 401));
    let variants = simulate_variants(&reference, &VariantConfig::human_like(402));
    let built = build_graph(&reference, variants).unwrap();
    let mapper = SegramMapper::new(built.graph.clone(), SegramConfig::short_reads());
    let reads = simulate_stranded_reads(&built.graph, &ReadConfig::short_reads(25, 120, 403), 0.5);

    let mut records = Vec::new();
    let mut correct = 0usize;
    for (i, read) in reads.iter().enumerate() {
        let (mapping, stats) = mapper.map_read_both(&read.seq);
        match mapping {
            Some((m, strand)) => {
                if m.linear_start.abs_diff(read.true_start_linear) < 120 {
                    correct += 1;
                    // The reported strand must match the simulated one for
                    // low-edit mappings at the true position.
                    if m.alignment.edit_distance <= 3 {
                        assert_eq!(strand, read.strand, "read {i}");
                    }
                }
                let mapq = mapq_estimate(
                    stats.regions_aligned,
                    m.alignment.edit_distance,
                    read.seq.len(),
                );
                records.push(SamRecord::from_mapping(
                    format!("read{i}"),
                    "graph",
                    &read.seq,
                    &m,
                    mapq,
                ));
            }
            None => records.push(SamRecord::unmapped(format!("read{i}"), &read.seq)),
        }
    }
    assert!(correct >= 18, "only {correct}/25 correct");

    let doc = sam_document("graph", built.graph.total_chars(), &records);
    let lines: Vec<&str> = doc.lines().collect();
    assert_eq!(lines.len(), 3 + records.len());
    // Every mapped record's CIGAR parses and consumes the read exactly.
    for line in &lines[3..] {
        let fields: Vec<&str> = line.split('\t').collect();
        assert!(fields.len() >= 11, "short SAM line: {line}");
        let cigar: Cigar = fields[5].parse().expect("valid CIGAR");
        if fields[1] != "4" {
            assert_eq!(cigar.read_len() as usize, fields[9].len(), "line {line}");
        }
    }
}

#[test]
fn pangenome_sam_uses_winning_chromosome() {
    let chroms: Vec<(String, segram_graph::GenomeGraph)> = (0..2)
        .map(|i| {
            let reference = generate_reference(&GenomeConfig::human_like(15_000, 500 + i));
            let variants = simulate_variants(&reference, &VariantConfig::human_like(600 + i));
            (
                format!("chr{}", i + 1),
                build_graph(&reference, variants).unwrap().graph,
            )
        })
        .collect();
    let pangenome = Pangenome::new(chroms, SegramConfig::short_reads());
    // A read walking an actual path of chromosome 2 (bases of a raw
    // linearization window would interleave bubble alleles).
    let chr2 = pangenome.chromosomes()[1].mapper().graph();
    let start = chr2.graph_pos(3_000).unwrap();
    let read = segram_sim::path_fragment(chr2, start, 120, 77).unwrap();
    let (hit, stats) = pangenome.map_read(&read);
    let hit = hit.expect("read maps");
    assert_eq!(hit.chromosome, "chr2");
    let rec = SamRecord::from_mapping(
        "r0",
        &hit.chromosome,
        &read,
        &hit.mapping,
        mapq_estimate(stats.regions_aligned, 0, read.len()),
    );
    assert_eq!(rec.rname, "chr2");
    assert!(rec.to_sam_line().contains("NM:i:0"));
}
