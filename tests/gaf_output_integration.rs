//! Integration: every mapping the end-to-end mapper produces must convert
//! to a valid GAF record. `GafRecord::from_char_path` re-validates the
//! mapping's graph path step by step (same-node adjacency or a real edge)
//! and cross-checks it against the CIGAR's reference consumption, so this
//! test doubles as an invariant check on `Mapping::path` — including the
//! windowed long-read path, where the per-window tracebacks are merged.

use segram_core::{mapq_estimate, SegramConfig, SegramMapper};
use segram_io::{read_gaf, write_gaf, GafRecord};
use segram_sim::DatasetConfig;

fn gaf_records_for(dataset: &segram_sim::Dataset, config: SegramConfig) -> Vec<GafRecord> {
    let mapper = SegramMapper::new(dataset.graph().clone(), config);
    let mut records = Vec::new();
    for read in &dataset.reads {
        let (mapping, stats) = mapper.map_read(&read.seq);
        let Some(mapping) = mapping else { continue };
        let record = GafRecord::from_char_path(
            format!("read{}", read.id),
            read.seq.len(),
            mapper.graph(),
            &mapping.path,
            &mapping.alignment.cigar,
            mapping.alignment.edit_distance,
            mapq_estimate(
                stats.regions_aligned,
                mapping.alignment.edit_distance,
                read.seq.len(),
            ),
        )
        .unwrap_or_else(|e| panic!("read{}: mapping does not convert to GAF: {e}", read.id));
        records.push(record);
    }
    records
}

#[test]
fn short_read_mappings_are_valid_gaf() {
    let dataset = DatasetConfig::tiny(61).illumina(100);
    let records = gaf_records_for(&dataset, SegramConfig::short_reads());
    assert!(
        records.len() * 10 >= dataset.reads.len() * 8,
        "too few mappings: {}/{}",
        records.len(),
        dataset.reads.len()
    );
    for rec in &records {
        // Illumina-like 1% error: identity must stay high.
        assert!(
            rec.identity() > 0.9,
            "{}: identity {}",
            rec.qname,
            rec.identity()
        );
        assert!(rec.pend <= rec.plen, "{}: path overrun", rec.qname);
        assert!(!rec.path.is_empty());
    }
    // Serialized GAF re-parses to the same records.
    let reparsed = read_gaf(&write_gaf(&records)).expect("own GAF re-parses");
    assert_eq!(reparsed, records);
}

#[test]
fn long_read_mappings_are_valid_gaf() {
    let mut config = DatasetConfig::tiny(67);
    config.read_count = 8;
    let dataset = config.pacbio_5();
    let mut mapper_config = SegramConfig::long_reads(0.05);
    mapper_config.max_regions = 12;
    let records = gaf_records_for(&dataset, mapper_config);
    assert!(!records.is_empty(), "no long reads mapped");
    for rec in &records {
        // 5% error reads: identity well above random but below short-read.
        assert!(
            rec.identity() > 0.75,
            "{}: identity {}",
            rec.qname,
            rec.identity()
        );
        // The path must walk several nodes on a variant graph at 2 kbp.
        assert!(
            rec.path.len() >= 2,
            "{}: suspiciously short path",
            rec.qname
        );
    }
}

#[test]
fn variant_spanning_reads_walk_alt_nodes() {
    // Reads that the simulator drew through ALT alleles should produce GAF
    // paths that visit non-backbone nodes. 60 reads over a 30 kbp graph
    // cover dozens of variant sites, so this holds with huge margin for
    // any healthy seed.
    let mut config = DatasetConfig::tiny(71);
    config.read_count = 60;
    let dataset = config.illumina(150);
    let is_backbone = &dataset.built.is_backbone;
    let records = gaf_records_for(&dataset, SegramConfig::short_reads());
    let touches_alt = records
        .iter()
        .any(|rec| rec.path.iter().any(|node| !is_backbone[node.index()]));
    assert!(
        touches_alt,
        "no mapping ever walked an ALT node across {} records",
        records.len()
    );
}
