//! Dataset presets mirroring Section 10 of the paper, scaled to laptop
//! size (the scale factor is explicit so experiments can be re-run larger).
//!
//! Paper datasets:
//! * reference: GRCh38 + 7 GIAB VCFs → 24 chromosome graphs;
//! * long reads: PacBio/ONT, 10 kbp, 5 %/10 % error, 10 000 reads each;
//! * short reads: Illumina, 100/150/250 bp, 1 % error, 10 000 reads each;
//! * HGA comparison: the BRCA1 gene graph with R1 (128 bp), R2 (1 kbp),
//!   R3 (8 kbp) read sets;
//! * PaSGAL comparison: LRC (~1 Mbp) and MHC (~5 Mbp) region graphs.

use segram_graph::{build_graph, ConstructedGraph, DnaSeq, GenomeGraph};

use crate::genome::{generate_reference, GenomeConfig};
use crate::reads::{simulate_reads, ErrorProfile, ReadConfig, SimulatedRead};
use crate::variants::{simulate_variants, VariantConfig};

/// A fully materialized dataset: reference, graph, and reads.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable dataset name (paper nomenclature).
    pub name: String,
    /// The linear reference the graph was built from.
    pub reference: DnaSeq,
    /// The constructed genome graph (with variant bookkeeping).
    pub built: ConstructedGraph,
    /// The simulated reads.
    pub reads: Vec<SimulatedRead>,
    /// The error profile reads were drawn with.
    pub errors: ErrorProfile,
}

impl Dataset {
    /// The genome graph.
    pub fn graph(&self) -> &GenomeGraph {
        &self.built.graph
    }

    /// Read length (all presets use fixed-length reads).
    pub fn read_len(&self) -> usize {
        self.reads.first().map_or(0, |r| r.seq.len())
    }
}

/// Builder for the §10-style datasets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetConfig {
    /// Reference length in bases (the paper's is 3.1 G; default here 200 k).
    pub reference_len: usize,
    /// Number of reads (the paper's is 10 000; default here 200).
    pub read_count: usize,
    /// Long-read length (the paper's is 10 000).
    pub long_read_len: usize,
    /// Base RNG seed; each preset derives distinct sub-seeds.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            reference_len: 200_000,
            read_count: 200,
            long_read_len: 10_000,
            seed: 42,
        }
    }
}

impl DatasetConfig {
    /// A quick configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            reference_len: 30_000,
            read_count: 20,
            long_read_len: 2_000,
            seed,
        }
    }

    fn base(&self, name: &str, read_len: usize, errors: ErrorProfile, salt: u64) -> Dataset {
        let reference = generate_reference(&GenomeConfig::human_like(
            self.reference_len,
            self.seed ^ 0x9e37_79b9,
        ));
        let variants = simulate_variants(
            &reference,
            &VariantConfig::human_like(self.seed ^ 0x85eb_ca6b),
        );
        let built = build_graph(&reference, variants).expect("valid synthetic inputs");
        let reads = simulate_reads(
            &built.graph,
            &ReadConfig {
                count: self.read_count,
                len: read_len,
                errors,
                seed: self.seed ^ salt,
            },
        );
        Dataset {
            name: name.to_owned(),
            reference,
            built,
            reads,
            errors,
        }
    }

    /// PacBio-like long reads at 5 % error (paper: "PacBio ... 5 %").
    pub fn pacbio_5(&self) -> Dataset {
        self.base(
            "PacBio-10kbp-5%",
            self.long_read_len,
            ErrorProfile::pacbio_5(),
            0x1111,
        )
    }

    /// ONT-like long reads at 10 % error (paper: "ONT ... 10 %").
    pub fn ont_10(&self) -> Dataset {
        self.base(
            "ONT-10kbp-10%",
            self.long_read_len,
            ErrorProfile::ont_10(),
            0x2222,
        )
    }

    /// Illumina-like short reads of the given length (100/150/250 in §10).
    pub fn illumina(&self, read_len: usize) -> Dataset {
        self.base(
            &format!("Illumina-{read_len}bp-1%"),
            read_len,
            ErrorProfile::illumina(),
            0x3333 + read_len as u64,
        )
    }

    /// All seven §10 datasets (four long, three short), at this scale.
    pub fn section10_suite(&self) -> Vec<Dataset> {
        vec![
            self.pacbio_5(),
            self.ont_10(),
            // The paper has two PacBio and two ONT sets (5 % and 10 % each
            // of PacBio/ONT); we mirror the error-rate grid.
            {
                let mut d = self.base(
                    "PacBio-10kbp-10%",
                    self.long_read_len,
                    ErrorProfile {
                        sub: 0.020,
                        ins: 0.050,
                        del: 0.030,
                    },
                    0x4444,
                );
                d.name = "PacBio-10kbp-10%".into();
                d
            },
            {
                let mut d = self.base(
                    "ONT-10kbp-5%",
                    self.long_read_len,
                    ErrorProfile {
                        sub: 0.018,
                        ins: 0.015,
                        del: 0.017,
                    },
                    0x5555,
                );
                d.name = "ONT-10kbp-5%".into();
                d
            },
            self.illumina(100),
            self.illumina(150),
            self.illumina(250),
        ]
    }
}

/// The BRCA1-like dataset of the HGA comparison (§10): a single-gene graph
/// (~81 kbp) with three read sets — R1 (128 bp), R2 (1 024 bp), R3
/// (8 192 bp) — whose counts keep total bases constant, like the original
/// (278 528 / 34 816 / 4 352 reads; scaled by `scale`).
#[derive(Clone, Debug)]
pub struct Brca1Dataset {
    /// The gene graph.
    pub built: ConstructedGraph,
    /// R1: short reads.
    pub r1: Vec<SimulatedRead>,
    /// R2: medium reads.
    pub r2: Vec<SimulatedRead>,
    /// R3: long reads.
    pub r3: Vec<SimulatedRead>,
}

/// Builds the BRCA1-like dataset. `scale` divides the paper's read counts
/// (use `scale = 256` for quick runs).
pub fn brca1_like(scale: usize, seed: u64) -> Brca1Dataset {
    let scale = scale.max(1);
    let reference = generate_reference(&GenomeConfig::human_like(81_000, seed));
    let variants =
        simulate_variants(&reference, &VariantConfig::human_like(seed ^ 0xb5)).into_sorted();
    let built = build_graph(&reference, variants).expect("valid synthetic inputs");
    let mk = |len: usize, count: usize, salt: u64| {
        simulate_reads(
            &built.graph,
            &ReadConfig {
                count: count.max(1),
                len,
                errors: ErrorProfile::illumina(),
                seed: seed ^ salt,
            },
        )
    };
    Brca1Dataset {
        r1: mk(128, 278_528 / scale, 0xaa),
        r2: mk(1_024, 34_816 / scale, 0xbb),
        r3: mk(8_192 - 1, 4_352 / scale, 0xcc),
        built,
    }
}

/// A PaSGAL-style region dataset (LRC/MHC-like): one dense region graph
/// plus one read set (Figure 17's four dataset shapes).
#[derive(Clone, Debug)]
pub struct RegionDataset {
    /// Dataset name (paper nomenclature, e.g. `LRC-L1`).
    pub name: String,
    /// The region graph.
    pub built: ConstructedGraph,
    /// The reads.
    pub reads: Vec<SimulatedRead>,
}

/// Builds the four Figure 17 datasets (`LRC-L1`, `MHC1-M1` short-read;
/// `LRC-L2`, `MHC1-M2` long-read), scaled by `scale` (region sizes and read
/// counts divided by `scale`).
pub fn pasgal_suite(scale: usize, seed: u64) -> Vec<RegionDataset> {
    let scale = scale.max(1);
    let lrc_len = 1_000_000 / scale;
    let mhc_len = 4_970_000 / scale;
    let mk_region = |name: &str, region_len: usize, read_len: usize, count: usize, salt: u64| {
        let reference = generate_reference(&GenomeConfig::human_like(
            region_len.max(10_000),
            seed ^ salt,
        ));
        // Region graphs (LRC/MHC) are unusually variant-dense.
        let mut vconf = VariantConfig::human_like(seed ^ salt ^ 0xd1);
        vconf.density = 1.0 / 150.0;
        let variants = simulate_variants(&reference, &vconf);
        let built = build_graph(&reference, variants).expect("valid synthetic inputs");
        let reads = simulate_reads(
            &built.graph,
            &ReadConfig {
                count: count.max(1),
                len: read_len,
                errors: if read_len > 1000 {
                    ErrorProfile::pacbio_5()
                } else {
                    ErrorProfile::illumina()
                },
                seed: seed ^ salt ^ 0xe2,
            },
        );
        RegionDataset {
            name: name.to_owned(),
            built,
            reads,
        }
    };
    vec![
        mk_region("LRC-L1", lrc_len, 100, 317_600 / scale, 0x01),
        mk_region("MHC1-M1", mhc_len, 100, 497_000 / scale, 0x02),
        mk_region(
            "LRC-L2",
            lrc_len,
            10_000.min(lrc_len / 4),
            3_200 / scale,
            0x03,
        ),
        mk_region(
            "MHC1-M2",
            mhc_len,
            10_000.min(mhc_len / 4),
            4_900 / scale,
            0x04,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_materializes() {
        let config = DatasetConfig::tiny(1);
        let d = config.illumina(100);
        assert_eq!(d.reads.len(), 20);
        assert_eq!(d.read_len(), 100);
        assert!(d.graph().is_topologically_sorted());
        assert!(d.name.contains("Illumina"));
    }

    #[test]
    fn long_read_presets_have_expected_error_rates() {
        let config = DatasetConfig::tiny(2);
        let pb = config.pacbio_5();
        let ont = config.ont_10();
        let pb_rate = crate::reads::measured_error_rate(&pb.reads);
        let ont_rate = crate::reads::measured_error_rate(&ont.reads);
        assert!((0.03..0.07).contains(&pb_rate), "{pb_rate}");
        assert!((0.07..0.13).contains(&ont_rate), "{ont_rate}");
        assert!(ont_rate > pb_rate);
    }

    #[test]
    fn brca1_counts_scale() {
        let d = brca1_like(4096, 3);
        assert_eq!(d.r1.len(), 278_528 / 4096);
        assert_eq!(d.r2.len(), 34_816 / 4096);
        assert_eq!(d.r3.len(), 4_352 / 4096);
        assert_eq!(d.r1[0].seq.len(), 128);
        assert_eq!(d.r2[0].seq.len(), 1024);
    }

    #[test]
    fn pasgal_suite_has_four_regions() {
        let suite = pasgal_suite(100, 4);
        assert_eq!(suite.len(), 4);
        assert_eq!(suite[0].name, "LRC-L1");
        assert!(suite[3].built.graph.is_topologically_sorted());
        // Short-read datasets use 100 bp reads; long-read are longer.
        assert_eq!(suite[0].reads[0].seq.len(), 100);
        assert!(suite[2].reads[0].seq.len() > 1000);
    }

    #[test]
    fn section10_suite_is_complete() {
        let config = DatasetConfig::tiny(5);
        let suite = config.section10_suite();
        assert_eq!(suite.len(), 7);
        let names: Vec<&str> = suite.iter().map(|d| d.name.as_str()).collect();
        assert!(names.iter().filter(|n| n.contains("Illumina")).count() == 3);
        assert!(names.iter().filter(|n| n.contains("10kbp")).count() == 4);
    }
}
