//! The seeding-stage router: dispatches a read's minimizers to the
//! shard(s) whose index slice can answer them and merges the per-shard
//! hits into one candidate-region list **before** prefilter/alignment.
//!
//! Byte-identity with the unsharded path holds by construction:
//!
//! 1. the shards partition the monolithic index's seed locations, so for
//!    every minimizer the summed per-shard frequency equals the global
//!    frequency (the frequency filter makes identical decisions);
//! 2. candidate regions are computed with the same Figure 9 arithmetic
//!    ([`segram_index::seed_region`]) against the same shared graph;
//! 3. the merged region list goes through the exact monolithic
//!    sort-by-`(start, end, seed)` + dedup-by-`(start, end)` ordering, so
//!    downstream stages see the same regions in the same order.
//!
//! The router also feeds each shard's occupancy counters (seed hits,
//! regions produced), the observability behind the paper's Section 8.3
//! load-balance study.

use segram_graph::{DnaSeq, GenomeGraph};
use segram_index::{extract_minimizers, seed_region, SeedRegion, SeedingResult, SeedingStats};

use crate::pipeline::Seeder;
use crate::shard::IndexShard;

/// The sharded [`Seeder`]: minimizer extraction once per read, a global
/// frequency decision, then per-shard index lookups merged into the
/// monolithic candidate order.
#[derive(Clone, Copy, Debug)]
pub struct ShardRouter<'a> {
    graph: &'a GenomeGraph,
    shards: &'a [IndexShard],
    error_rate: f64,
    frequency_threshold: u32,
}

impl<'a> ShardRouter<'a> {
    /// Binds the router to a shard set. `frequency_threshold` must be the
    /// *global* (whole-graph) threshold, not a shard-local one.
    pub fn new(
        graph: &'a GenomeGraph,
        shards: &'a [IndexShard],
        error_rate: f64,
        frequency_threshold: u32,
    ) -> Self {
        assert!(!shards.is_empty(), "router needs at least one shard");
        Self {
            graph,
            shards,
            error_rate,
            frequency_threshold,
        }
    }

    /// The shards this router dispatches to.
    pub fn shards(&self) -> &'a [IndexShard] {
        self.shards
    }
}

impl Seeder for ShardRouter<'_> {
    fn seed(&self, read: &DnaSeq) -> SeedingResult {
        let scheme = *self.shards[0].mapper().index().scheme();
        let minimizers = extract_minimizers(read, &scheme);
        let mut stats = SeedingStats {
            minimizers: minimizers.len(),
            ..SeedingStats::default()
        };
        let mut regions: Vec<SeedRegion> = Vec::new();
        // One index probe per shard per minimizer: the location slice
        // answers both the routing question (who holds this minimizer)
        // and the frequency question (its length *is* the shard-local
        // frequency), so no separate frequency lookup is needed.
        let mut per_shard: Vec<&[segram_graph::GraphPos]> = Vec::with_capacity(self.shards.len());
        for m in &minimizers {
            per_shard.clear();
            per_shard.extend(self.shards.iter().map(|s| s.mapper().index().lookup(m)));
            // Summed shard-local frequencies reproduce the monolithic
            // frequency-filter decision (the shards partition the index).
            let freq: u32 = per_shard.iter().map(|locs| locs.len() as u32).sum();
            if freq > self.frequency_threshold {
                stats.filtered_minimizers += 1;
                continue;
            }
            for (shard, locs) in self.shards.iter().zip(&per_shard) {
                if locs.is_empty() {
                    continue;
                }
                shard.record_seed_hits(locs.len() as u64);
                for &loc in *locs {
                    stats.seed_locations += 1;
                    if let Some(region) =
                        seed_region(self.graph, self.error_rate, read.len(), m, loc, scheme.k)
                    {
                        shard.record_region();
                        regions.push(region);
                    }
                }
            }
        }
        regions.sort_by_key(|r| (r.start, r.end, r.seed));
        regions.dedup_by_key(|r| (r.start, r.end));
        stats.regions = regions.len();
        SeedingResult { regions, stats }
    }
}
