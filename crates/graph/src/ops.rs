//! Graph change-operations: applying a variant delta to an existing
//! genome graph as a **logged, versioned operation** instead of an opaque
//! rebuild.
//!
//! The model follows the git-for-genomes idea (operations + changelog over
//! a graph database): a pangenome release is the result of a chain of
//! variant applications, each stamped with a monotonically increasing
//! *epoch*. [`apply_variants`] takes the linear reference, the variant set
//! already embedded in the current graph, and a delta set, and returns
//!
//! * the rebuilt graph (byte-identical to a from-scratch
//!   [`build_graph`](crate::build_graph) on the combined set — the
//!   equivalence every downstream incremental structure leans on), and
//! * a [`ChangeLog`]: the [`GraphOp`]s performed, the *carried* node pairs
//!   (old node → new node with identical sequence content), the *fresh*
//!   nodes that exist only in the new graph, and the merged
//!   reference-coordinate ranges the delta touched.
//!
//! Because minimizers never cross node boundaries, a carried node's index
//! entries are valid in the new graph after nothing more than a node-id
//! translation — that is what lets `segram-index` re-extract only fresh
//! nodes and `segram-core` rebuild only dirty shards.
//!
//! Conflict rule: the combined set is sorted and overlap-dropped exactly
//! like a scratch build, so earlier-sorting variants win regardless of
//! which epoch introduced them. A delta variant overlapping an embedded
//! one is counted in [`ChangeLog::dropped_variants`].

use std::collections::HashMap;

use crate::{build_graph, ConstructedGraph, DnaSeq, GenomeGraph, GraphError, NodeId, VariantSet};

/// One logged operation performed on the graph by a variant application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphOp {
    /// A node that exists only in the new graph (its minimizers must be
    /// extracted from scratch).
    AddNode {
        /// Node id in the **new** graph.
        node: NodeId,
        /// Reference coordinate the node's interval starts at.
        ref_start: u64,
        /// Sequence length in characters.
        len: u64,
        /// Whether the node is a linear-reference backbone segment.
        backbone: bool,
    },
    /// A node of the old graph with no counterpart in the new graph.
    DropNode {
        /// Node id in the **old** graph.
        node: NodeId,
    },
    /// An edge of the new graph that is not the image of an old edge
    /// under the carried-node mapping.
    AddEdge {
        /// Source node id in the **new** graph.
        from: NodeId,
        /// Target node id in the **new** graph.
        to: NodeId,
    },
}

/// The versioned record of one variant application: which nodes carried
/// over, which are fresh, and which reference ranges were touched.
#[derive(Clone, Debug, Default)]
pub struct ChangeLog {
    /// Epoch of the graph the delta was applied to.
    pub parent_epoch: u64,
    /// Epoch of the resulting graph (`parent_epoch + 1`).
    pub epoch: u64,
    /// The operations performed, in new-graph node/edge order.
    pub ops: Vec<GraphOp>,
    /// `(old, new)` pairs of content-identical nodes, strictly increasing
    /// in **both** components (the mapping preserves coordinate order).
    pub carried: Vec<(NodeId, NodeId)>,
    /// New-graph nodes with no old counterpart (need re-extraction).
    pub fresh: Vec<NodeId>,
    /// Old-graph nodes with no new counterpart (their index entries die).
    pub dropped: Vec<NodeId>,
    /// Merged half-open reference-coordinate ranges covered by fresh and
    /// dropped nodes — the part of the genome the delta touched.
    pub touched: Vec<(u64, u64)>,
    /// Delta variants embedded in the new graph.
    pub added_variants: usize,
    /// Delta variants discarded because they overlapped the combined set.
    pub dropped_variants: usize,
}

impl ChangeLog {
    /// Old-node → new-node translation table (`None` for dropped nodes),
    /// indexed by old node id.
    pub fn carried_map(&self, old_nodes: usize) -> Vec<Option<NodeId>> {
        let mut map = vec![None; old_nodes];
        for &(old, new) in &self.carried {
            map[old.index()] = Some(new);
        }
        map
    }

    /// Half-open linear-coordinate intervals of the fresh nodes in the
    /// new graph — the character ranges an incremental indexer must
    /// re-extract (everything else is carried).
    pub fn fresh_linear(&self, new_graph: &GenomeGraph) -> Vec<(u64, u64)> {
        merge_ranges(
            self.fresh
                .iter()
                .map(|&n| {
                    let start = new_graph.char_start(n);
                    (start, start + new_graph.node_len(n) as u64)
                })
                .collect(),
        )
    }

    /// Total characters across the fresh nodes — the re-extraction work.
    pub fn fresh_chars(&self, new_graph: &GenomeGraph) -> u64 {
        self.fresh
            .iter()
            .map(|&n| new_graph.node_len(n) as u64)
            .sum()
    }
}

/// Result of [`apply_variants`]: both builds plus the change log.
#[derive(Clone, Debug)]
pub struct DeltaBuild {
    /// The parent graph, rebuilt from `(reference, applied)` — needed by
    /// callers that only persisted the graph itself.
    pub old: ConstructedGraph,
    /// The child graph, built from the combined variant set; identical to
    /// a from-scratch [`build_graph`] on `applied ∪ delta`.
    pub new: ConstructedGraph,
    /// What changed between them.
    pub log: ChangeLog,
}

/// Applies a variant delta to the graph described by
/// `(reference, applied)` and logs the operations.
///
/// `applied` must be the embedded (sorted, non-overlapping) set of the
/// parent build — exactly what [`ConstructedGraph::applied`] reports and
/// the `.sgi` changelog section persists. `parent_epoch` stamps the log;
/// the new graph is epoch `parent_epoch + 1`.
///
/// # Errors
///
/// Fails like [`build_graph`] does: variants out of bounds or an empty
/// reference.
pub fn apply_variants(
    reference: &DnaSeq,
    applied: &VariantSet,
    delta: &VariantSet,
    parent_epoch: u64,
) -> Result<DeltaBuild, GraphError> {
    let old = build_graph(reference, applied.clone())?;
    let mut combined = applied.clone();
    combined.extend(delta.iter().cloned());
    let new = build_graph(reference, combined)?;
    // Every drop in the combined build beyond the parent's own is caused
    // by the delta (either a delta variant lost to the embedded set, or —
    // rarely — an embedded variant displaced by an earlier-sorting delta
    // variant; both count as delta conflicts).
    let dropped_variants = (applied.len() + delta.len()) - new.applied.len();
    let added_variants = delta.len() - dropped_variants.min(delta.len());
    let mut log = diff_graphs(&old, &new);
    log.parent_epoch = parent_epoch;
    log.epoch = parent_epoch + 1;
    log.added_variants = added_variants;
    log.dropped_variants = dropped_variants;
    Ok(DeltaBuild { old, new, log })
}

/// Structural diff between two constructed graphs: matches
/// content-identical nodes (same reference start, same backbone role,
/// same sequence) in coordinate order and derives the op log.
///
/// The matching is conservative: any pair it reports as carried has
/// byte-identical sequence content, and the kept pairs are strictly
/// monotone in both graphs' node ids — unmatched nodes fall back to
/// fresh/dropped, which downstream consumers handle by re-extracting.
pub fn diff_graphs(old: &ConstructedGraph, new: &ConstructedGraph) -> ChangeLog {
    type Key = (u64, bool, Vec<u8>);
    let descriptor = |built: &ConstructedGraph, node: NodeId| -> Key {
        (
            built.ref_starts[node.index()],
            built.is_backbone[node.index()],
            built
                .graph
                .seq(node)
                .iter()
                .map(|b| b.code())
                .collect::<Vec<u8>>(),
        )
    };
    let mut pool: HashMap<Key, Vec<NodeId>> = HashMap::new();
    for node in old.graph.node_ids() {
        pool.entry(descriptor(old, node)).or_default().push(node);
    }
    for queue in pool.values_mut() {
        queue.reverse(); // pop() then yields lowest old id first
    }

    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut fresh: Vec<NodeId> = Vec::new();
    for node in new.graph.node_ids() {
        match pool.get_mut(&descriptor(new, node)).and_then(Vec::pop) {
            Some(old_node) => pairs.push((old_node, node)),
            None => fresh.push(node),
        }
    }
    // Enforce strict monotonicity in the old component (the new component
    // is increasing by construction): a match that would cross an earlier
    // one is demoted to fresh + dropped, never mis-carried.
    let mut carried: Vec<(NodeId, NodeId)> = Vec::with_capacity(pairs.len());
    let mut demoted_old: Vec<NodeId> = Vec::new();
    let mut last_old: Option<NodeId> = None;
    for (old_node, new_node) in pairs {
        if last_old.is_none_or(|prev| old_node > prev) {
            last_old = Some(old_node);
            carried.push((old_node, new_node));
        } else {
            demoted_old.push(old_node);
            fresh.push(new_node);
        }
    }
    fresh.sort_unstable();

    let matched_old: Vec<bool> = {
        let mut m = vec![false; old.graph.node_count()];
        for &(o, _) in &carried {
            m[o.index()] = true;
        }
        for &o in &demoted_old {
            m[o.index()] = true; // demoted: counted via `dropped` below
        }
        m
    };
    let mut dropped: Vec<NodeId> = old
        .graph
        .node_ids()
        .filter(|n| !matched_old[n.index()])
        .collect();
    dropped.extend(demoted_old);
    dropped.sort_unstable();

    // Edge image of the old graph under the carried map, to isolate the
    // genuinely new edges.
    let old_to_new = {
        let mut map = vec![None; old.graph.node_count()];
        for &(o, n) in &carried {
            map[o.index()] = Some(n);
        }
        map
    };
    let mut mapped_edges: Vec<(NodeId, NodeId)> = old
        .graph
        .edges()
        .filter_map(|(a, b)| Some((old_to_new[a.index()]?, old_to_new[b.index()]?)))
        .collect();
    mapped_edges.sort_unstable();

    let mut ops: Vec<GraphOp> = Vec::new();
    for &node in &fresh {
        ops.push(GraphOp::AddNode {
            node,
            ref_start: new.ref_starts[node.index()],
            len: new.graph.node_len(node) as u64,
            backbone: new.is_backbone[node.index()],
        });
    }
    for &node in &dropped {
        ops.push(GraphOp::DropNode { node });
    }
    for (a, b) in new.graph.edges() {
        if mapped_edges.binary_search(&(a, b)).is_err() {
            ops.push(GraphOp::AddEdge { from: a, to: b });
        }
    }

    // Touched reference ranges: every fresh/dropped node's footprint on
    // the linear reference (insertions and alts count at least one
    // coordinate so the range is never empty).
    let mut touched: Vec<(u64, u64)> = Vec::new();
    for &node in &fresh {
        let start = new.ref_starts[node.index()];
        let len = if new.is_backbone[node.index()] {
            new.graph.node_len(node) as u64
        } else {
            1
        };
        touched.push((start, start + len.max(1)));
    }
    for &node in &dropped {
        let start = old.ref_starts[node.index()];
        let len = if old.is_backbone[node.index()] {
            old.graph.node_len(node) as u64
        } else {
            1
        };
        touched.push((start, start + len.max(1)));
    }

    ChangeLog {
        parent_epoch: 0,
        epoch: 0,
        ops,
        carried,
        fresh,
        dropped,
        touched: merge_ranges(touched),
        added_variants: 0,
        dropped_variants: 0,
    }
}

/// Full content equality of two graphs: node sequences in id order plus
/// the edge list. Used to verify that a replayed construction reproduces
/// a stored graph before trusting a delta derived from it.
pub fn graphs_identical(a: &GenomeGraph, b: &GenomeGraph) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && a.node_ids().all(|n| a.seq(n) == b.seq(n))
        && a.edges().eq(b.edges())
}

/// Sorts and merges overlapping or adjacent half-open ranges.
pub fn merge_ranges(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.retain(|&(s, e)| e > s);
    ranges.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (start, end) in ranges {
        match merged.last_mut() {
            Some((_, last_end)) if start <= *last_end => *last_end = (*last_end).max(end),
            _ => merged.push((start, end)),
        }
    }
    merged
}

/// Whether two half-open ranges intersect.
pub fn ranges_intersect(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Base, Variant};

    fn reference() -> DnaSeq {
        "ACGTACGTACGTACGTACGTACGTACGTACGT".parse().unwrap()
    }

    fn assert_graphs_equal(a: &GenomeGraph, b: &GenomeGraph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for node in a.node_ids() {
            assert_eq!(a.seq(node), b.seq(node), "node {node:?} differs");
        }
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn delta_graph_matches_scratch_build() {
        let v1: VariantSet = [Variant::snp(3, Base::G)].into_iter().collect();
        let built1 = build_graph(&reference(), v1.clone()).unwrap();
        let delta: VariantSet = [
            Variant::insertion(10, "TT".parse().unwrap()),
            Variant::deletion(20, 2),
        ]
        .into_iter()
        .collect();
        let result = apply_variants(&reference(), &built1.applied, &delta, 0).unwrap();
        let mut combined = v1;
        combined.extend(delta);
        let scratch = build_graph(&reference(), combined).unwrap();
        assert_graphs_equal(&result.new.graph, &scratch.graph);
        assert_eq!(result.log.epoch, 1);
        assert_eq!(result.log.added_variants, 2);
        assert_eq!(result.log.dropped_variants, 0);
    }

    #[test]
    fn carried_nodes_have_identical_sequences_and_are_monotone() {
        let v1: VariantSet = [Variant::snp(5, Base::A)].into_iter().collect();
        let built1 = build_graph(&reference(), v1).unwrap();
        let delta: VariantSet = [Variant::snp(25, Base::C)].into_iter().collect();
        let result = apply_variants(&reference(), &built1.applied, &delta, 3).unwrap();
        assert_eq!(result.log.parent_epoch, 3);
        assert_eq!(result.log.epoch, 4);
        let mut last: Option<(NodeId, NodeId)> = None;
        for &(old, new) in &result.log.carried {
            assert_eq!(result.old.graph.seq(old), result.new.graph.seq(new));
            if let Some((po, pn)) = last {
                assert!(old > po && new > pn, "carried pairs must be monotone");
            }
            last = Some((old, new));
        }
        // The prefix before the delta's coordinate carries with identity
        // node ids; the suffix carries with shifted ids.
        assert!(!result.log.carried.is_empty());
        assert!(!result.log.fresh.is_empty());
    }

    #[test]
    fn untouched_prefix_keeps_identity_ids() {
        let built1 = build_graph(&reference(), VariantSet::new()).unwrap();
        // Single node graph; a variant at coordinate 16 splits it.
        let delta: VariantSet = [Variant::snp(16, Base::A)].into_iter().collect();
        let result = apply_variants(&reference(), &built1.applied, &delta, 0).unwrap();
        // The old single node is split, so nothing carries: the whole
        // graph is fresh and the touched range covers the full node.
        assert!(result.log.carried.is_empty());
        assert_eq!(result.log.touched, vec![(0, 32)]);
    }

    #[test]
    fn touched_ranges_stay_local_with_dense_breakpoints() {
        let v1: VariantSet = (0..32)
            .step_by(4)
            .map(|p| Variant::snp(p, Base::A))
            .collect();
        let built1 = build_graph(&reference(), v1).unwrap();
        let delta: VariantSet = [Variant::snp(18, Base::C)].into_iter().collect();
        let result = apply_variants(&reference(), &built1.applied, &delta, 0).unwrap();
        // Only the backbone segment containing coordinate 18 (and the new
        // alt node) may be touched; the rest of the graph carries.
        let span: u64 = result.log.touched.iter().map(|&(s, e)| e - s).sum();
        assert!(span <= 8, "touched span {span} should stay local");
        assert!(result.log.carried.len() >= built1.graph.node_count() - 2);
    }

    #[test]
    fn conflicting_delta_variant_is_dropped() {
        let v1: VariantSet = [Variant::deletion(4, 4)].into_iter().collect();
        let built1 = build_graph(&reference(), v1).unwrap();
        let delta: VariantSet = [Variant::snp(5, Base::A)].into_iter().collect();
        let result = apply_variants(&reference(), &built1.applied, &delta, 0).unwrap();
        assert_eq!(result.log.added_variants, 0);
        assert_eq!(result.log.dropped_variants, 1);
        assert_graphs_equal(&result.new.graph, &result.old.graph);
        assert!(result.log.fresh.is_empty() && result.log.dropped.is_empty());
    }

    #[test]
    fn empty_delta_is_identity() {
        let v1: VariantSet = [Variant::snp(3, Base::G)].into_iter().collect();
        let built1 = build_graph(&reference(), v1).unwrap();
        let result = apply_variants(&reference(), &built1.applied, &VariantSet::new(), 7).unwrap();
        assert_eq!(result.log.epoch, 8);
        assert!(result.log.fresh.is_empty());
        assert!(result.log.dropped.is_empty());
        assert!(result.log.touched.is_empty());
        assert_eq!(
            result.log.carried.len(),
            result.old.graph.node_count(),
            "every node carries on an empty delta"
        );
        for &(old, new) in &result.log.carried {
            assert_eq!(old, new, "empty delta must carry with identity ids");
        }
    }

    #[test]
    fn merge_ranges_merges_overlaps_and_adjacency() {
        assert_eq!(
            merge_ranges(vec![(5, 7), (0, 2), (2, 4), (6, 9), (9, 9)]),
            vec![(0, 4), (5, 9)]
        );
    }

    #[test]
    fn ops_cover_fresh_dropped_and_new_edges() {
        let built1 = build_graph(&reference(), VariantSet::new()).unwrap();
        let delta: VariantSet = [Variant::snp(8, Base::A)].into_iter().collect();
        let result = apply_variants(&reference(), &built1.applied, &delta, 0).unwrap();
        let adds = result
            .log
            .ops
            .iter()
            .filter(|op| matches!(op, GraphOp::AddNode { .. }))
            .count();
        let drops = result
            .log
            .ops
            .iter()
            .filter(|op| matches!(op, GraphOp::DropNode { .. }))
            .count();
        let edges = result
            .log
            .ops
            .iter()
            .filter(|op| matches!(op, GraphOp::AddEdge { .. }))
            .count();
        assert_eq!(adds, result.log.fresh.len());
        assert_eq!(drops, result.log.dropped.len());
        assert_eq!(edges, result.new.graph.edge_count());
    }
}
