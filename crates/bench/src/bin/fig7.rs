//! **Figure 7**: effect of the first-level bucket count on the memory
//! footprint of the hash-table-based index (left axis) and the maximum
//! number of minimizers per bucket (right axis).
//!
//! The paper sweeps 2^21..2^28 buckets over the human-genome index and
//! picks 2^24. We sweep a proportionally scaled range over a synthetic
//! genome and additionally extrapolate the footprint formulas to the
//! paper's human-scale minimizer counts.

use segram_bench::{header, write_results, Scale};
use segram_graph::build_graph;
use segram_index::{
    GraphIndex, MinimizerScheme, BUCKET_ENTRY_BYTES, LOCATION_ENTRY_BYTES, MINIMIZER_ENTRY_BYTES,
};
use segram_sim::{generate_reference, simulate_variants, GenomeConfig, VariantConfig};
use segram_testkit::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    bucket_bits: u32,
    total_bytes: u64,
    max_minimizers_per_bucket: usize,
}

#[derive(Serialize)]
struct Fig7 {
    reference_len: usize,
    distinct_minimizers: usize,
    total_locations: usize,
    sweep: Vec<SweepPoint>,
    chosen_bucket_bits: u32,
    human_scale_extrapolation_gb: Vec<(u32, f64)>,
}

fn main() {
    let scale = Scale::from_env();
    let reference = generate_reference(&GenomeConfig::human_like(scale.reference_len, 7));
    let variants = simulate_variants(&reference, &VariantConfig::human_like(8));
    let graph = build_graph(&reference, variants)
        .expect("synthetic inputs")
        .graph;
    let index = GraphIndex::build(&graph, MinimizerScheme::new(10, 15), 20);

    header(&format!(
        "Figure 7: index footprint vs bucket count ({} bp reference, {} distinct minimizers)",
        scale.reference_len,
        index.distinct_minimizers()
    ));
    println!(
        "  {:>11} {:>14} {:>12} {:>26}",
        "buckets", "footprint", "KiB", "max minimizers/bucket"
    );
    let mut sweep = Vec::new();
    // Scaled analog of the paper's 2^21..2^28 sweep.
    for bucket_bits in 8..=20 {
        let fp = index.footprint_with_buckets(bucket_bits);
        println!(
            "  {:>10} {:>13}B {:>12.1} {:>26}",
            format!("2^{bucket_bits}"),
            fp.total_bytes(),
            fp.total_bytes() as f64 / 1024.0,
            fp.max_minimizers_per_bucket
        );
        sweep.push(SweepPoint {
            bucket_bits,
            total_bytes: fp.total_bytes(),
            max_minimizers_per_bucket: fp.max_minimizers_per_bucket,
        });
    }

    // The paper's trade-off: pick the knee where bucket load flattens.
    let chosen = sweep
        .iter()
        .find(|p| p.max_minimizers_per_bucket <= 4)
        .map(|p| p.bucket_bits)
        .unwrap_or(20);
    println!("\n  chosen bucket count: 2^{chosen} (paper chooses 2^24 at human scale)");

    // Extrapolation to human scale using the paper's formulas and the
    // measured minimizer density (distinct minimizers / reference char).
    header("Human-scale extrapolation (3.1 Gbp, paper formulas)");
    let density = index.distinct_minimizers() as f64 / graph.total_chars() as f64;
    let loc_density = index.total_locations() as f64 / graph.total_chars() as f64;
    let human_chars = 3.1e9;
    let human_minimizers = human_chars * density;
    let human_locations = human_chars * loc_density;
    let mut extrapolation = Vec::new();
    println!("  {:>11} {:>14}", "buckets", "footprint GB");
    for bucket_bits in 21..=28u32 {
        let bytes = (1u64 << bucket_bits) as f64 * BUCKET_ENTRY_BYTES as f64
            + human_minimizers * MINIMIZER_ENTRY_BYTES as f64
            + human_locations * LOCATION_ENTRY_BYTES as f64;
        let gb = bytes / 1e9;
        println!("  {:>10} {:>14.2}", format!("2^{bucket_bits}"), gb);
        extrapolation.push((bucket_bits, gb));
    }
    println!("\n  paper: 9.8 GB at 2^24 — the curve above is flat until the");
    println!("  bucket table itself dominates (2^27+), matching Figure 7's shape.");

    write_results(
        "fig7",
        &Fig7 {
            reference_len: scale.reference_len,
            distinct_minimizers: index.distinct_minimizers(),
            total_locations: index.total_locations(),
            sweep,
            chosen_bucket_bits: chosen,
            human_scale_extrapolation_gb: extrapolation,
        },
    );
}
