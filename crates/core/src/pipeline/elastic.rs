//! Elastic shard scheduling: per-shard-group worker pools with routed
//! batches and live imbalance-driven rebalancing.
//!
//! The paper scales by *per-channel provisioning*: each HBM channel owns
//! a slice of the index and a private accelerator pipeline, so requests
//! for a channel's slice never contend with the others (Section 8.3).
//! [`ElasticScheduler`] is the software analogue on top of
//! [`ShardedIndex`](crate::ShardedIndex): it materializes the
//! [`ShardAffinity`] plan as N worker *pools*, each owning a disjoint
//! shard group over the shared `Arc<GenomeGraph>`, each with its own
//! bounded [`WorkQueue`] and [`QueueStats`].
//!
//! ```text
//!                      route by dominant shard group
//!            ┌──────────────────┬──────────────────┐
//!   producer │  pool 0 queue    │  pool 1 queue    │ ... (spill → least
//!   (decode  ▼                  ▼                  ▼      loaded pool)
//!   + route) workers w%P==0    workers w%P==1     ...
//!            └───────┬──────────┴───────┬─────────┘
//!                    ▼ shared reorder buffer ▼   (input-order release)
//!                     └─── writer thread ───┘    → byte-identical output
//! ```
//!
//! * **Pre-route** — the producer decodes each batch, extracts minimizers
//!   once per read ([`ShardRouter::route_hits`]), and tags the batch with
//!   its dominant shard group: a strict majority of the batch's seed hits
//!   routes it to that group's pool; anything that straddles groups (or
//!   hits nothing) *spills* to the pool with the shortest live queue.
//! * **Rebalance** — a [`Rebalancer`] watches the live per-shard seed-hit
//!   counters ([`ShardStats`](crate::ShardStats), the signal behind
//!   [`ShardedIndex::seed_imbalance`](crate::ShardedIndex::seed_imbalance))
//!   and migrates shard ownership between pools at batch boundaries,
//!   reusing the paper's greedy placement
//!   ([`balance_loads`](crate::balance_loads)) with hysteresis (an
//!   imbalance threshold plus a post-migration cooldown) so it cannot
//!   thrash. Migration is safe at any batch boundary because pool
//!   ownership only steers *scheduling*: every read still maps against
//!   the full sharded index.
//! * **Merge** — all pools release through one shared reorder buffer and
//!   one writer thread keyed by producer batch index, so SAM/GAF output
//!   is byte-identical to the monolithic/fanout path whatever the
//!   routing, spilling, or migration history. Cancellation and
//!   panic-isolation semantics match [`MapEngine`]: the first failure
//!   wins, every pool winds down, the payload is re-raised once.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use segram_graph::DnaSeq;
use segram_sim::Strand;

use crate::mapper::ReadMapper;
use crate::pipeline::engine::{
    relock, CloseOnDrop, EngineConfig, EngineReport, FirstFailure, QueueStats, Reorder,
    ShardAffinity, WorkQueue,
};
use crate::pipeline::ReadOutcome;
use crate::shard::{balance_loads, load_imbalance, ShardedIndex};

/// One pool-queue item: the batch's producer index (for the shared
/// reorder buffer) plus its decoded reads with their decode durations.
type PoolBatch<T> = (usize, Vec<(T, Duration)>);

/// Hysteresis knobs of the live [`Rebalancer`].
#[derive(Clone, Copy, Debug)]
pub struct RebalanceConfig {
    /// Minimum max-over-mean imbalance of per-pool loads
    /// ([`load_imbalance`](crate::load_imbalance)) before a migration is
    /// even considered. Below it the current placement is good enough.
    pub threshold: f64,
    /// Observations (batch boundaries) to hold still after a migration —
    /// the hysteresis that keeps alternating proposals from thrashing
    /// shards back and forth.
    pub cooldown: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            threshold: 1.5,
            cooldown: 8,
        }
    }
}

/// Live shard-ownership table with imbalance-driven migration and
/// hysteresis.
///
/// Owns the shard → pool assignment the producer routes by. Each batch
/// boundary feeds it the current per-shard load vector via
/// [`observe`](Self::observe); when the per-pool aggregate imbalance
/// exceeds the threshold (and the cooldown has elapsed), it re-runs the
/// paper's greedy placement ([`balance_loads`](crate::balance_loads)) on
/// the live loads, relabels the proposal to maximize agreement with the
/// current assignment (a relabeled identical partition is *not* a
/// migration), and applies whatever actually moved.
///
/// Because `balance_loads` is deterministic, proposals stabilize as the
/// cumulative load proportions stabilize — so migrations provably stop on
/// a stationary workload, which is the hysteresis property the tests pin.
#[derive(Debug)]
pub struct Rebalancer {
    /// Shard id → owning pool.
    assignment: Vec<usize>,
    pools: usize,
    config: RebalanceConfig,
    observations: u64,
    last_migration: Option<u64>,
    migrations: u64,
}

impl Rebalancer {
    /// Starts from an initial placement (per pool, the shard ids it
    /// owns — e.g. [`ShardAffinity::groups`]).
    ///
    /// # Panics
    ///
    /// Panics when `initial` is empty or does not cover every shard in
    /// `0..shard_count` exactly once.
    pub fn new(initial: &[Vec<usize>], shard_count: usize, config: RebalanceConfig) -> Self {
        assert!(!initial.is_empty(), "at least one pool");
        let mut assignment = vec![usize::MAX; shard_count];
        for (pool, shards) in initial.iter().enumerate() {
            for &shard in shards {
                assert!(
                    assignment[shard] == usize::MAX,
                    "shard {shard} placed twice"
                );
                assignment[shard] = pool;
            }
        }
        assert!(
            assignment.iter().all(|&p| p != usize::MAX),
            "initial placement must cover every shard"
        );
        Self {
            assignment,
            pools: initial.len(),
            config,
            observations: 0,
            last_migration: None,
            migrations: 0,
        }
    }

    /// The pool currently owning `shard`.
    pub fn pool_of(&self, shard: usize) -> usize {
        self.assignment[shard]
    }

    /// Current ownership, per pool (the live counterpart of
    /// [`ShardAffinity::groups`]).
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.pools];
        for (shard, &pool) in self.assignment.iter().enumerate() {
            groups[pool].push(shard);
        }
        groups
    }

    /// Total shards migrated since construction.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Feeds one load observation (per-shard cumulative loads, e.g. live
    /// seed-hit counters) and migrates ownership if the imbalance
    /// warrants it. Returns how many shards changed pools (0 = no
    /// migration: balanced enough, inside the cooldown, or the balanced
    /// proposal already equals the current assignment).
    pub fn observe(&mut self, shard_loads: &[u64]) -> usize {
        assert_eq!(
            shard_loads.len(),
            self.assignment.len(),
            "load vector must cover every shard"
        );
        self.observations += 1;
        if let Some(last) = self.last_migration {
            if self.observations.saturating_sub(last) <= self.config.cooldown {
                return 0;
            }
        }
        let mut pool_loads = vec![0u64; self.pools];
        for (&pool, &load) in self.assignment.iter().zip(shard_loads) {
            pool_loads[pool] += load;
        }
        if load_imbalance(&pool_loads) < self.config.threshold {
            return 0;
        }
        let proposal = balance_loads(shard_loads, self.pools);
        let relabeled = self.relabel(&proposal, shard_loads);
        let moved = relabeled
            .iter()
            .zip(&self.assignment)
            .filter(|(a, b)| a != b)
            .count();
        if moved == 0 {
            return 0;
        }
        self.assignment = relabeled;
        self.migrations += moved as u64;
        self.last_migration = Some(self.observations);
        moved
    }

    /// Maps proposal bins onto current pools by greedy maximum load
    /// overlap, so a proposal that merely permutes bin labels over the
    /// same partition counts as zero migrations.
    fn relabel(&self, proposal: &[Vec<usize>], shard_loads: &[u64]) -> Vec<usize> {
        let pools = self.pools;
        let mut overlap = vec![vec![0u64; pools]; pools];
        for (bin, members) in proposal.iter().enumerate() {
            for &shard in members {
                // `max(1)`: zero-load shards still vote for staying put.
                overlap[bin][self.assignment[shard]] += shard_loads[shard].max(1);
            }
        }
        let mut bin_to_pool = vec![usize::MAX; pools];
        let mut pool_taken = vec![false; pools];
        let mut bin_taken = vec![false; pools];
        for _ in 0..pools {
            let mut best: Option<(u64, usize, usize)> = None;
            for (bin, row) in overlap.iter().enumerate() {
                if bin_taken[bin] {
                    continue;
                }
                for (pool, &weight) in row.iter().enumerate() {
                    if pool_taken[pool] {
                        continue;
                    }
                    // Strict `>` keeps ties on the lowest (bin, pool)
                    // pair — deterministic for reproducible migrations.
                    if best.is_none_or(|(w, _, _)| weight > w) {
                        best = Some((weight, bin, pool));
                    }
                }
            }
            let (_, bin, pool) = best.expect("unmatched bin/pool pair remains");
            bin_to_pool[bin] = pool;
            bin_taken[bin] = true;
            pool_taken[pool] = true;
        }
        let mut assignment = self.assignment.clone();
        for (bin, members) in proposal.iter().enumerate() {
            for &shard in members {
                assignment[shard] = bin_to_pool[bin];
            }
        }
        assignment
    }
}

/// Per-pool slice of an [`ElasticReport`].
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// Shard ids the pool owned when the run finished (post-migration).
    pub shards: Vec<usize>,
    /// Worker threads serving this pool's queue.
    pub workers: usize,
    /// Batches this pool's workers mapped.
    pub batches: u64,
    /// Batches routed here by shard-majority decision.
    pub routed: u64,
    /// Batches that spilled here (straddled groups or hit nothing, sent
    /// to the least-loaded queue).
    pub spilled: u64,
    /// This pool's input-queue depth/wait counters (`producer_*` = the
    /// routing producer blocked on this pool's full queue, `worker_*` =
    /// this pool's workers starved on it).
    pub queue: QueueStats,
}

/// Aggregate of one elastic run: the familiar engine totals plus the
/// pool/route/migration observability.
#[derive(Clone, Debug)]
pub struct ElasticReport {
    /// Engine-level totals (reads, mapped, stats, merged queue counters —
    /// the same shape the fanout engine reports, so output layers treat
    /// both schedules alike).
    pub engine: EngineReport,
    /// Per-pool depth/stall/batch counters.
    pub pools: Vec<PoolReport>,
    /// Batches routed by a strict shard-group majority.
    pub routed: u64,
    /// Batches spilled to the least-loaded pool.
    pub spilled: u64,
    /// Shards migrated between pools by the live rebalancer.
    pub migrations: u64,
}

/// The per-shard-group pool scheduler over a [`ShardedIndex`] — the
/// *elastic* counterpart of [`MapEngine`](crate::MapEngine)'s fanout
/// schedule (`segram map --schedule elastic`).
///
/// # Examples
///
/// ```
/// use segram_core::{
///     ElasticScheduler, EngineConfig, RebalanceConfig, SegramConfig, ShardAffinity, ShardedIndex,
/// };
/// use segram_sim::DatasetConfig;
///
/// let dataset = DatasetConfig::tiny(3).illumina(100);
/// let index = ShardedIndex::build(dataset.graph().clone(), SegramConfig::short_reads(), 2);
/// let affinity = ShardAffinity::pin_workers(&index.shard_loads(), 2);
/// let scheduler = ElasticScheduler::new(&index, EngineConfig::with_threads(2), affinity);
/// let reads: Vec<_> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
/// let (outcomes, report) = scheduler.map_batch(&reads);
/// assert_eq!(outcomes.len(), reads.len());
/// assert_eq!(report.routed + report.spilled, report.engine.batches as u64);
/// ```
#[derive(Debug)]
pub struct ElasticScheduler<'m> {
    index: &'m ShardedIndex,
    config: EngineConfig,
    affinity: ShardAffinity,
    rebalance: RebalanceConfig,
}

impl<'m> ElasticScheduler<'m> {
    /// Binds the scheduler to a sharded index, consuming the affinity
    /// plan as the pools' initial shard placement. Accepts an
    /// [`EngineConfig`] or the shared
    /// [`EngineOptions`](super::EngineOptions) builder.
    pub fn new(
        index: &'m ShardedIndex,
        config: impl Into<EngineConfig>,
        affinity: ShardAffinity,
    ) -> Self {
        Self {
            index,
            config: config.into(),
            affinity,
            rebalance: RebalanceConfig::default(),
        }
    }

    /// Returns a copy with the given rebalancer hysteresis knobs.
    pub fn with_rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = rebalance;
        self
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Maps one read according to the schedule's strand policy (identical
    /// to the fanout engine's, against the full sharded index — pool
    /// routing never restricts which shards answer a read).
    fn map_one(&self, read: &DnaSeq) -> ReadOutcome {
        if self.config.both_strands {
            let (best, stats) = self.index.map_read_both(read);
            let (mapping, strand) = match best {
                Some((mapping, strand)) => (Some(mapping), strand),
                None => (None, Strand::Forward),
            };
            ReadOutcome {
                mapping,
                strand,
                stats,
            }
        } else {
            let (mapping, stats) = self.index.map_read(read);
            ReadOutcome {
                mapping,
                strand: Strand::Forward,
                stats,
            }
        }
    }

    /// Streams *undecoded* items through the pool-routed schedule:
    /// `decode` runs on the producer thread (the router needs the decoded
    /// read to extract minimizers; its time still lands in
    /// [`MapStats::decode`](crate::MapStats)), batches are routed to
    /// per-group pools, and `sink(item, outcome)` runs once per read **in
    /// input order** on a dedicated writer thread.
    ///
    /// Ordering, cancellation, and failure semantics match
    /// [`MapEngine::map_raw_stream`](crate::MapEngine::map_raw_stream):
    /// output bytes are independent of pool count, routing decisions, and
    /// migrations; a cancel winds every pool down promptly; the first
    /// panic anywhere is re-raised once. A decode failure (`decode`
    /// returning `None`) stops the run — since the producer decodes
    /// serially in input order, the first failure it sees *is* the
    /// stream's first malformed record.
    ///
    /// # Panics
    ///
    /// If decode, the mapper, or the sink panics, the run is cancelled
    /// and the **first** panic payload is re-raised from this call once
    /// every thread has wound down.
    pub fn map_raw_stream<Q, T, D, R, F>(
        &self,
        mut raw: impl Iterator<Item = Q>,
        decode: D,
        read_of: R,
        sink: F,
    ) -> ElasticReport
    where
        Q: Send,
        T: Send,
        D: Fn(Q) -> Option<T>,
        R: Fn(&T) -> &DnaSeq + Sync,
        F: FnMut(T, ReadOutcome) + Send,
    {
        let pools = self.affinity.groups().len().max(1);
        // Every pool needs at least one worker; extra workers share pools
        // round-robin exactly as the affinity plan pins them.
        let threads = self.config.threads.max(pools);
        let batch_size = self.config.batch_size.max(1);
        let queue_depth = if self.config.queue_depth == 0 {
            threads * 2
        } else {
            self.config.queue_depth
        };
        let cancel = &self.config.cancel;
        let shard_count = self.index.shards().len();
        let router = self.index.router();
        let mut rebalancer = Rebalancer::new(self.affinity.groups(), shard_count, self.rebalance);

        // One bounded queue per pool; batches carry their producer index
        // (for the shared reorder buffer) and per-item decode durations.
        let queues: Vec<WorkQueue<PoolBatch<T>>> =
            (0..pools).map(|_| WorkQueue::new(queue_depth)).collect();
        let out_queue: WorkQueue<Vec<(T, ReadOutcome)>> = WorkQueue::new(queue_depth);
        let max_ahead = queue_depth + threads;
        let reorder: Mutex<Reorder<T>> = Mutex::new(Reorder {
            next: 0,
            pending: BTreeMap::new(),
            report: EngineReport::default(),
        });
        let released = Condvar::new();
        let failure = FirstFailure::default();
        let mapped_batches = AtomicUsize::new(0);
        let pool_batches: Vec<AtomicU64> = (0..pools).map(|_| AtomicU64::new(0)).collect();
        let park_waits = AtomicU64::new(0);
        let park_wait_ns = AtomicU64::new(0);
        let read_of = &read_of;
        let close_all = |queues: &[WorkQueue<PoolBatch<T>>]| {
            for queue in queues {
                queue.close();
            }
        };

        let mut pool_routed = vec![0u64; pools];
        let mut pool_spilled = vec![0u64; pools];

        std::thread::scope(|scope| {
            let writer_handle = {
                let out_queue = &out_queue;
                let queues = &queues;
                let failure = &failure;
                let released = &released;
                let mut sink = sink;
                scope.spawn(move || {
                    while let Some(batch) = out_queue.pop() {
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            for (item, outcome) in batch {
                                sink(item, outcome);
                            }
                        }));
                        if let Err(payload) = result {
                            failure.record(payload);
                            cancel.cancel();
                            out_queue.close();
                            close_all(queues);
                            released.notify_all();
                            break;
                        }
                    }
                })
            };

            let worker_handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let queue = &queues[worker % pools];
                    let queues = &queues;
                    let out_queue = &out_queue;
                    let reorder = &reorder;
                    let released = &released;
                    let failure = &failure;
                    let mapped_batches = &mapped_batches;
                    let pool_batches = &pool_batches[worker % pools];
                    let park_waits = &park_waits;
                    let park_wait_ns = &park_wait_ns;
                    scope.spawn(move || {
                        // Closing only this worker's pool queue on unwind
                        // keeps sibling pools draining; the explicit
                        // failure path below closes everything.
                        let _close_guard = CloseOnDrop(queue);
                        while let Some((index, items)) = queue.pop() {
                            if cancel.is_cancelled() {
                                // Drain path: producer is stopping; queued
                                // batches are dropped unmapped. Decode
                                // already happened on the producer, so
                                // there is no settle obligation here.
                                continue;
                            }
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                let mut outcomes: Vec<(T, ReadOutcome)> =
                                    Vec::with_capacity(items.len());
                                for (item, decode_time) in items {
                                    if cancel.is_cancelled() {
                                        return false;
                                    }
                                    let mut outcome = self.map_one(read_of(&item));
                                    outcome.stats.decode = decode_time;
                                    outcomes.push((item, outcome));
                                }
                                mapped_batches.fetch_add(1, Ordering::Relaxed);
                                pool_batches.fetch_add(1, Ordering::Relaxed);
                                let mut guard = relock(reorder);
                                // Bounded reorder: same park discipline as
                                // the fanout engine — the worker owning
                                // batch `next` never parks, so release
                                // always advances even across pools.
                                if index >= guard.next + max_ahead {
                                    let blocked = Instant::now();
                                    let mut parked = false;
                                    let record = |since: Instant| {
                                        park_waits.fetch_add(1, Ordering::Relaxed);
                                        park_wait_ns.fetch_add(
                                            since.elapsed().as_nanos() as u64,
                                            Ordering::Relaxed,
                                        );
                                    };
                                    while index >= guard.next + max_ahead {
                                        if cancel.is_cancelled() {
                                            if parked {
                                                record(blocked);
                                            }
                                            return false;
                                        }
                                        parked = true;
                                        guard = released
                                            .wait_timeout(guard, Duration::from_millis(50))
                                            .unwrap_or_else(PoisonError::into_inner)
                                            .0;
                                    }
                                    record(blocked);
                                }
                                let state = &mut *guard;
                                state.pending.insert(index, outcomes);
                                let mut advanced = false;
                                while let Some(ready) = state.pending.remove(&state.next) {
                                    state.next += 1;
                                    advanced = true;
                                    for (_, outcome) in &ready {
                                        state.report.reads += 1;
                                        if outcome.mapping.is_some() {
                                            state.report.mapped += 1;
                                        }
                                        state.report.stats.merge(&outcome.stats);
                                    }
                                    out_queue.push(ready);
                                }
                                drop(guard);
                                if advanced {
                                    released.notify_all();
                                }
                                true
                            }));
                            match result {
                                Ok(true) => {}
                                Ok(false) => continue,
                                Err(payload) => {
                                    failure.record(payload);
                                    cancel.cancel();
                                    close_all(queues);
                                    out_queue.close();
                                    released.notify_all();
                                    break;
                                }
                            }
                        }
                    })
                })
                .collect();

            // The calling thread is the producer: decode (serially, in
            // input order), route, rebalance.
            let _out_close_guard = CloseOnDrop(&out_queue);
            let produce = catch_unwind(AssertUnwindSafe(|| {
                let mut produced = 0usize;
                'produce: loop {
                    if cancel.is_cancelled() {
                        break;
                    }
                    let mut batch: Vec<(T, Duration)> = Vec::with_capacity(batch_size);
                    let mut shard_hits = vec![0u64; shard_count];
                    while batch.len() < batch_size {
                        let Some(raw_item) = raw.next() else { break };
                        let started = Instant::now();
                        let Some(item) = decode(raw_item) else {
                            // The decoder records its own error; producer
                            // decode order makes it the stream's first.
                            cancel.cancel();
                            break 'produce;
                        };
                        let decode_time = started.elapsed();
                        // The pre-route pass: one minimizer extraction per
                        // read, no occupancy counters touched.
                        for (total, hits) in
                            shard_hits.iter_mut().zip(router.route_hits(read_of(&item)))
                        {
                            *total += hits;
                        }
                        batch.push((item, decode_time));
                    }
                    if batch.is_empty() {
                        break;
                    }
                    // Dominant-group routing with a least-loaded spill.
                    let mut pool_hits = vec![0u64; pools];
                    for (shard, &hits) in shard_hits.iter().enumerate() {
                        pool_hits[rebalancer.pool_of(shard)] += hits;
                    }
                    let total: u64 = pool_hits.iter().sum();
                    let (best_pool, best_hits) = pool_hits
                        .iter()
                        .copied()
                        .enumerate()
                        .max_by_key(|&(pool, hits)| (hits, std::cmp::Reverse(pool)))
                        .expect("at least one pool");
                    let target = if total > 0 && 2 * best_hits > total {
                        pool_routed[best_pool] += 1;
                        best_pool
                    } else {
                        let spill = (0..pools)
                            .min_by_key(|&pool| queues[pool].len())
                            .expect("at least one pool");
                        pool_spilled[spill] += 1;
                        spill
                    };
                    queues[target].push((produced, batch));
                    produced += 1;
                    // Rebalance at the batch boundary, off the live
                    // per-shard seed-hit counters the mapping workers are
                    // filling in (the signal behind `seed_imbalance`).
                    let live: Vec<u64> = self
                        .index
                        .shard_stats()
                        .iter()
                        .map(|s| s.seed_hits)
                        .collect();
                    rebalancer.observe(&live);
                }
            }));
            if let Err(payload) = produce {
                failure.record(payload);
                cancel.cancel();
            }
            close_all(&queues);
            for handle in worker_handles {
                if let Err(payload) = handle.join() {
                    failure.record(payload);
                }
            }
            out_queue.close();
            if let Err(payload) = writer_handle.join() {
                failure.record(payload);
            }
        });

        if let Some(payload) = failure.take() {
            resume_unwind(payload);
        }

        let reorder = reorder.into_inner().unwrap_or_else(PoisonError::into_inner);
        let mut engine = reorder.report;
        engine.backend = self.index.backend_name();
        engine.batches = mapped_batches.load(Ordering::Relaxed);
        engine.threads = threads;
        // Engine-level queue view: input counters summed over the pools
        // (depth as the max across them), output/park exactly as the
        // fanout engine reports them.
        let pool_queue_stats: Vec<QueueStats> = queues.iter().map(WorkQueue::stats).collect();
        let output = out_queue.stats();
        let mut merged = QueueStats {
            output_max_depth: output.max_depth,
            output_stall_waits: output.producer_waits,
            output_stall_wait: output.producer_wait,
            writer_waits: output.worker_waits,
            writer_wait: output.worker_wait,
            park_waits: park_waits.load(Ordering::Relaxed),
            park_wait: Duration::from_nanos(park_wait_ns.load(Ordering::Relaxed)),
            ..QueueStats::default()
        };
        for stats in &pool_queue_stats {
            merged.max_depth = merged.max_depth.max(stats.max_depth);
            merged.producer_waits += stats.producer_waits;
            merged.producer_wait += stats.producer_wait;
            merged.worker_waits += stats.worker_waits;
            merged.worker_wait += stats.worker_wait;
        }
        engine.queue = merged;

        let final_groups = rebalancer.groups();
        let pool_reports = (0..pools)
            .map(|pool| PoolReport {
                shards: final_groups[pool].clone(),
                workers: (0..threads).filter(|w| w % pools == pool).count(),
                batches: pool_batches[pool].load(Ordering::Relaxed),
                routed: pool_routed[pool],
                spilled: pool_spilled[pool],
                queue: pool_queue_stats[pool],
            })
            .collect();
        ElasticReport {
            engine,
            pools: pool_reports,
            routed: pool_routed.iter().sum(),
            spilled: pool_spilled.iter().sum(),
            migrations: rebalancer.migrations(),
        }
    }

    /// Streams already-decoded reads through the schedule (the
    /// trivial-decode special case of
    /// [`map_raw_stream`](Self::map_raw_stream)).
    pub fn map_stream<T, R, F>(
        &self,
        reads: impl Iterator<Item = T>,
        read_of: R,
        sink: F,
    ) -> ElasticReport
    where
        T: Send,
        R: Fn(&T) -> &DnaSeq + Sync,
        F: FnMut(T, ReadOutcome) + Send,
    {
        self.map_raw_stream(reads, Some, read_of, sink)
    }

    /// Maps a slice of reads, returning the outcomes in input order plus
    /// the elastic report.
    pub fn map_batch(&self, reads: &[DnaSeq]) -> (Vec<ReadOutcome>, ElasticReport) {
        let mut outcomes = Vec::with_capacity(reads.len());
        let report = self.map_stream(
            reads.iter(),
            |read| *read,
            |_, outcome| outcomes.push(outcome),
        );
        (outcomes, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, MapEngine, SegramConfig, ShardedIndex};
    use segram_sim::DatasetConfig;

    fn sharded(shards: usize) -> (segram_sim::Dataset, ShardedIndex) {
        let dataset = DatasetConfig::tiny(61).illumina(100);
        let index =
            ShardedIndex::build(dataset.graph().clone(), SegramConfig::short_reads(), shards);
        (dataset, index)
    }

    fn scheduler_for(index: &ShardedIndex, threads: usize) -> ElasticScheduler<'_> {
        let affinity = ShardAffinity::pin_workers(&index.shard_loads(), threads);
        let mut config = EngineConfig::with_threads(threads);
        config.batch_size = 3; // interleave batches across pools
        ElasticScheduler::new(index, config, affinity)
    }

    #[test]
    fn elastic_outcomes_match_fanout_across_pool_counts() {
        for shards in [1usize, 2, 4] {
            let (dataset, index) = sharded(shards);
            let reads: Vec<_> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
            let fanout = MapEngine::new(&index, EngineConfig::with_threads(1));
            let (base, base_report) = fanout.map_batch(&reads);
            for threads in [1usize, 4] {
                let scheduler = scheduler_for(&index, threads);
                let (outcomes, report) = scheduler.map_batch(&reads);
                assert_eq!(report.engine.reads, reads.len(), "shards {shards}");
                assert_eq!(report.engine.mapped, base_report.mapped, "shards {shards}");
                for (a, b) in base.iter().zip(&outcomes) {
                    assert_eq!(
                        a.mapping.as_ref().map(|m| m.linear_start),
                        b.mapping.as_ref().map(|m| m.linear_start),
                    );
                    assert_eq!(a.strand, b.strand);
                }
            }
        }
    }

    #[test]
    fn every_batch_is_either_routed_or_spilled() {
        let (dataset, index) = sharded(4);
        let reads: Vec<_> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let scheduler = scheduler_for(&index, 4);
        let (_, report) = scheduler.map_batch(&reads);
        assert_eq!(report.pools.len(), 4);
        assert_eq!(
            report.routed + report.spilled,
            report.engine.batches as u64,
            "{report:?}"
        );
        let per_pool: u64 = report.pools.iter().map(|p| p.batches).sum();
        assert_eq!(per_pool, report.engine.batches as u64);
        // The final ownership is still a partition of the shards.
        let mut owned: Vec<usize> = report
            .pools
            .iter()
            .flat_map(|p| p.shards.iter().copied())
            .collect();
        owned.sort_unstable();
        assert_eq!(owned, (0..4).collect::<Vec<_>>());
        // Every pool got at least one worker.
        assert!(report.pools.iter().all(|p| p.workers >= 1));
    }

    #[test]
    fn rebalancer_migrates_on_skewed_loads() {
        // Initial placement from (roughly equal) memory loads: pools own
        // {0, 1} and {2, 3} in some order. Then the observed seeding load
        // is extremely skewed onto shard 0, so the balanced proposal
        // isolates shard 0 — at least one shard must migrate.
        let initial = balance_loads(&[100, 100, 100, 100], 2);
        let mut rebalancer = Rebalancer::new(
            &initial,
            4,
            RebalanceConfig {
                threshold: 1.5,
                cooldown: 2,
            },
        );
        let skewed = [10_000u64, 10, 10, 10];
        let mut migrated = 0;
        for _ in 0..16 {
            migrated += rebalancer.observe(&skewed);
        }
        assert!(migrated > 0, "skewed load must trigger a migration");
        assert!(rebalancer.migrations() >= migrated as u64);
        // Shard 0 ends up alone in its pool; the rest share the other.
        let heavy = rebalancer.pool_of(0);
        for shard in 1..4 {
            assert_ne!(rebalancer.pool_of(shard), heavy, "{rebalancer:?}");
        }
    }

    #[test]
    fn rebalancer_hysteresis_stops_migrations_on_stationary_load() {
        let initial = balance_loads(&[100, 100, 100, 100], 2);
        let mut rebalancer = Rebalancer::new(
            &initial,
            4,
            RebalanceConfig {
                threshold: 1.5,
                cooldown: 2,
            },
        );
        // Stationary skew: cumulative proportions never change, so after
        // the placement adapts once, proposals keep matching the current
        // assignment and migrations stop.
        let mut hits = [4_000u64, 4, 4, 4];
        let mut history = Vec::new();
        for _ in 0..32 {
            history.push(rebalancer.observe(&hits));
            for h in &mut hits {
                *h *= 2; // same proportions, growing totals
            }
        }
        assert!(
            history.iter().sum::<usize>() > 0,
            "must adapt at least once"
        );
        assert!(
            history[history.len() - 16..].iter().all(|&m| m == 0),
            "migrations must stop once the placement matches the load: {history:?}"
        );
    }

    #[test]
    fn rebalancer_holds_still_below_threshold_and_during_cooldown() {
        let initial = balance_loads(&[100, 100, 100, 100], 2);
        let mut rebalancer = Rebalancer::new(
            &initial,
            4,
            RebalanceConfig {
                threshold: 1.5,
                cooldown: 8,
            },
        );
        // Balanced loads: imbalance 1.0 < 1.5, never migrates.
        for _ in 0..16 {
            assert_eq!(rebalancer.observe(&[50, 50, 50, 50]), 0);
        }
        assert_eq!(rebalancer.migrations(), 0);
        // All-zero loads degenerate to imbalance 1.0 — also a no-op.
        assert_eq!(rebalancer.observe(&[0, 0, 0, 0]), 0);
        // A migration starts the cooldown: the immediately following
        // observations cannot migrate again, however skewed.
        let first = rebalancer.observe(&[10_000, 10, 10, 10]);
        assert!(first > 0);
        for _ in 0..8 {
            assert_eq!(
                rebalancer.observe(&[10, 10, 10, 10_000]),
                0,
                "cooldown must suppress immediate re-migration"
            );
        }
    }

    #[test]
    fn elastic_cancellation_winds_all_pools_down() {
        let (dataset, index) = sharded(2);
        let reads: Vec<_> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let cancel = crate::CancelToken::new();
        let affinity = ShardAffinity::pin_workers(&index.shard_loads(), 2);
        let mut config = EngineConfig::with_threads(2).with_cancel(cancel.clone());
        config.batch_size = 1;
        let scheduler = ElasticScheduler::new(&index, config, affinity);
        let mut sunk = 0usize;
        let report = scheduler.map_stream(
            reads.iter(),
            |read| *read,
            |_, _| {
                sunk += 1;
                cancel.cancel();
            },
        );
        assert!(sunk >= 1);
        assert!(
            report.engine.reads <= reads.len(),
            "cancelled run must not over-report: {report:?}"
        );
    }

    #[test]
    fn elastic_sink_panic_surfaces_original_payload() {
        let (dataset, index) = sharded(2);
        let reads: Vec<_> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let scheduler = scheduler_for(&index, 2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scheduler.map_stream(reads.iter(), |r| *r, |_, _| panic!("elastic sink exploded"));
        }));
        let payload = result.expect_err("sink panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic payload is the original message");
        assert!(message.contains("elastic sink exploded"), "{message:?}");
    }

    #[test]
    fn elastic_decode_failure_cancels_the_run() {
        let (dataset, index) = sharded(2);
        let reads: Vec<_> = dataset
            .reads
            .iter()
            .map(|r| r.seq.clone())
            .collect::<Vec<_>>();
        let cancel = crate::CancelToken::new();
        let affinity = ShardAffinity::pin_workers(&index.shard_loads(), 2);
        let mut config = EngineConfig::with_threads(2).with_cancel(cancel.clone());
        config.batch_size = 2;
        let scheduler = ElasticScheduler::new(&index, config, affinity);
        let failures = AtomicUsize::new(0);
        let report = scheduler.map_raw_stream(
            reads.iter().enumerate(),
            |(i, read)| {
                if i == 5 {
                    failures.fetch_add(1, Ordering::Relaxed);
                    None
                } else {
                    Some(read)
                }
            },
            |read| *read,
            |_, _| {},
        );
        assert_eq!(failures.load(Ordering::Relaxed), 1);
        assert!(cancel.is_cancelled());
        assert!(report.engine.reads <= 5, "{:?}", report.engine);
    }
}
