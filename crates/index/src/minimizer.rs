//! `<w,k>`-minimizer extraction (Section 6 of the paper).
//!
//! A `<w,k>`-minimizer is the smallest k-mer in a window of `w` consecutive
//! k-mers, under a configurable ordering. Using minimizers instead of all
//! k-mers shrinks the index by a factor of `2/(w+1)` and guarantees that
//! two sequences sharing an exact match of at least `w + k - 1` bases share
//! a minimizer.
//!
//! The single-loop extraction below is the paper's `O(m)` algorithm
//! ("we can eliminate the inner loop by caching the previous minimum
//! k-mers within the current window"), implemented with a monotonic deque.

use std::collections::VecDeque;

use segram_graph::{Base, DnaSeq};

/// How k-mers are ranked when picking window minima.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KmerOrdering {
    /// Invertible 64-bit mix of the 2-bit packed k-mer (minimap2-style).
    /// Spreads minimizers uniformly; the production setting.
    #[default]
    Hash,
    /// Plain lexicographic order of the packed k-mer — the ordering used in
    /// the paper's Figure 8 example.
    Lexicographic,
}

/// Parameters of the minimizer scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinimizerScheme {
    /// Window size `w` (in k-mers).
    pub w: usize,
    /// K-mer length `k` (max 31 with 2-bit packing in a u64).
    pub k: usize,
    /// Ranking function.
    pub ordering: KmerOrdering,
}

impl MinimizerScheme {
    /// Creates a scheme with the default (hash) ordering.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`, `k > 31`, or `w == 0`.
    pub fn new(w: usize, k: usize) -> Self {
        assert!(k > 0 && k <= 31, "k must be in 1..=31");
        assert!(w > 0, "w must be positive");
        Self {
            w,
            k,
            ordering: KmerOrdering::Hash,
        }
    }

    /// Same, with lexicographic ranking (Figure 8 semantics).
    pub fn lexicographic(w: usize, k: usize) -> Self {
        Self {
            ordering: KmerOrdering::Lexicographic,
            ..Self::new(w, k)
        }
    }

    /// Span of bases covered by one full window (`w + k - 1`).
    pub fn window_span(&self) -> usize {
        self.w + self.k - 1
    }

    /// Ranks a packed k-mer according to the scheme's ordering.
    #[inline]
    pub fn rank(&self, packed: u64) -> u64 {
        match self.ordering {
            KmerOrdering::Hash => hash64(packed, kmer_mask(self.k)),
            KmerOrdering::Lexicographic => packed,
        }
    }
}

/// A selected minimizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Minimizer {
    /// Rank value under the scheme's ordering (hash value for the index).
    pub rank: u64,
    /// 2-bit packed k-mer.
    pub packed: u64,
    /// Start offset of the k-mer within the source sequence.
    pub pos: u32,
}

impl Minimizer {
    /// End offset (exclusive) of the k-mer within the source sequence.
    pub fn end(&self, k: usize) -> u32 {
        self.pos + k as u32
    }
}

/// Bitmask selecting the low `2k` bits of a packed k-mer.
#[inline]
pub fn kmer_mask(k: usize) -> u64 {
    if k >= 32 {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    }
}

/// The invertible hash of minimap2 (`hash64`), confining the result to the
/// packed-k-mer domain via `mask`.
#[inline]
pub fn hash64(key: u64, mask: u64) -> u64 {
    let mut key = key & mask;
    key = (!key).wrapping_add(key << 21) & mask;
    key ^= key >> 24;
    key = (key.wrapping_add(key << 3)).wrapping_add(key << 8) & mask;
    key ^= key >> 14;
    key = (key.wrapping_add(key << 2)).wrapping_add(key << 4) & mask;
    key ^= key >> 28;
    key = key.wrapping_add(key << 31) & mask;
    key
}

/// Packs `k` bases into the low `2k` bits of a u64 (first base in the
/// highest bit pair, so lexicographic order equals integer order).
pub fn pack_kmer(bases: &[Base]) -> u64 {
    debug_assert!(bases.len() <= 31);
    bases
        .iter()
        .fold(0u64, |acc, &b| (acc << 2) | b.code() as u64)
}

/// Extracts the `<w,k>`-minimizers of `seq` in `O(len)` time.
///
/// Consecutive duplicate selections (the same k-mer occurrence winning
/// several windows) are reported once, as in minimap2's `mm_sketch`.
/// Sequences shorter than `k` yield nothing; sequences shorter than one
/// full window still yield the overall minimum.
///
/// # Examples
///
/// ```
/// use segram_index::{extract_minimizers, MinimizerScheme};
///
/// // Figure 8: the <5,3>-minimizer of AGTAGCA's first window is AGC.
/// let seq = "AGTAGCA".parse()?;
/// let scheme = MinimizerScheme::lexicographic(5, 3);
/// let ms = extract_minimizers(&seq, &scheme);
/// assert_eq!(ms.len(), 1);
/// assert_eq!(ms[0].pos, 3); // AGC starts at offset 3
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
pub fn extract_minimizers(seq: &DnaSeq, scheme: &MinimizerScheme) -> Vec<Minimizer> {
    extract_minimizers_from(seq.as_slice(), scheme)
}

/// Slice-based variant of [`extract_minimizers`].
pub fn extract_minimizers_from(bases: &[Base], scheme: &MinimizerScheme) -> Vec<Minimizer> {
    let (w, k) = (scheme.w, scheme.k);
    let len = bases.len();
    if len < k {
        return Vec::new();
    }
    let n_kmers = len - k + 1;
    let mask = kmer_mask(k);
    let mut out: Vec<Minimizer> = Vec::new();
    // Monotonic deque of (rank, kmer index) candidates.
    let mut deque: VecDeque<(u64, usize, u64)> = VecDeque::new();
    let mut packed = 0u64;
    for (i, &b) in bases.iter().enumerate() {
        packed = ((packed << 2) | b.code() as u64) & mask;
        if i + 1 < k {
            continue;
        }
        let kmer_idx = i + 1 - k;
        let rank = scheme.rank(packed);
        // Pop dominated candidates (strictly larger rank; ties keep the
        // earlier occurrence, matching "smallest, leftmost" selection).
        while deque.back().is_some_and(|&(r, _, _)| r > rank) {
            deque.pop_back();
        }
        deque.push_back((rank, kmer_idx, packed));
        // Window of the last w k-mers: [kmer_idx + 1 - w, kmer_idx].
        let window_start = kmer_idx as isize + 1 - w as isize;
        while deque
            .front()
            .is_some_and(|&(_, idx, _)| (idx as isize) < window_start)
        {
            deque.pop_front();
        }
        // Report once a full window exists (or at the very end for short
        // sequences).
        let full_window = kmer_idx + 1 >= w;
        let last = kmer_idx + 1 == n_kmers;
        if full_window || last {
            let &(rank, idx, kmer) = deque.front().expect("deque non-empty");
            let candidate = Minimizer {
                rank,
                packed: kmer,
                pos: idx as u32,
            };
            if out.last() != Some(&candidate) {
                out.push(candidate);
            }
        }
    }
    out
}

/// Expected index-size reduction factor of minimizers vs all k-mers
/// (`2 / (w + 1)`, Section 6).
pub fn density(w: usize) -> f64 {
    2.0 / (w as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    /// Brute-force reference: minimum of every window, deduplicated by
    /// occurrence.
    fn brute_force(bases: &[Base], scheme: &MinimizerScheme) -> Vec<Minimizer> {
        let (w, k) = (scheme.w, scheme.k);
        if bases.len() < k {
            return Vec::new();
        }
        let kmers: Vec<(u64, u64)> = bases
            .windows(k)
            .map(|win| {
                let packed = pack_kmer(win);
                (scheme.rank(packed), packed)
            })
            .collect();
        let mut out: Vec<Minimizer> = Vec::new();
        let n = kmers.len();
        let windows = if n >= w { n - w + 1 } else { 1 };
        for start in 0..windows {
            let end = (start + w).min(n);
            let (idx, &(rank, packed)) = kmers[start..end]
                .iter()
                .enumerate()
                .min_by_key(|&(i, &(r, _))| (r, i))
                .map(|(i, v)| (start + i, v))
                .unwrap();
            let candidate = Minimizer {
                rank,
                packed,
                pos: idx as u32,
            };
            if out.last() != Some(&candidate) {
                out.push(candidate);
            }
        }
        out
    }

    #[test]
    fn figure8_example() {
        // Sequence AGTAGCA, k=3, w=5: k-mers AGT GTA TAG AGC GCA;
        // lexicographically smallest is AGC at position 3 (0-based).
        let ms = extract_minimizers(&seq("AGTAGCA"), &MinimizerScheme::lexicographic(5, 3));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].pos, 3);
        assert_eq!(ms[0].packed, pack_kmer(seq("AGC").as_slice()));
    }

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        let cases = [
            ("ACGTACGTTGCAGTACCGGTAATA", 5, 4),
            ("AAAAAAAAAAAA", 3, 3),
            ("ACGT", 4, 2),
            ("TGCATGCAGTAGCTAGCATCGATCGTACGATC", 8, 5),
            ("AC", 3, 3), // shorter than k: empty
        ];
        for (s, w, k) in cases {
            for scheme in [
                MinimizerScheme::new(w, k),
                MinimizerScheme::lexicographic(w, k),
            ] {
                let fast = extract_minimizers(&seq(s), &scheme);
                let slow = brute_force(seq(s).as_slice(), &scheme);
                assert_eq!(fast, slow, "seq {s} w {w} k {k} {:?}", scheme.ordering);
            }
        }
    }

    #[test]
    fn shared_substring_shares_a_minimizer() {
        // Section 6: two sequences sharing >= w+k-1 bases share a minimizer.
        let scheme = MinimizerScheme::new(5, 4);
        let shared = "ACGGTTACCATG"; // 12 >= 5+4-1 = 8
        let a = format!("TTTTT{shared}AAAA");
        let b = format!("CCG{shared}TGCATG");
        let ma: std::collections::HashSet<u64> = extract_minimizers(&seq(&a), &scheme)
            .iter()
            .map(|m| m.packed)
            .collect();
        let mb: std::collections::HashSet<u64> = extract_minimizers(&seq(&b), &scheme)
            .iter()
            .map(|m| m.packed)
            .collect();
        assert!(!ma.is_disjoint(&mb));
    }

    #[test]
    fn density_reduction_holds_statistically() {
        // Pseudo-random sequence; selected fraction ~ 2/(w+1).
        let mut state = 0xdeadbeefu64;
        let bases: Vec<Base> = (0..20_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                Base::from_code_masked((state >> 33) as u8)
            })
            .collect();
        let w = 9;
        let scheme = MinimizerScheme::new(w, 15);
        let ms = extract_minimizers_from(&bases, &scheme);
        let measured = ms.len() as f64 / (bases.len() - 14) as f64;
        let expected = density(w);
        assert!(
            (measured - expected).abs() < expected * 0.25,
            "measured {measured}, expected {expected}"
        );
    }

    #[test]
    fn positions_are_within_sequence() {
        let s = seq("ACGTTGCAGTACCGGTA");
        let scheme = MinimizerScheme::new(4, 5);
        for m in extract_minimizers(&s, &scheme) {
            assert!((m.end(scheme.k) as usize) <= s.len());
        }
    }

    #[test]
    fn pack_kmer_is_lexicographic() {
        assert!(pack_kmer(seq("AAC").as_slice()) < pack_kmer(seq("AAG").as_slice()));
        assert!(pack_kmer(seq("ACA").as_slice()) < pack_kmer(seq("CAA").as_slice()));
    }

    #[test]
    fn hash64_is_invertible_domain_preserving() {
        let mask = kmer_mask(11);
        let mut seen = std::collections::HashSet::new();
        for key in 0..4096u64 {
            let h = hash64(key, mask);
            assert!(h <= mask);
            assert!(seen.insert(h), "collision for {key}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn oversized_k_rejected() {
        MinimizerScheme::new(5, 32);
    }
}
