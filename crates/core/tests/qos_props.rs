//! Property test for the QoS scheduler of [`MultiEngine`]: whatever mix
//! of bulk requests is queued ahead of it, an interactive request's batch
//! is never picked behind more than `max_ahead = queue_depth + threads`
//! lower-priority batches. A single worker makes the pick order directly
//! observable through a recording mapper, and a gate keeps the queue
//! stacked until the whole scenario is in place — no timing assumptions.

use segram_core::{MapStats, Mapping, MultiConfig, MultiEngine, Priority, ReadMapper};
use segram_graph::{DnaSeq, GenomeGraph};
use segram_sim::{DatasetConfig, Strand};
use segram_testkit::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Logs every read it maps (the pick order), and blocks inside the first
/// pick until the gate opens so tests can stack the queue deterministically.
struct RecordingMapper {
    graph: GenomeGraph,
    gate: Arc<AtomicBool>,
    log: Arc<Mutex<Vec<DnaSeq>>>,
}

impl ReadMapper for RecordingMapper {
    fn graph(&self) -> &GenomeGraph {
        &self.graph
    }
    fn map_read(&self, read: &DnaSeq) -> (Option<Mapping>, MapStats) {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(read.clone());
        let start = Instant::now();
        while !self.gate.load(Ordering::SeqCst) && start.elapsed() < Duration::from_secs(10) {
            std::thread::yield_now();
        }
        (None, MapStats::default())
    }
    fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, Strand)>, MapStats) {
        let (_, stats) = self.map_read(read);
        (None, stats)
    }
}

fn seq_of(read: &DnaSeq) -> &DnaSeq {
    read
}

proptest! {
    #[test]
    fn interactive_batches_are_never_starved_past_max_ahead(
        seed in 0u64..5_000,
        bulk_requests in 1usize..4,
        bulk_batches in 1usize..7,
        queue_depth in prop::sample::select(vec![2usize, 4, 8]),
    ) {
        let threads = 1usize;
        let max_ahead = queue_depth + threads;
        // Distinct reads mark which request a pick belonged to.
        let mut config = DatasetConfig::tiny(seed);
        config.read_count = bulk_requests + 2;
        let dataset = config.illumina(100);
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let filler_read = reads[0].clone();
        let fast_read = reads[1].clone();

        let gate = Arc::new(AtomicBool::new(false));
        let log = Arc::new(Mutex::new(Vec::new()));
        let engine = MultiEngine::new(
            Arc::new(RecordingMapper {
                graph: dataset.graph().clone(),
                gate: Arc::clone(&gate),
                log: Arc::clone(&log),
            }),
            seq_of,
            MultiConfig {
                threads,
                queue_depth,
                max_queued: 0,
                both_strands: false,
            },
        );

        // Park the lone worker inside a filler batch, then stack bulk
        // batches behind it, then enqueue the interactive batch last.
        let mut filler = engine.open().expect("admission");
        prop_assert!(filler.push(vec![filler_read.clone()]));
        let wait = Instant::now();
        while log.lock().unwrap_or_else(PoisonError::into_inner).is_empty()
            && wait.elapsed() < Duration::from_secs(10)
        {
            std::thread::yield_now();
        }
        let mut bulk: Vec<_> = (0..bulk_requests)
            .map(|i| {
                let mut request = engine
                    .open_with(Priority::Bulk, None)
                    .expect("admission");
                // Capped at the per-request queue depth so pushes cannot
                // block while the worker is parked.
                for _ in 0..bulk_batches.min(queue_depth) {
                    assert!(request.push(vec![reads[i + 2].clone()]));
                }
                request
            })
            .collect();
        let mut fast = engine
            .open_with(Priority::Interactive, None)
            .expect("admission");
        prop_assert!(fast.push(vec![fast_read.clone()]));
        gate.store(true, Ordering::SeqCst);

        filler.finish_input();
        fast.finish_input();
        for request in &mut bulk {
            request.finish_input();
        }
        while fast.next_output().is_some() {}
        while filler.next_output().is_some() {}
        for request in &mut bulk {
            while request.next_output().is_some() {}
        }
        filler.finish().expect("no panic");
        fast.finish().expect("no panic");
        for request in bulk {
            request.finish().expect("no panic");
        }

        let order = log.lock().unwrap_or_else(PoisonError::into_inner).clone();
        let fast_at = order
            .iter()
            .position(|r| *r == fast_read)
            .expect("interactive read was mapped");
        // Picks after the interactive batch was enqueued but before it was
        // picked: everything in the log past the parked filler batch.
        let overtaken = fast_at.saturating_sub(1);
        prop_assert!(
            overtaken <= max_ahead,
            "interactive batch picked behind {} lower-priority batches \
             (max_ahead = {}), pick order {:?}",
            overtaken,
            max_ahead,
            order
        );
        engine.shutdown();
    }
}
