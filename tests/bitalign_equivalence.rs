//! Property tests for the core algorithmic claim of the reproduction:
//! BitAlign (Algorithm 1) computes exactly the semi-global sequence-to-
//! graph edit distance that the DP formulation defines, on arbitrary
//! variation graphs — and reduces to classical sequence-to-sequence
//! algorithms (Myers, semi-global NW) on linear references.

use segram_align::{
    bitalign, graph_dp_distance, myers_distance, semiglobal_distance, windowed_bitalign,
    BitAlignConfig, BitAligner, StartMode, WindowConfig,
};
use segram_graph::{build_graph, Base, DnaSeq, GenomeGraph, LinearizedGraph, Variant, VariantSet};
use segram_testkit::prelude::*;

fn arb_seq(min: usize, max: usize) -> impl Strategy<Value = DnaSeq> {
    prop::collection::vec(0u8..4, min..=max)
        .prop_map(|codes| codes.into_iter().map(Base::from_code_masked).collect())
}

/// A random variation graph built from a random reference + random variants.
fn arb_graph() -> impl Strategy<Value = GenomeGraph> {
    (
        arb_seq(20, 80),
        prop::collection::vec((0u64..70, 0u8..4), 0..6),
    )
        .prop_map(|(reference, raw_variants)| {
            let len = reference.len() as u64;
            let variants: VariantSet = raw_variants
                .into_iter()
                .filter(|&(pos, _)| pos + 4 < len)
                .map(|(pos, kind)| match kind {
                    0 => Variant::snp(pos, reference[pos as usize].complement()),
                    1 => Variant::insertion(pos, "GT".parse().unwrap()),
                    2 => Variant::deletion(pos, 2),
                    _ => Variant::replacement(pos, 3, "A".parse().unwrap()),
                })
                .collect();
            build_graph(&reference, variants)
                .expect("valid variants")
                .graph
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On any DAG, BitAlign's distance equals the exact DP distance.
    #[test]
    fn bitalign_matches_graph_dp(graph in arb_graph(), pattern in arb_seq(3, 30)) {
        let lin = LinearizedGraph::extract(&graph, 0, graph.total_chars()).unwrap();
        let (dp, _) = graph_dp_distance(&lin, &pattern, StartMode::Free).unwrap();
        let ba = bitalign(&lin, &pattern, pattern.len() as u32).unwrap();
        prop_assert_eq!(ba.edit_distance, dp);
    }

    /// The bit-level invariant: bit l-1 of R[i][d] is 0 iff E[i][l] <= d.
    #[test]
    fn status_bitvectors_encode_dp_cells(
        graph in arb_graph(),
        pattern in arb_seq(3, 12),
        d in 0u32..4,
    ) {
        let lin = LinearizedGraph::extract(&graph, 0, graph.total_chars()).unwrap();
        let mut aligner = BitAligner::new(
            &lin,
            &pattern,
            BitAlignConfig { k: d, ..BitAlignConfig::default() },
        ).unwrap();
        aligner.compute();
        let m = pattern.len();
        // Exact DP for every anchored start.
        for i in 0..lin.len().min(20) {
            let (anchored, _) =
                graph_dp_distance(&lin, &pattern, StartMode::Anchored(i)).unwrap();
            let bit = aligner
                .status_bitvector(i, d.min(m as u32) as usize)
                .unwrap()
                .bit(m - 1);
            // bit == 0 (match state) iff anchored distance <= d
            prop_assert_eq!(!bit, anchored <= d.min(m as u32), "i={}, d={}", i, d);
        }
    }

    /// On a linear reference, BitAlign == Myers == semi-global DP.
    #[test]
    fn linear_case_matches_classical_aligners(
        text in arb_seq(10, 120),
        pattern in arb_seq(2, 40),
    ) {
        let lin = LinearizedGraph::from_linear_seq(&text);
        let ba = bitalign(&lin, &pattern, pattern.len() as u32).unwrap();
        let myers = myers_distance(text.as_slice(), pattern.as_slice()).unwrap();
        let nw = semiglobal_distance(text.as_slice(), pattern.as_slice()).unwrap();
        prop_assert_eq!(ba.edit_distance, myers);
        prop_assert_eq!(ba.edit_distance, nw);
    }

    /// The traceback CIGAR replays the read against the chosen path, costs
    /// exactly the reported distance, and walks only real edges.
    #[test]
    fn traceback_is_sound(graph in arb_graph(), pattern in arb_seq(3, 30)) {
        let lin = LinearizedGraph::extract(&graph, 0, graph.total_chars()).unwrap();
        let a = bitalign(&lin, &pattern, pattern.len() as u32).unwrap();
        prop_assert_eq!(a.cigar.edit_count(), a.edit_distance);
        prop_assert_eq!(a.cigar.read_len() as usize, pattern.len());
        let fragment = a.ref_fragment(&lin);
        prop_assert!(a.cigar.replay(&fragment, pattern.as_slice()).is_some());
        for pair in a.path.windows(2) {
            prop_assert!(lin.successors(pair[0] as usize).contains(&pair[1]));
        }
    }

    /// Windowed BitAlign never reports less than the exact distance, and is
    /// exact for reads with sparse errors.
    #[test]
    fn windowed_upper_bounds_exact(text in arb_seq(300, 500), start in 0usize..100) {
        let lin = LinearizedGraph::from_linear_seq(&text);
        let end = (start + 250).min(text.len());
        let pattern = text.slice(start, end);
        let (exact, _) = graph_dp_distance(&lin, &pattern, StartMode::Free).unwrap();
        prop_assert_eq!(exact, 0); // substring: exact distance is 0
        let a = windowed_bitalign(&lin, &pattern, WindowConfig::bitalign(), StartMode::Free)
            .unwrap();
        prop_assert_eq!(a.edit_distance, 0);
    }

    /// Anchored-mode distances are never smaller than free-start distances.
    #[test]
    fn anchoring_cannot_improve(graph in arb_graph(), pattern in arb_seq(3, 20)) {
        let lin = LinearizedGraph::extract(&graph, 0, graph.total_chars()).unwrap();
        let (free, _) = graph_dp_distance(&lin, &pattern, StartMode::Free).unwrap();
        for anchor in [0usize, lin.len() / 2, lin.len() - 1] {
            let (anchored, _) =
                graph_dp_distance(&lin, &pattern, StartMode::Anchored(anchor)).unwrap();
            prop_assert!(anchored >= free);
        }
    }

    /// Hop-limiting a linearization can only increase the distance (it
    /// removes paths), and with a generous limit it changes nothing.
    #[test]
    fn hop_limit_monotonicity(graph in arb_graph(), pattern in arb_seq(3, 20)) {
        let lin = LinearizedGraph::extract(&graph, 0, graph.total_chars()).unwrap();
        let (full, _) = graph_dp_distance(&lin, &pattern, StartMode::Free).unwrap();
        let (generous, dropped) = lin.with_hop_limit(lin.len() as u32);
        prop_assert_eq!(dropped, 0);
        let (g, _) = graph_dp_distance(&generous, &pattern, StartMode::Free).unwrap();
        prop_assert_eq!(g, full);
        let (tight, _) = lin.with_hop_limit(2);
        let (t, _) = graph_dp_distance(&tight, &pattern, StartMode::Free).unwrap();
        prop_assert!(t >= full);
    }
}

/// Deterministic regression: the paper's Figure 1 graph aligns all four of
/// its represented sequences with zero edits.
#[test]
fn figure1_sequences_align_exactly() {
    let built = build_graph(
        &"ACGTACGT".parse().unwrap(),
        [
            Variant::snp(3, Base::G),
            Variant::insertion(3, "T".parse().unwrap()),
            Variant::deletion(3, 1),
        ]
        .into_iter()
        .collect(),
    )
    .unwrap();
    let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars()).unwrap();
    for seq in ["ACGTACGT", "ACGGACGT", "ACGTTACGT", "ACGACGT"] {
        let a = bitalign(&lin, &seq.parse().unwrap(), 2).unwrap();
        assert_eq!(a.edit_distance, 0, "sequence {seq}");
    }
}
