//! A minimal JSON document model and serializer replacing `serde` +
//! `serde_json` for the experiment binaries: structs opt in with
//! `#[derive(Serialize)]` (from `segram-testkit-derive`) and are written
//! with [`to_string_pretty`], matching `serde_json`'s pretty format
//! (2-space indent) closely enough for downstream tooling.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, pre-formatted (keeps integers free of decimal points).
    Number(String),
    /// A string (unescaped; escaping happens at write time).
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys (declaration order for
    /// derived structs).
    Object(Vec<(String, Json)>),
}

/// Serialization errors. The built-in impls are total, so this currently
/// never occurs; the `Result` return keeps call sites source-compatible
/// with `serde_json`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Json`] value.
///
/// Implement by hand or with `#[derive(Serialize)]`.
pub trait Serialize {
    /// Converts to a JSON document value.
    fn to_json(&self) -> Json;
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (2-space indent), like
/// `serde_json::to_string_pretty`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), Some(0), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Json, pretty: Option<usize>, _depth: usize, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Number(n) => out.push_str(n),
        Json::String(s) => write_escaped(s, out),
        Json::Array(items) => write_seq(items.iter(), pretty, out, ('[', ']'), |item, p, o| {
            write_value(item, p, 0, o)
        }),
        Json::Object(fields) => write_seq(
            fields.iter(),
            pretty,
            out,
            ('{', '}'),
            |(key, val), p, o| {
                write_escaped(key, o);
                o.push(':');
                if p.is_some() {
                    o.push(' ');
                }
                write_value(val, p, 0, o);
            },
        ),
    }
}

fn write_seq<I, T>(
    items: I,
    pretty: Option<usize>,
    out: &mut String,
    brackets: (char, char),
    mut write_item: impl FnMut(T, Option<usize>, &mut String),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(brackets.0);
    let len = items.len();
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    let inner = pretty.map(|i| i + 1);
    for (i, item) in items.enumerate() {
        if let Some(indent) = inner {
            out.push('\n');
            out.extend(std::iter::repeat_n("  ", indent));
        }
        write_item(item, inner, out);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(indent) = pretty {
        out.push('\n');
        out.extend(std::iter::repeat_n("  ", indent));
    }
    out.push(brackets.1);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Serialize impls for the types the workspace serializes -------------

macro_rules! serialize_display_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Number(self.to_string())
            }
        }
    )*}
}
serialize_display_number!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                if self.is_finite() {
                    // `{:?}` keeps a trailing `.0` on integral floats, the
                    // same shape serde_json emits for f64.
                    Json::Number(format!("{self:?}"))
                } else {
                    // JSON has no NaN/inf; serde_json errors, we degrade
                    // to null (experiment outputs should never hit this).
                    Json::Null
                }
            }
        }
    )*}
}
serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    )*}
}
serialize_tuple!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
    A.0, B.1, C.2, D.3, E.4
)(A.0, B.1, C.2, D.3, E.4, F.5));

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            to_string(&"a\"b\\c\nd\te\u{1}").unwrap(),
            r#""a\"b\\c\nd\te\u0001""#
        );
    }

    #[test]
    fn arrays_and_tuples() {
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&(1u8, 2.5f64, "x")).unwrap(), "[1,2.5,\"x\"]");
        assert_eq!(to_string(&[1.0f64; 3]).unwrap(), "[1.0,1.0,1.0]");
        let empty: Vec<u8> = Vec::new();
        assert_eq!(to_string(&empty).unwrap(), "[]");
    }

    #[test]
    fn pretty_format_matches_serde_json_shape() {
        let value = Json::Object(vec![
            ("name".into(), Json::String("fig7".into())),
            (
                "sweep".into(),
                Json::Array(vec![Json::Number("1".into()), Json::Number("2".into())]),
            ),
            ("empty".into(), Json::Array(Vec::new())),
        ]);
        assert_eq!(
            to_string_pretty(&value).unwrap(),
            "{\n  \"name\": \"fig7\",\n  \"sweep\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
    }
}
