//! Analytical area/power model (Table 1 of the paper).
//!
//! The paper synthesizes the datapaths with Synopsys DC at 28 nm / 1 GHz
//! and reports, for one SeGraM accelerator, **0.867 mm²** and **758 mW**;
//! for all 32 accelerators **27.7 mm²** and **24.3 W**; adding HBM,
//! **28.1 W** total. It further notes that "the main contributors for the
//! area overhead and power consumption are (1) the hop queue registers,
//! which constitute more than 60 % of the area and power of BitAlign's
//! edit distance calculation logic; and (2) the bitvector scratchpads."
//!
//! Lacking the original synthesis library, this module uses per-kB SRAM,
//! per-kB register-file, and per-block logic constants *calibrated so the
//! model reproduces those published totals and the stated breakdown
//! structure* (see `DESIGN.md`, substitution table). The constants are in
//! the plausible range for a 28 nm low-power process.

use crate::scratchpad::{BitAlignStorage, MinSeedScratchpads};

/// Area (mm²) per kB of single-ported SRAM at 28 nm.
pub const SRAM_AREA_MM2_PER_KB: f64 = 0.0023;
/// Dynamic power (mW) per kB of SRAM at 1 GHz.
pub const SRAM_POWER_MW_PER_KB: f64 = 1.2;
/// Area (mm²) per kB of register file (hop queues are flop-based, ~10×
/// SRAM density cost).
pub const REGFILE_AREA_MM2_PER_KB: f64 = 0.022;
/// Dynamic power (mW) per kB of register file at 1 GHz (written every
/// cycle).
pub const REGFILE_POWER_MW_PER_KB: f64 = 25.0;
/// Area (mm²) of one BitAlign PE's bitvector datapath (128-bit ALUs).
pub const PE_LOGIC_AREA_MM2: f64 = 0.10 / 64.0;
/// Power (mW) of one BitAlign PE's datapath.
pub const PE_LOGIC_POWER_MW: f64 = 130.0 / 64.0;
/// Area (mm²) of BitAlign's traceback logic.
pub const TRACEBACK_AREA_MM2: f64 = 0.020;
/// Power (mW) of BitAlign's traceback logic.
pub const TRACEBACK_POWER_MW: f64 = 40.0;
/// Area (mm²) of MinSeed's computation blocks (minimizer finder, filter,
/// region calculator — "simple logic").
pub const MINSEED_LOGIC_AREA_MM2: f64 = 0.018;
/// Power (mW) of MinSeed's computation blocks.
pub const MINSEED_LOGIC_POWER_MW: f64 = 46.0;

/// Area/power of one component.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cost {
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

impl Cost {
    fn add(self, other: Cost) -> Cost {
        Cost {
            area_mm2: self.area_mm2 + other.area_mm2,
            power_mw: self.power_mw + other.power_mw,
        }
    }
}

/// The Table 1 breakdown for one SeGraM accelerator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AcceleratorCost {
    /// MinSeed computation blocks.
    pub minseed_logic: Cost,
    /// MinSeed scratchpads (read + minimizer + seed, 50 kB).
    pub minseed_scratchpads: Cost,
    /// BitAlign edit-distance PE datapaths.
    pub bitalign_pe_logic: Cost,
    /// BitAlign hop queue registers (12 kB of flops).
    pub bitalign_hop_queues: Cost,
    /// BitAlign traceback logic.
    pub bitalign_traceback: Cost,
    /// BitAlign input + bitvector scratchpads (152 kB).
    pub bitalign_scratchpads: Cost,
}

impl AcceleratorCost {
    /// Evaluates the model for the paper's configuration.
    pub fn paper_configuration() -> Self {
        Self::for_storage(&MinSeedScratchpads::default(), &BitAlignStorage::default())
    }

    /// Evaluates the model for arbitrary storage sizing (ablations).
    pub fn for_storage(minseed: &MinSeedScratchpads, bitalign: &BitAlignStorage) -> Self {
        let kb = |bytes: u64| bytes as f64 / 1024.0;
        let sram = |bytes: u64| Cost {
            area_mm2: kb(bytes) * SRAM_AREA_MM2_PER_KB,
            power_mw: kb(bytes) * SRAM_POWER_MW_PER_KB,
        };
        AcceleratorCost {
            minseed_logic: Cost {
                area_mm2: MINSEED_LOGIC_AREA_MM2,
                power_mw: MINSEED_LOGIC_POWER_MW,
            },
            minseed_scratchpads: sram(minseed.total_bytes()),
            bitalign_pe_logic: Cost {
                area_mm2: PE_LOGIC_AREA_MM2 * bitalign.pe_count as f64,
                power_mw: PE_LOGIC_POWER_MW * bitalign.pe_count as f64,
            },
            bitalign_hop_queues: Cost {
                area_mm2: kb(bitalign.hop_queue_total_bytes()) * REGFILE_AREA_MM2_PER_KB,
                power_mw: kb(bitalign.hop_queue_total_bytes()) * REGFILE_POWER_MW_PER_KB,
            },
            bitalign_traceback: Cost {
                area_mm2: TRACEBACK_AREA_MM2,
                power_mw: TRACEBACK_POWER_MW,
            },
            bitalign_scratchpads: sram(bitalign.input.bytes + bitalign.bitvector_total_bytes()),
        }
    }

    /// Total for one accelerator.
    pub fn total(&self) -> Cost {
        self.minseed_logic
            .add(self.minseed_scratchpads)
            .add(self.bitalign_pe_logic)
            .add(self.bitalign_hop_queues)
            .add(self.bitalign_traceback)
            .add(self.bitalign_scratchpads)
    }

    /// BitAlign's edit-distance-calculation logic (PE datapaths + hop
    /// queues), the unit the paper's ">60 %" claim refers to.
    pub fn edit_distance_logic(&self) -> Cost {
        self.bitalign_pe_logic.add(self.bitalign_hop_queues)
    }

    /// Fraction of edit-distance-logic area contributed by hop queues.
    pub fn hop_queue_area_fraction(&self) -> f64 {
        self.bitalign_hop_queues.area_mm2 / self.edit_distance_logic().area_mm2
    }

    /// Fraction of edit-distance-logic power contributed by hop queues.
    pub fn hop_queue_power_fraction(&self) -> f64 {
        self.bitalign_hop_queues.power_mw / self.edit_distance_logic().power_mw
    }
}

/// System-level totals (the bottom rows of Table 1).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SystemCost {
    /// One accelerator.
    pub per_accelerator: Cost,
    /// Number of accelerators (paper: 32).
    pub accelerators: usize,
    /// All accelerators.
    pub all_accelerators: Cost,
    /// HBM dynamic power in watts.
    pub hbm_power_w: f64,
    /// Grand-total power in watts (accelerators + HBM).
    pub total_power_w: f64,
}

/// Evaluates the full Table 1 at `accelerators` instances plus HBM power.
pub fn system_cost(accelerators: usize, hbm_power_w: f64) -> SystemCost {
    let per = AcceleratorCost::paper_configuration().total();
    let all = Cost {
        area_mm2: per.area_mm2 * accelerators as f64,
        power_mw: per.power_mw * accelerators as f64,
    };
    SystemCost {
        per_accelerator: per,
        accelerators,
        all_accelerators: all,
        hbm_power_w,
        total_power_w: all.power_mw / 1000.0 + hbm_power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_accelerator_matches_table1() {
        // Paper: 0.867 mm², 758 mW per accelerator.
        let total = AcceleratorCost::paper_configuration().total();
        assert!(
            (total.area_mm2 - 0.867).abs() < 0.02,
            "area {}",
            total.area_mm2
        );
        assert!(
            (total.power_mw - 758.0).abs() < 15.0,
            "power {}",
            total.power_mw
        );
    }

    #[test]
    fn system_totals_match_table1() {
        // Paper: 27.7 mm², 24.3 W for 32 accelerators; 28.1 W with HBM.
        let sys = system_cost(32, crate::hbm::HbmConfig::default().total_dynamic_power_w());
        assert!((sys.all_accelerators.area_mm2 - 27.7).abs() < 0.6);
        assert!((sys.all_accelerators.power_mw / 1000.0 - 24.3).abs() < 0.5);
        assert!(
            (sys.total_power_w - 28.1).abs() < 0.6,
            "{}",
            sys.total_power_w
        );
    }

    #[test]
    fn hop_queues_dominate_edit_logic() {
        // Paper: hop queue registers are >60 % of the area and power of
        // BitAlign's edit-distance-calculation logic.
        let cost = AcceleratorCost::paper_configuration();
        assert!(cost.hop_queue_area_fraction() > 0.60);
        assert!(cost.hop_queue_power_fraction() > 0.60);
    }

    #[test]
    fn accelerator_is_tiny_next_to_a_cpu() {
        // Paper: "a single SeGraM accelerator requires 0.02% of area and
        // 0.5% of power consumption of an entire high-end Intel processor"
        // (~700 mm², ~150 W class).
        let total = AcceleratorCost::paper_configuration().total();
        assert!(total.area_mm2 / 700.0 < 0.002);
        assert!(total.power_mw / 150_000.0 < 0.006);
    }

    #[test]
    fn scratchpads_and_hop_queues_are_main_contributors() {
        let cost = AcceleratorCost::paper_configuration();
        let total = cost.total();
        let memories = cost
            .bitalign_scratchpads
            .add(cost.minseed_scratchpads)
            .add(cost.bitalign_hop_queues);
        assert!(memories.area_mm2 / total.area_mm2 > 0.5);
        assert!(memories.power_mw / total.power_mw > 0.5);
    }

    #[test]
    fn cost_model_scales_with_storage() {
        let mut big = BitAlignStorage::default();
        big.bitvector_per_pe.bytes *= 2;
        let base = AcceleratorCost::paper_configuration().total();
        let grown = AcceleratorCost::for_storage(&MinSeedScratchpads::default(), &big).total();
        assert!(grown.area_mm2 > base.area_mm2);
        assert!(grown.power_mw > base.power_mw);
    }
}
