//! Arbitrary-width bitvectors for the Bitap/GenASM family of algorithms.
//!
//! BitAlign's hardware processes 128 bits per processing element
//! (Section 8.2); in software the status bitvectors (`R[d]`) and pattern
//! bitmasks have the width of the query pattern, which can be anything from
//! a few bases to a full window. Only bits `0..width` are meaningful; all
//! algorithms in this crate use *active-low* semantics (a 0 bit means
//! "match state reached").

use std::fmt;

/// A fixed-width bitvector backed by `u64` words.
///
/// # Examples
///
/// ```
/// use segram_align::Bitvector;
///
/// let ones = Bitvector::all_ones(130);
/// assert!(ones.bit(129));
/// let shifted = ones.shl1();
/// assert!(!shifted.bit(0));     // shift injects a 0 (active-low "match")
/// assert!(shifted.bit(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitvector {
    words: Vec<u64>,
    width: usize,
}

impl Bitvector {
    /// Creates a bitvector of `width` bits, all set to 1.
    pub fn all_ones(width: usize) -> Self {
        Self {
            words: vec![u64::MAX; width.div_ceil(64).max(1)],
            width,
        }
    }

    /// Creates a bitvector of `width` bits, all set to 0.
    pub fn all_zeros(width: usize) -> Self {
        Self {
            words: vec![0; width.div_ceil(64).max(1)],
            width,
        }
    }

    /// Creates the "virtual sink" vector `ones << d`: the lowest `d` bits
    /// are 0, the rest 1. This encodes "a pattern suffix of length `l` can
    /// be completed with `l` insertions" (`E[sink][l] = l`, see
    /// [`BitAligner`](crate::BitAligner)).
    pub fn ones_shifted(width: usize, d: usize) -> Self {
        let mut v = Self::all_ones(width);
        for p in 0..d.min(width) {
            v.clear_bit(p);
        }
        v
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of backing 64-bit words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Reads bit `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p >= width`.
    #[inline]
    pub fn bit(&self, p: usize) -> bool {
        assert!(p < self.width, "bit index {p} out of width {}", self.width);
        (self.words[p / 64] >> (p % 64)) & 1 == 1
    }

    /// Sets bit `p` to 1.
    #[inline]
    pub fn set_bit(&mut self, p: usize) {
        assert!(p < self.width);
        self.words[p / 64] |= 1 << (p % 64);
    }

    /// Clears bit `p` to 0.
    #[inline]
    pub fn clear_bit(&mut self, p: usize) {
        assert!(p < self.width);
        self.words[p / 64] &= !(1 << (p % 64));
    }

    /// Returns `self << 1` (a 0 bit is injected at position 0).
    pub fn shl1(&self) -> Self {
        let mut out = self.clone();
        out.shl1_from(self);
        out
    }

    /// Overwrites `self` with `src << 1`.
    ///
    /// # Panics
    ///
    /// Panics when widths differ.
    #[inline]
    pub fn shl1_from(&mut self, src: &Self) {
        assert_eq!(self.width, src.width);
        let mut carry = 0u64;
        for (dst, &s) in self.words.iter_mut().zip(&src.words) {
            *dst = (s << 1) | carry;
            carry = s >> 63;
        }
    }

    /// `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics when widths differ.
    #[inline]
    pub fn and_assign(&mut self, other: &Self) {
        assert_eq!(self.width, other.width);
        for (dst, &s) in self.words.iter_mut().zip(&other.words) {
            *dst &= s;
        }
    }

    /// `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics when widths differ.
    #[inline]
    pub fn or_assign(&mut self, other: &Self) {
        assert_eq!(self.width, other.width);
        for (dst, &s) in self.words.iter_mut().zip(&other.words) {
            *dst |= s;
        }
    }

    /// Copies `src` into `self`.
    ///
    /// # Panics
    ///
    /// Panics when widths differ.
    #[inline]
    pub fn copy_from(&mut self, src: &Self) {
        assert_eq!(self.width, src.width);
        self.words.copy_from_slice(&src.words);
    }

    /// Index of the lowest 0 bit within the width, if any — i.e. the
    /// shortest matched pattern suffix in active-low semantics.
    pub fn lowest_zero(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate() {
            if word != u64::MAX {
                let p = w * 64 + word.trailing_ones() as usize;
                return (p < self.width).then_some(p);
            }
        }
        None
    }
}

impl fmt::Debug for Bitvector {
    /// Renders most-significant bit first, like the paper's figures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitvector[{}b ", self.width)?;
        for p in (0..self.width).rev() {
            write!(f, "{}", u8::from(self.bit(p)))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Bitvector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in (0..self.width).rev() {
            write!(f, "{}", u8::from(self.bit(p)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_and_zeros() {
        let ones = Bitvector::all_ones(70);
        let zeros = Bitvector::all_zeros(70);
        for p in 0..70 {
            assert!(ones.bit(p));
            assert!(!zeros.bit(p));
        }
        assert_eq!(ones.word_count(), 2);
    }

    #[test]
    fn set_and_clear() {
        let mut v = Bitvector::all_zeros(65);
        v.set_bit(64);
        assert!(v.bit(64));
        v.clear_bit(64);
        assert!(!v.bit(64));
    }

    #[test]
    fn shift_crosses_word_boundary() {
        let mut v = Bitvector::all_zeros(70);
        v.set_bit(63);
        let s = v.shl1();
        assert!(s.bit(64));
        assert!(!s.bit(63));
    }

    #[test]
    fn shift_injects_zero_at_bit0() {
        let ones = Bitvector::all_ones(10);
        let s = ones.shl1();
        assert!(!s.bit(0));
        for p in 1..10 {
            assert!(s.bit(p));
        }
    }

    #[test]
    fn ones_shifted_matches_repeated_shl1() {
        for width in [1usize, 7, 64, 65, 130] {
            let mut v = Bitvector::all_ones(width);
            for d in 0..=width.min(10) {
                assert_eq!(Bitvector::ones_shifted(width, d), v, "width {width} d {d}");
                v = v.shl1();
            }
        }
    }

    #[test]
    fn bitwise_ops() {
        let mut a = Bitvector::all_ones(5);
        let mut b = Bitvector::all_zeros(5);
        b.set_bit(2);
        a.and_assign(&b);
        assert_eq!(a.to_string(), "00100");
        let mut c = Bitvector::all_zeros(5);
        c.set_bit(0);
        a.or_assign(&c);
        assert_eq!(a.to_string(), "00101");
    }

    #[test]
    fn lowest_zero_scans_words() {
        let mut v = Bitvector::all_ones(130);
        assert_eq!(v.lowest_zero(), None);
        v.clear_bit(100);
        assert_eq!(v.lowest_zero(), Some(100));
        v.clear_bit(3);
        assert_eq!(v.lowest_zero(), Some(3));
    }

    #[test]
    #[should_panic(expected = "out of width")]
    fn bit_out_of_range_panics() {
        Bitvector::all_ones(8).bit(8);
    }

    #[test]
    fn debug_renders_msb_first() {
        let mut v = Bitvector::all_zeros(4);
        v.set_bit(3);
        assert_eq!(format!("{v}"), "1000");
    }
}
