//! Discrete-event simulation of the SeGraM accelerator pipeline.
//!
//! The paper's performance numbers come from "an in-house cycle-accurate
//! simulator and a spreadsheet-based analytical model" (Section 10). The
//! analytical model lives in [`crate::SegramAccelerator`]; this module is
//! the event-driven counterpart, simulating the two pipeline stages
//! (MinSeed, BitAlign) with double buffering explicitly, so the analytic
//! steady-state formula can be validated against an execution trace.
//!
//! Model: each seed is a job that must first occupy the MinSeed stage
//! (fetch frequencies/locations/subgraph into one side of the double
//! buffer), then the BitAlign stage. With double buffering, MinSeed may
//! work on seed `i+1` while BitAlign processes seed `i` — but only one
//! buffer ahead (capacity 2 per scratchpad, Section 8.1).

/// One simulated seed job: stage service times in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeedJob {
    /// MinSeed time (seed fetch + subgraph fetch) for this seed.
    pub minseed_ns: f64,
    /// BitAlign time (bitvector generation + traceback) for this seed.
    pub bitalign_ns: f64,
}

/// The trace of a pipeline run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineTrace {
    /// Completion time of every seed, in order.
    pub completions_ns: Vec<f64>,
    /// Total busy time of the MinSeed stage.
    pub minseed_busy_ns: f64,
    /// Total busy time of the BitAlign stage.
    pub bitalign_busy_ns: f64,
}

impl PipelineTrace {
    /// Makespan: time the last seed finishes.
    pub fn makespan_ns(&self) -> f64 {
        self.completions_ns.last().copied().unwrap_or(0.0)
    }

    /// Utilization of the BitAlign stage (busy / makespan).
    pub fn bitalign_utilization(&self) -> f64 {
        let total = self.makespan_ns();
        if total == 0.0 {
            0.0
        } else {
            self.bitalign_busy_ns / total
        }
    }

    /// Utilization of the MinSeed stage.
    pub fn minseed_utilization(&self) -> f64 {
        let total = self.makespan_ns();
        if total == 0.0 {
            0.0
        } else {
            self.minseed_busy_ns / total
        }
    }
}

/// Simulates a two-stage pipeline with one-deep double buffering between
/// the stages (each scratchpad holds the current item and one prefetched
/// item, Section 8.1's "double buffering technique").
pub fn simulate_pipeline(jobs: &[SeedJob]) -> PipelineTrace {
    let mut trace = PipelineTrace::default();
    // minseed_free: when the MinSeed stage can start the next job.
    // bitalign_free: when the BitAlign stage can start the next job.
    let mut minseed_free = 0.0f64;
    let mut bitalign_free = 0.0f64;
    // With one-deep buffering, MinSeed cannot run more than one job ahead
    // of BitAlign: it stalls until the buffer slot frees (when BitAlign
    // *starts* consuming the previous item).
    let mut buffer_freed_at = 0.0f64;
    for job in jobs {
        let minseed_start = minseed_free.max(buffer_freed_at);
        let minseed_done = minseed_start + job.minseed_ns;
        trace.minseed_busy_ns += job.minseed_ns;
        minseed_free = minseed_done;

        let bitalign_start = minseed_done.max(bitalign_free);
        let bitalign_done = bitalign_start + job.bitalign_ns;
        trace.bitalign_busy_ns += job.bitalign_ns;
        bitalign_free = bitalign_done;
        // The input buffer slot frees once BitAlign picks the item up.
        buffer_freed_at = bitalign_start;

        trace.completions_ns.push(bitalign_done);
    }
    trace
}

/// Builds a uniform job list from an average workload (the analytic
/// model's view) for cross-validation.
pub fn uniform_jobs(count: usize, minseed_ns: f64, bitalign_ns: f64) -> Vec<SeedJob> {
    vec![
        SeedJob {
            minseed_ns,
            bitalign_ns,
        };
        count
    ]
}

/// The trace of a sharded run: one independent accelerator pipeline per
/// HBM channel, each consuming its own shard's region stream
/// (Section 8.3's per-channel accelerator instances).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardedPipelineTrace {
    /// Per-channel pipeline traces, in shard order.
    pub per_channel: Vec<PipelineTrace>,
}

impl ShardedPipelineTrace {
    /// Overall makespan: the slowest channel finishes last (channels run
    /// concurrently).
    pub fn makespan_ns(&self) -> f64 {
        self.per_channel
            .iter()
            .map(PipelineTrace::makespan_ns)
            .fold(0.0, f64::max)
    }

    /// Max-over-mean imbalance of per-channel makespans (1.0 = perfectly
    /// balanced; the metric behind the paper's load-balance study).
    pub fn channel_imbalance(&self) -> f64 {
        let spans: Vec<f64> = self
            .per_channel
            .iter()
            .map(PipelineTrace::makespan_ns)
            .collect();
        let max = spans.iter().copied().fold(0.0, f64::max);
        let mean = spans.iter().sum::<f64>() / spans.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Fraction of the overall makespan the *slowest* channel's BitAlign
    /// unit was busy — the binding channel's utilization. Empty channels
    /// never bind (their makespan is 0), so they do not collapse the
    /// metric; when every channel is empty this reports 0.
    pub fn worst_channel_utilization(&self) -> f64 {
        let total = self.makespan_ns();
        if total == 0.0 {
            return 0.0;
        }
        self.per_channel
            .iter()
            .max_by(|a, b| a.makespan_ns().total_cmp(&b.makespan_ns()))
            .map_or(0.0, |slowest| slowest.bitalign_busy_ns / total)
            .min(1.0)
    }
}

/// Simulates `streams.len()` independent per-channel pipelines, one per
/// shard, each fed that shard's region stream. This is how the software
/// engine's per-shard occupancy counters (seed hits / regions per
/// coordinate-range shard) are turned into modeled accelerator occupancy
/// under real, bursty candidate-region distributions.
pub fn simulate_sharded_pipeline(streams: &[Vec<SeedJob>]) -> ShardedPipelineTrace {
    ShardedPipelineTrace {
        per_channel: streams.iter().map(|jobs| simulate_pipeline(jobs)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pipeline_is_zero() {
        let trace = simulate_pipeline(&[]);
        assert_eq!(trace.makespan_ns(), 0.0);
        assert_eq!(trace.bitalign_utilization(), 0.0);
    }

    #[test]
    fn single_job_is_sequential() {
        let trace = simulate_pipeline(&uniform_jobs(1, 10.0, 30.0));
        assert_eq!(trace.makespan_ns(), 40.0);
    }

    #[test]
    fn bitalign_bound_pipeline_matches_analytic_model() {
        // Section 8.3: MinSeed is hidden when BitAlign dominates. The
        // analytic model says makespan ≈ fill (one MinSeed) + n * bitalign.
        let (minseed, bitalign, n) = (10.0, 34.0, 100usize);
        let trace = simulate_pipeline(&uniform_jobs(n, minseed, bitalign));
        let analytic = minseed + n as f64 * bitalign;
        assert!(
            (trace.makespan_ns() - analytic).abs() < 1e-9,
            "sim {} vs analytic {}",
            trace.makespan_ns(),
            analytic
        );
        // BitAlign is (nearly) always busy.
        assert!(trace.bitalign_utilization() > 0.99);
    }

    #[test]
    fn minseed_bound_pipeline_is_seeding_limited() {
        // When seeding dominates, steady-state throughput is MinSeed's.
        let (minseed, bitalign, n) = (50.0, 10.0, 100usize);
        let trace = simulate_pipeline(&uniform_jobs(n, minseed, bitalign));
        let analytic = n as f64 * minseed + bitalign;
        assert!((trace.makespan_ns() - analytic).abs() < 1e-9);
        assert!(trace.minseed_utilization() > 0.99);
        assert!(trace.bitalign_utilization() < 0.25);
    }

    #[test]
    fn variable_jobs_respect_ordering_and_buffering() {
        let jobs = [
            SeedJob {
                minseed_ns: 5.0,
                bitalign_ns: 20.0,
            },
            SeedJob {
                minseed_ns: 30.0,
                bitalign_ns: 5.0,
            },
            SeedJob {
                minseed_ns: 5.0,
                bitalign_ns: 20.0,
            },
        ];
        let trace = simulate_pipeline(&jobs);
        // Completions are strictly increasing.
        assert!(trace.completions_ns.windows(2).all(|w| w[0] < w[1]));
        // Makespan is at least the critical path of either stage.
        let minseed_total: f64 = jobs.iter().map(|j| j.minseed_ns).sum();
        let bitalign_total: f64 = jobs.iter().map(|j| j.bitalign_ns).sum();
        assert!(trace.makespan_ns() >= minseed_total.max(bitalign_total));
    }

    #[test]
    fn sharded_channels_run_concurrently() {
        // Two balanced channels finish in (roughly) one channel's time.
        let per_shard = vec![uniform_jobs(40, 10.0, 30.0), uniform_jobs(40, 10.0, 30.0)];
        let sharded = simulate_sharded_pipeline(&per_shard);
        let mono = simulate_pipeline(&uniform_jobs(80, 10.0, 30.0));
        assert!(sharded.makespan_ns() < mono.makespan_ns() * 0.6);
        assert!((sharded.channel_imbalance() - 1.0).abs() < 1e-9);
        assert!(sharded.worst_channel_utilization() > 0.9);
    }

    #[test]
    fn sharded_imbalance_tracks_skewed_streams() {
        // One channel gets 3x the regions: imbalance approaches max/mean.
        let per_shard = vec![uniform_jobs(60, 10.0, 30.0), uniform_jobs(20, 10.0, 30.0)];
        let sharded = simulate_sharded_pipeline(&per_shard);
        assert!(sharded.channel_imbalance() > 1.4);
        // Makespan is the skewed channel's, not the sum.
        let heavy = simulate_pipeline(&uniform_jobs(60, 10.0, 30.0));
        assert!((sharded.makespan_ns() - heavy.makespan_ns()).abs() < 1e-9);
    }

    #[test]
    fn sharded_degenerate_cases() {
        let empty = simulate_sharded_pipeline(&[]);
        assert_eq!(empty.makespan_ns(), 0.0);
        assert_eq!(empty.channel_imbalance(), 1.0);
        assert_eq!(empty.worst_channel_utilization(), 0.0);
        // An empty channel never binds: the metric reports the busy
        // channel's utilization (1 ns fill + 5 x 2 ns = 11 ns makespan,
        // 10 ns BitAlign busy).
        let one_empty = simulate_sharded_pipeline(&[vec![], uniform_jobs(5, 1.0, 2.0)]);
        assert!(one_empty.makespan_ns() > 0.0);
        assert!((one_empty.worst_channel_utilization() - 10.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn double_buffering_beats_no_overlap() {
        let jobs = uniform_jobs(50, 20.0, 25.0);
        let trace = simulate_pipeline(&jobs);
        let sequential: f64 = jobs.iter().map(|j| j.minseed_ns + j.bitalign_ns).sum();
        assert!(trace.makespan_ns() < sequential * 0.6);
    }
}
