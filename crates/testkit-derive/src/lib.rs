//! `#[derive(Serialize)]` for `segram_testkit::json::Serialize`.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote` —
//! the build environment is offline), which is enough for the shapes the
//! workspace serializes: non-generic structs with named fields, plus
//! unit-only enums (serialized as their variant name).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `segram_testkit::json::Serialize`.
///
/// Supported: `struct Name { field: Type, ... }` (fields may carry
/// attributes and visibility) and `enum Name { Unit1, Unit2 }`. Anything
/// else panics at expansion time with a pointer here.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (kind, name, body) = parse_type_header(&tokens);
    let implementation = match kind {
        TypeKind::Struct => {
            let fields = named_fields(&body);
            assert!(
                !fields.is_empty(),
                "derive(Serialize): struct {name} has no named fields"
            );
            let pushes: String = fields
                .iter()
                .map(|field| {
                    format!(
                        "object.push((\"{field}\".to_string(), \
                         ::segram_testkit::json::Serialize::to_json(&self.{field})));"
                    )
                })
                .collect();
            format!(
                "let mut object = ::std::vec::Vec::new(); {pushes} \
                 ::segram_testkit::json::Json::Object(object)"
            )
        }
        TypeKind::Enum => {
            let variants = unit_variants(&name, &body);
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => \"{v}\","))
                .collect();
            format!("::segram_testkit::json::Json::String(match self {{ {arms} }}.to_string())")
        }
    };
    format!(
        "impl ::segram_testkit::json::Serialize for {name} {{\n\
             fn to_json(&self) -> ::segram_testkit::json::Json {{\n\
                 {implementation}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl must parse")
}

enum TypeKind {
    Struct,
    Enum,
}

/// Finds `struct Name { ... }` / `enum Name { ... }` in the derive input,
/// skipping attributes and visibility.
fn parse_type_header(tokens: &[TokenTree]) -> (TypeKind, String, Vec<TokenTree>) {
    let mut iter = tokens.iter().peekable();
    while let Some(token) = iter.next() {
        let kind = match token {
            TokenTree::Ident(ident) if ident.to_string() == "struct" => TypeKind::Struct,
            TokenTree::Ident(ident) if ident.to_string() == "enum" => TypeKind::Enum,
            _ => continue,
        };
        let name = match iter.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!("derive(Serialize): expected type name, found {other:?}"),
        };
        for token in iter {
            match token {
                TokenTree::Group(group) if group.delimiter() == Delimiter::Brace => {
                    return (kind, name, group.stream().into_iter().collect());
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    panic!("derive(Serialize): generic type {name} is not supported")
                }
                _ => {}
            }
        }
        panic!("derive(Serialize): {name} has no braced body (tuple/unit types unsupported)");
    }
    panic!("derive(Serialize): no struct or enum found in input");
}

/// Extracts field names from a braced struct body: for each top-level
/// comma-separated chunk, the identifier immediately before the first
/// top-level `:` (skipping attributes and visibility).
fn named_fields(body: &[TokenTree]) -> Vec<String> {
    split_top_level(body)
        .into_iter()
        .filter_map(|chunk| {
            let mut iter = chunk.iter().peekable();
            let mut previous_ident: Option<String> = None;
            while let Some(token) = iter.next() {
                match token {
                    // Skip `#[...]` attributes (doc comments included).
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        iter.next();
                    }
                    TokenTree::Ident(ident) if ident.to_string() == "pub" => {
                        // Skip an optional `(crate)`-style restriction.
                        if let Some(TokenTree::Group(_)) = iter.peek() {
                            iter.next();
                        }
                    }
                    TokenTree::Ident(ident) => previous_ident = Some(ident.to_string()),
                    TokenTree::Punct(p) if p.as_char() == ':' => {
                        return Some(previous_ident.expect("field name before `:`"));
                    }
                    _ => {}
                }
            }
            None // trailing empty chunk after the last comma
        })
        .collect()
}

/// Extracts unit-variant names from an enum body; panics on data variants.
fn unit_variants(name: &str, body: &[TokenTree]) -> Vec<String> {
    split_top_level(body)
        .into_iter()
        .filter_map(|chunk| {
            let mut variant = None;
            for token in chunk {
                match token {
                    TokenTree::Punct(p) if p.as_char() == '#' => {}
                    TokenTree::Group(group) if group.delimiter() == Delimiter::Bracket => {}
                    TokenTree::Ident(ident) => variant = Some(ident.to_string()),
                    TokenTree::Group(_) => panic!(
                        "derive(Serialize): enum {name} has a data-carrying variant; \
                         only unit enums are supported"
                    ),
                    _ => {}
                }
            }
            variant
        })
        .collect()
}

/// Splits a token list on top-level commas, treating `<...>` as nesting
/// (angle brackets are plain punctuation in token streams, unlike
/// parenthesis/bracket groups).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for token in tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(token.clone());
    }
    chunks
}
