//! Criterion benchmarks of end-to-end mapping: SeGraM's software pipeline
//! vs the baseline mappers — the per-read software costs behind the
//! Figure 15/16 throughput measurements.

use segram_core::{
    BaselineMapper, EngineConfig, GraphAlignerLike, MapEngine, SegramConfig, SegramMapper, VgLike,
};
use segram_sim::DatasetConfig;
use segram_testkit::bench::{criterion_group, criterion_main, Criterion};

fn bench_end_to_end(c: &mut Criterion) {
    let dataset = DatasetConfig {
        reference_len: 100_000,
        read_count: 8,
        long_read_len: 2_000,
        seed: 77,
    }
    .illumina(150);
    let mut config = SegramConfig::short_reads();
    config.max_regions = 8;
    let segram = SegramMapper::new(dataset.graph().clone(), config);
    let ga = GraphAlignerLike::new(dataset.graph().clone(), config);
    let vg = VgLike::new(dataset.graph().clone(), config);

    let mut group = c.benchmark_group("end_to_end_150bp");
    group.sample_size(10);
    group.bench_function("segram_software", |b| {
        // The SeGraM software pipeline runs through the engine (serial
        // configuration), the same path `segram map --threads 1` takes.
        let engine = MapEngine::new(&segram, EngineConfig::with_threads(1));
        b.iter(|| engine.map_stream(dataset.reads.iter(), |r| &r.seq, |_, _| {}))
    });
    group.bench_function("graphaligner_like", |b| {
        b.iter(|| {
            for read in &dataset.reads {
                let _ = ga.map_read(&read.seq);
            }
        })
    });
    group.bench_function("vg_like", |b| {
        b.iter(|| {
            for read in &dataset.reads {
                let _ = vg.map_read(&read.seq);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
