//! CIGAR strings: the traceback output of the alignment step ("CIGARstr"
//! in Algorithm 1 of the paper).

use std::fmt;

use segram_graph::Base;

/// A single alignment operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CigarOp {
    /// Exact match (`=`): consumes one read char and one reference char.
    Match,
    /// Substitution (`X`): consumes one read char and one reference char.
    Subst,
    /// Insertion (`I`): consumes one read char only.
    Ins,
    /// Deletion (`D`): consumes one reference char only.
    Del,
}

impl CigarOp {
    /// SAM-style single-character code (`=`, `X`, `I`, `D`).
    pub fn code(self) -> char {
        match self {
            CigarOp::Match => '=',
            CigarOp::Subst => 'X',
            CigarOp::Ins => 'I',
            CigarOp::Del => 'D',
        }
    }

    /// Whether the op consumes a read (query) character.
    pub fn consumes_read(self) -> bool {
        matches!(self, CigarOp::Match | CigarOp::Subst | CigarOp::Ins)
    }

    /// Whether the op consumes a reference (text) character.
    pub fn consumes_ref(self) -> bool {
        matches!(self, CigarOp::Match | CigarOp::Subst | CigarOp::Del)
    }

    /// Edit cost of the op (0 for a match, 1 otherwise).
    pub fn cost(self) -> u32 {
        u32::from(self != CigarOp::Match)
    }
}

impl fmt::Display for CigarOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A run-length encoded CIGAR string.
///
/// # Examples
///
/// ```
/// use segram_align::{Cigar, CigarOp};
///
/// let cigar: Cigar = [CigarOp::Match, CigarOp::Match, CigarOp::Subst, CigarOp::Ins]
///     .into_iter()
///     .collect();
/// assert_eq!(cigar.to_string(), "2=1X1I");
/// assert_eq!(cigar.edit_count(), 2);
/// assert_eq!(cigar.read_len(), 4);
/// assert_eq!(cigar.ref_len(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Cigar {
    runs: Vec<(CigarOp, u32)>,
}

impl Cigar {
    /// Creates an empty CIGAR.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one op, merging with the previous run when equal.
    pub fn push(&mut self, op: CigarOp) {
        self.push_run(op, 1);
    }

    /// Appends a run of `count` copies of `op`.
    pub fn push_run(&mut self, op: CigarOp, count: u32) {
        if count == 0 {
            return;
        }
        match self.runs.last_mut() {
            Some((last, n)) if *last == op => *n += count,
            _ => self.runs.push((op, count)),
        }
    }

    /// Appends every run of `other`.
    pub fn append(&mut self, other: &Cigar) {
        for &(op, n) in &other.runs {
            self.push_run(op, n);
        }
    }

    /// The run-length encoded content.
    pub fn runs(&self) -> &[(CigarOp, u32)] {
        &self.runs
    }

    /// Returns `true` when the CIGAR holds no ops.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates over individual ops (expanding runs).
    pub fn ops(&self) -> impl Iterator<Item = CigarOp> + '_ {
        self.runs
            .iter()
            .flat_map(|&(op, n)| std::iter::repeat_n(op, n as usize))
    }

    /// Total number of ops.
    pub fn op_count(&self) -> u32 {
        self.runs.iter().map(|&(_, n)| n).sum()
    }

    /// Total edit cost (number of non-match ops).
    pub fn edit_count(&self) -> u32 {
        self.runs.iter().map(|&(op, n)| op.cost() * n).sum()
    }

    /// Number of read characters consumed.
    pub fn read_len(&self) -> u32 {
        self.runs
            .iter()
            .filter(|(op, _)| op.consumes_read())
            .map(|&(_, n)| n)
            .sum()
    }

    /// Number of reference characters consumed.
    pub fn ref_len(&self) -> u32 {
        self.runs
            .iter()
            .filter(|(op, _)| op.consumes_ref())
            .map(|&(_, n)| n)
            .sum()
    }

    /// Replays the CIGAR against an aligned reference fragment, producing
    /// the read it implies. Returns `None` when lengths disagree or a
    /// `Match`/`Subst` op contradicts the claimed relation — used by tests
    /// to validate tracebacks end to end.
    ///
    /// For `Match` the reference char is copied; for `Subst` and `Ins` the
    /// corresponding read char is taken from `read` (and for `Subst` it
    /// must differ from the reference char).
    pub fn replay(&self, reference: &[Base], read: &[Base]) -> Option<Vec<Base>> {
        let mut out = Vec::with_capacity(read.len());
        let mut ri = 0usize; // reference cursor
        let mut qi = 0usize; // read cursor
        for op in self.ops() {
            match op {
                CigarOp::Match => {
                    let (r, q) = (*reference.get(ri)?, *read.get(qi)?);
                    if r != q {
                        return None;
                    }
                    out.push(r);
                    ri += 1;
                    qi += 1;
                }
                CigarOp::Subst => {
                    let (r, q) = (*reference.get(ri)?, *read.get(qi)?);
                    if r == q {
                        return None;
                    }
                    out.push(q);
                    ri += 1;
                    qi += 1;
                }
                CigarOp::Ins => {
                    out.push(*read.get(qi)?);
                    qi += 1;
                }
                CigarOp::Del => {
                    reference.get(ri)?;
                    ri += 1;
                }
            }
        }
        (ri == reference.len() && qi == read.len()).then_some(out)
    }
}

impl FromIterator<CigarOp> for Cigar {
    fn from_iter<I: IntoIterator<Item = CigarOp>>(iter: I) -> Self {
        let mut cigar = Cigar::new();
        for op in iter {
            cigar.push(op);
        }
        cigar
    }
}

impl Extend<CigarOp> for Cigar {
    fn extend<I: IntoIterator<Item = CigarOp>>(&mut self, iter: I) {
        for op in iter {
            self.push(op);
        }
    }
}

impl std::str::FromStr for Cigar {
    type Err = ParseCigarError;

    /// Parses run-length CIGAR text (`"2=1X1I"`, or `"*"` for empty).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "*" {
            return Ok(Cigar::new());
        }
        let mut cigar = Cigar::new();
        let mut count: u64 = 0;
        let mut saw_digit = false;
        for (offset, ch) in s.char_indices() {
            match ch {
                '0'..='9' => {
                    count = count * 10 + (ch as u64 - '0' as u64);
                    if count > u32::MAX as u64 {
                        return Err(ParseCigarError { offset });
                    }
                    saw_digit = true;
                }
                '=' | 'X' | 'I' | 'D' => {
                    if !saw_digit || count == 0 {
                        return Err(ParseCigarError { offset });
                    }
                    let op = match ch {
                        '=' => CigarOp::Match,
                        'X' => CigarOp::Subst,
                        'I' => CigarOp::Ins,
                        _ => CigarOp::Del,
                    };
                    cigar.push_run(op, count as u32);
                    count = 0;
                    saw_digit = false;
                }
                _ => return Err(ParseCigarError { offset }),
            }
        }
        if saw_digit {
            return Err(ParseCigarError { offset: s.len() });
        }
        Ok(cigar)
    }
}

/// Error parsing a CIGAR string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseCigarError {
    /// Byte offset of the offending character (or `len` for a dangling
    /// count).
    pub offset: usize,
}

impl fmt::Display for ParseCigarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cigar syntax at offset {}", self.offset)
    }
}

impl std::error::Error for ParseCigarError {}

impl fmt::Display for Cigar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.runs.is_empty() {
            return write!(f, "*");
        }
        for &(op, n) in &self.runs {
            write!(f, "{n}{op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_length_merging() {
        let mut c = Cigar::new();
        c.push(CigarOp::Match);
        c.push(CigarOp::Match);
        c.push(CigarOp::Del);
        c.push_run(CigarOp::Del, 2);
        assert_eq!(c.to_string(), "2=3D");
        assert_eq!(c.op_count(), 5);
        assert_eq!(c.edit_count(), 3);
    }

    #[test]
    fn lengths_account_ops_correctly() {
        let c: Cigar = "==XID"
            .chars()
            .map(|ch| match ch {
                '=' => CigarOp::Match,
                'X' => CigarOp::Subst,
                'I' => CigarOp::Ins,
                _ => CigarOp::Del,
            })
            .collect();
        assert_eq!(c.read_len(), 4);
        assert_eq!(c.ref_len(), 4);
        assert_eq!(c.edit_count(), 3);
    }

    #[test]
    fn empty_cigar_displays_star() {
        assert_eq!(Cigar::new().to_string(), "*");
    }

    #[test]
    fn append_merges_boundary_runs() {
        let a: Cigar = [CigarOp::Match, CigarOp::Match].into_iter().collect();
        let b: Cigar = [CigarOp::Match, CigarOp::Ins].into_iter().collect();
        let mut joined = a;
        joined.append(&b);
        assert_eq!(joined.to_string(), "3=1I");
    }

    #[test]
    fn parse_round_trips_display() {
        for text in ["2=3D", "1X", "10=2I5=1D3=", "*"] {
            let cigar: Cigar = text.parse().unwrap();
            assert_eq!(cigar.to_string(), text);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["=", "2", "2M", "0=", "2=x", "2==", "-1="] {
            assert!(bad.parse::<Cigar>().is_err(), "{bad} should fail");
        }
        let err = "2=Z".parse::<Cigar>().unwrap_err();
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn replay_validates_alignment() {
        use segram_graph::Base::*;
        // ref ACG, read ATCG: 1= 1I 1= 1... read A T C G; ref A C G
        let cigar: Cigar = [CigarOp::Match, CigarOp::Ins, CigarOp::Match, CigarOp::Match]
            .into_iter()
            .collect();
        let replayed = cigar.replay(&[A, C, G], &[A, T, C, G]).unwrap();
        assert_eq!(replayed, vec![A, T, C, G]);
        // A claimed match that is actually a mismatch fails.
        let bad: Cigar = [CigarOp::Match].into_iter().collect();
        assert!(bad.replay(&[A], &[C]).is_none());
        // Length mismatch fails.
        assert!(cigar.replay(&[A, C], &[A, T, C, G]).is_none());
    }
}
