//! The versioned on-disk index format behind `segram index build` /
//! `segram serve` (`.sgi` files).
//!
//! A `.sgi` file bundles everything a mapping daemon needs to start
//! serving without re-running graph construction or
//! [`GraphIndex::build`]: the genome graph (2-bit packed node sequences +
//! edges, Section 5's representation), the three-level hash index written
//! field-for-field so loading is a straight reconstruction rather than a
//! re-sort, and the seeding metadata (the frequency-filter threshold and
//! the discard fraction it was derived from).
//!
//! Layout: an 8-byte magic, a format version, and a section table
//! (`id / offset / length / FNV-1a checksum` per section) followed by the
//! section payloads. Everything is little-endian via the bounds-checked
//! [`segram_io::ByteReader`] primitives, so **loading never panics** on
//! truncated or corrupt input — every failure mode maps to a named
//! [`PersistError`] variant, and a loaded index additionally passes the
//! same structural invariants [`GraphIndex::build`] guarantees (validated
//! here so a tampered file cannot crash a later lookup).

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use segram_graph::{
    Base, DnaSeq, GenomeGraph, GraphBuilder, GraphPos, NodeId, Variant, VariantKind, VariantSet,
};
use segram_io::{fnv1a64, BinError, ByteReader, ByteWriter};

use crate::index::{GraphIndex, MinimizerEntry};
use crate::minimizer::{KmerOrdering, MinimizerScheme};

/// The 8-byte magic at the start of every `.sgi` file.
pub const INDEX_MAGIC: [u8; 8] = *b"SGRMIDX\0";
/// Current format version; bumped on any incompatible layout change.
pub const INDEX_FORMAT_VERSION: u32 = 1;
/// Version of the CHANGELOG section payload (independent of the file
/// format version: unknown *sections* are skipped by old readers, the
/// changelog's own layout is versioned here).
pub const CHANGELOG_VERSION: u32 = 1;
/// Version of the provenance tail appended to the META section.
pub const PROVENANCE_VERSION: u32 = 1;

const SECTION_GRAPH: u32 = 1;
const SECTION_INDEX: u32 = 2;
const SECTION_META: u32 = 3;
const SECTION_CHANGELOG: u32 = 4;
/// Bytes per section-table entry: id + offset + length + checksum.
const TABLE_ENTRY_BYTES: usize = 4 + 8 + 8 + 8;
/// Upper bound on the section count — far above the three we write, low
/// enough that a corrupt count cannot drive a large allocation.
const MAX_SECTIONS: u32 = 64;

/// Everything `segram index build` persists and `segram serve` loads: the
/// graph, its index, and the seeding metadata needed to reconstruct a
/// mapper that is byte-identical to one built from scratch.
#[derive(Clone, Debug)]
pub struct PersistedIndex {
    /// The genome graph the index was built over.
    pub graph: GenomeGraph,
    /// The three-level hash index.
    pub index: GraphIndex,
    /// The discard fraction the frequency threshold was derived from
    /// (kept so reports can echo the build configuration).
    pub discard_frac: f64,
    /// The frequency-filter threshold (derived from *global* minimizer
    /// counts at build time, exactly as the in-memory path does).
    pub freq_threshold: u32,
    /// The versioned changelog: epoch, parent identity, the linear
    /// reference and embedded variant set (everything `segram index
    /// update` needs to evolve the store), and the per-epoch history
    /// chain. `None` for stores written before the changelog existed —
    /// those load fine but cannot be updated or delta-reloaded.
    pub changelog: Option<StoreChangelog>,
    /// Human-facing build provenance (input paths, preset, epoch),
    /// surfaced by `segram index inspect` and the serve exit report.
    pub provenance: Option<IndexProvenance>,
}

impl PersistedIndex {
    /// The store identity: a checksum over the graph and index payloads
    /// that names this exact store in the epoch chain. Taken from the
    /// verified changelog when it has been stamped, recomputed otherwise
    /// (legacy stores and freshly built ones that have not been encoded).
    pub fn identity(&self) -> u64 {
        match &self.changelog {
            Some(log) if log.identity != 0 => log.identity,
            _ => computed_identity(&self.graph, &self.index),
        }
    }
}

/// The identity a store with these payloads would be stamped with.
pub(crate) fn computed_identity(graph: &GenomeGraph, index: &GraphIndex) -> u64 {
    store_identity(&encode_graph(graph), &encode_hash_index(index))
}

/// Provenance recorded at build/update time (the META section extension).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IndexProvenance {
    /// Path of the FASTA reference the graph was built from.
    pub reference_path: String,
    /// Paths of every VCF applied so far, in application order.
    pub vcf_paths: Vec<String>,
    /// The parameter preset the build used (`short`/`long`/custom).
    pub preset: String,
    /// The store's epoch (0 = fresh build, +1 per applied delta).
    pub epoch: u64,
}

/// The versioned changelog section: the store's position in its epoch
/// chain plus the inputs needed to extend the chain.
///
/// The chain is verifiable like a commit history: every [`EpochEntry`]
/// records the identity of the store it produced and the identity of its
/// parent, and [`decode_index`] checks that the entries link up and that
/// the final identity matches the graph/index payloads the changelog
/// travels with. A spliced or edited chain fails with
/// [`PersistError::ParentMismatch`]; out-of-sequence epochs fail with
/// [`PersistError::EpochSkew`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreChangelog {
    /// The store's epoch (equals the last history entry's).
    pub epoch: u64,
    /// Identity of the parent store (0 for an epoch-0 build).
    pub parent: u64,
    /// Identity of **this** store (filled in by [`encode_index`] from the
    /// actual graph/index payloads; verified by [`decode_index`]).
    pub identity: u64,
    /// The linear reference the graph was constructed from.
    pub reference: DnaSeq,
    /// The embedded variant set (sorted, overlap-dropped) — the parent
    /// set a future `apply_variants` call needs.
    pub applied: VariantSet,
    /// One entry per epoch, oldest first (entry `i` has epoch `i`).
    pub history: Vec<EpochEntry>,
}

/// One epoch in the store's history chain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochEntry {
    /// The epoch this entry produced.
    pub epoch: u64,
    /// Identity of the store this epoch was derived from (0 at epoch 0).
    pub parent: u64,
    /// Identity of the store this epoch produced (the last entry's value
    /// is maintained by [`encode_index`]).
    pub identity: u64,
    /// What was applied: a VCF path, or `"build"` for epoch 0.
    pub source: String,
    /// Variants embedded by this epoch.
    pub added_variants: u64,
    /// Variants dropped by this epoch (overlaps).
    pub dropped_variants: u64,
    /// Merged reference-coordinate ranges this epoch touched.
    pub touched: Vec<(u64, u64)>,
}

/// The identity checksum binding a changelog to the graph/index payloads
/// it describes.
fn store_identity(graph_payload: &[u8], index_payload: &[u8]) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u64(fnv1a64(graph_payload));
    w.put_u64(fnv1a64(index_payload));
    fnv1a64(&w.into_bytes())
}

/// A named reason an index file could not be loaded. Loading never
/// panics: every corrupt, truncated, or incompatible input maps here.
#[derive(Debug)]
pub enum PersistError {
    /// The file does not start with [`INDEX_MAGIC`] — not an index file.
    BadMagic,
    /// The file's format version is not [`INDEX_FORMAT_VERSION`].
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
    },
    /// The file ends before the declared layout does.
    Truncated {
        /// Byte offset where the input ran out.
        offset: usize,
    },
    /// A section's checksum does not match its payload.
    ChecksumMismatch {
        /// The section that failed verification.
        section: &'static str,
    },
    /// A section decoded but violates a structural invariant.
    Corrupt {
        /// The section the violation was found in.
        section: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// The changelog's epoch chain is out of sequence (a history entry or
    /// the store epoch does not follow its predecessor).
    EpochSkew {
        /// The epoch the chain position requires.
        expected: u64,
        /// The epoch actually recorded.
        found: u64,
    },
    /// A parent/identity link in the changelog chain is broken: the
    /// changelog does not describe the graph/index it travels with, or an
    /// update was attempted against a store that is not the delta's
    /// recorded parent.
    ParentMismatch {
        /// The identity the chain requires.
        expected: u64,
        /// The identity actually recorded.
        found: u64,
    },
    /// The store predates the versioned changelog and cannot be updated
    /// incrementally (rebuild with `index build`).
    NoChangelog,
    /// The underlying file could not be read or written.
    Io(io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "bad magic: not a segram index file"),
            Self::UnsupportedVersion { found } => write!(
                f,
                "unsupported index format version {found} (this build reads \
                 version {INDEX_FORMAT_VERSION})"
            ),
            Self::Truncated { offset } => {
                write!(f, "index file truncated at byte {offset}")
            }
            Self::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?}")
            }
            Self::Corrupt { section, detail } => {
                write!(f, "corrupt section {section:?}: {detail}")
            }
            Self::EpochSkew { expected, found } => write!(
                f,
                "epoch skew in the changelog chain: expected epoch {expected}, found {found}"
            ),
            Self::ParentMismatch { expected, found } => write!(
                f,
                "parent mismatch in the changelog chain: expected store identity \
                 {expected:#018x}, found {found:#018x}"
            ),
            Self::NoChangelog => write!(
                f,
                "store has no changelog section (built before versioning); \
                 rebuild with `segram index build` to enable incremental updates"
            ),
            Self::Io(err) => write!(f, "I/O error: {err}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

/// Maps a primitive decode error into the file-level vocabulary, tagging
/// it with the section it happened in.
fn from_bin(section: &'static str, err: BinError) -> PersistError {
    match err {
        BinError::UnexpectedEnd { offset, .. } => PersistError::Truncated { offset },
        BinError::ImplausibleLength { offset, claimed } => PersistError::Corrupt {
            section,
            detail: format!("implausible element count {claimed} at byte {offset}"),
        },
    }
}

fn corrupt(section: &'static str, detail: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        section,
        detail: detail.into(),
    }
}

/// Serializes a persisted index to `.sgi` bytes.
///
/// # Examples
///
/// ```
/// use segram_graph::linear_graph;
/// use segram_index::{
///     decode_index, encode_index, GraphIndex, MinimizerScheme, PersistedIndex,
/// };
///
/// let text: segram_graph::DnaSeq = "ACGTTGCAGTCATGCA".repeat(40).parse()?;
/// let graph = linear_graph(&text, 64)?;
/// let index = GraphIndex::build(&graph, MinimizerScheme::new(5, 11), 10);
/// let persisted = PersistedIndex {
///     graph,
///     index,
///     discard_frac: 0.0002,
///     freq_threshold: u32::MAX,
///     changelog: None,
///     provenance: None,
/// };
/// let bytes = encode_index(&persisted);
/// let loaded = decode_index(&bytes).expect("round trip");
/// assert_eq!(loaded.graph.node_count(), persisted.graph.node_count());
/// assert_eq!(
///     loaded.index.distinct_minimizers(),
///     persisted.index.distinct_minimizers()
/// );
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
pub fn encode_index(persisted: &PersistedIndex) -> Vec<u8> {
    let graph_payload = encode_graph(&persisted.graph);
    let index_payload = encode_hash_index(&persisted.index);
    let identity = store_identity(&graph_payload, &index_payload);
    let mut sections = vec![
        (SECTION_GRAPH, graph_payload),
        (SECTION_INDEX, index_payload),
        (SECTION_META, encode_meta(persisted)),
    ];
    if let Some(log) = &persisted.changelog {
        // The identity names the payloads the changelog travels with, so
        // it is stamped here from the actual encoded bytes — callers
        // leave `identity` fields 0 on the entry they append.
        let mut log = log.clone();
        log.identity = identity;
        if let Some(last) = log.history.last_mut() {
            last.identity = identity;
        }
        sections.push((SECTION_CHANGELOG, encode_changelog(&log)));
    }
    let mut header = ByteWriter::new();
    header.put_bytes(&INDEX_MAGIC);
    header.put_u32(INDEX_FORMAT_VERSION);
    header.put_u32(sections.len() as u32);
    let mut offset = 8 + 4 + 4 + sections.len() * TABLE_ENTRY_BYTES;
    for (id, payload) in &sections {
        header.put_u32(*id);
        header.put_u64(offset as u64);
        header.put_u64(payload.len() as u64);
        header.put_u64(fnv1a64(payload));
        offset += payload.len();
    }
    let mut bytes = header.into_bytes();
    for (_, payload) in sections {
        bytes.extend_from_slice(&payload);
    }
    bytes
}

/// Deserializes `.sgi` bytes (see [`encode_index`] for an example).
///
/// # Errors
///
/// Never panics on bad input: returns [`PersistError::BadMagic`],
/// [`PersistError::UnsupportedVersion`], [`PersistError::Truncated`],
/// [`PersistError::ChecksumMismatch`], or [`PersistError::Corrupt`]
/// depending on what the bytes got wrong.
pub fn decode_index(bytes: &[u8]) -> Result<PersistedIndex, PersistError> {
    let mut reader = ByteReader::new(bytes);
    let magic = reader.take_bytes(8).map_err(|e| from_bin("header", e))?;
    if magic != INDEX_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = reader.take_u32().map_err(|e| from_bin("header", e))?;
    if version != INDEX_FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let section_count = reader.take_u32().map_err(|e| from_bin("header", e))?;
    if section_count > MAX_SECTIONS {
        return Err(corrupt(
            "header",
            format!("section count {section_count} exceeds the maximum {MAX_SECTIONS}"),
        ));
    }
    let mut graph_payload: Option<&[u8]> = None;
    let mut index_payload: Option<&[u8]> = None;
    let mut meta_payload: Option<&[u8]> = None;
    let mut changelog_payload: Option<&[u8]> = None;
    for _ in 0..section_count {
        let id = reader.take_u32().map_err(|e| from_bin("header", e))?;
        let offset = reader.take_u64().map_err(|e| from_bin("header", e))? as usize;
        let len = reader.take_u64().map_err(|e| from_bin("header", e))? as usize;
        let checksum = reader.take_u64().map_err(|e| from_bin("header", e))?;
        let (slot, name) = match id {
            SECTION_GRAPH => (&mut graph_payload, "graph"),
            SECTION_INDEX => (&mut index_payload, "index"),
            SECTION_META => (&mut meta_payload, "meta"),
            SECTION_CHANGELOG => (&mut changelog_payload, "changelog"),
            // Unknown sections are skipped (bounds still verified), so a
            // future minor revision can append data old readers ignore.
            _ => {
                section_slice(bytes, offset, len)?;
                continue;
            }
        };
        let payload = section_slice(bytes, offset, len)?;
        if fnv1a64(payload) != checksum {
            return Err(PersistError::ChecksumMismatch { section: name });
        }
        if slot.replace(payload).is_some() {
            return Err(corrupt("header", format!("duplicate section {name:?}")));
        }
    }
    let graph_payload = graph_payload.ok_or_else(|| corrupt("header", "missing graph section"))?;
    let index_payload = index_payload.ok_or_else(|| corrupt("header", "missing index section"))?;
    let meta_payload = meta_payload.ok_or_else(|| corrupt("header", "missing meta section"))?;

    let graph = decode_graph(graph_payload)?;
    let index = decode_hash_index(index_payload, &graph)?;
    let (discard_frac, freq_threshold, provenance) = decode_meta(meta_payload)?;
    let changelog = match changelog_payload {
        Some(payload) => {
            let identity = store_identity(graph_payload, index_payload);
            Some(decode_changelog(payload, identity)?)
        }
        None => None,
    };
    Ok(PersistedIndex {
        graph,
        index,
        discard_frac,
        freq_threshold,
        changelog,
        provenance,
    })
}

/// Writes a persisted index to `path`, returning the file size in bytes.
///
/// The write is atomic with respect to concurrent readers: the bytes go
/// to a same-directory temporary file that is fsynced and then renamed
/// over `path`, so a serve daemon re-reading the file mid-write sees
/// either the old store or the new one, never a torn prefix. On failure
/// the temporary file is removed and `path` is left untouched.
///
/// # Errors
///
/// Propagates filesystem failures as [`PersistError::Io`].
pub fn write_index_file(
    persisted: &PersistedIndex,
    path: impl AsRef<Path>,
) -> Result<u64, PersistError> {
    let path = path.as_ref();
    let bytes = encode_index(persisted);
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "index.sgi".into());
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let staged = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if let Err(err) = staged {
        let _ = fs::remove_file(&tmp);
        return Err(err.into());
    }
    Ok(bytes.len() as u64)
}

/// Loads a persisted index from `path`.
///
/// # Errors
///
/// Filesystem failures surface as [`PersistError::Io`]; malformed content
/// surfaces as the named [`decode_index`] errors, never a panic.
pub fn read_index_file(path: impl AsRef<Path>) -> Result<PersistedIndex, PersistError> {
    let bytes = fs::read(path)?;
    decode_index(&bytes)
}

/// Bounds-checks one section's extent against the whole file.
fn section_slice(bytes: &[u8], offset: usize, len: usize) -> Result<&[u8], PersistError> {
    let end = offset
        .checked_add(len)
        .filter(|&end| end <= bytes.len())
        .ok_or(PersistError::Truncated {
            offset: bytes.len(),
        })?;
    Ok(&bytes[offset..end])
}

fn encode_graph(graph: &GenomeGraph) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(graph.node_count() as u64);
    for node in graph.node_ids() {
        let seq = graph.seq(node).as_slice();
        w.put_u64(seq.len() as u64);
        // 2-bit packing, low bits first within each byte — the paper's
        // reference representation (Section 5).
        for chunk in seq.chunks(4) {
            let mut byte = 0u8;
            for (i, base) in chunk.iter().enumerate() {
                byte |= base.code() << (2 * i);
            }
            w.put_u8(byte);
        }
    }
    w.put_u64(graph.edge_count() as u64);
    for (from, to) in graph.edges() {
        w.put_u32(from.0);
        w.put_u32(to.0);
    }
    w.into_bytes()
}

fn decode_graph(payload: &[u8]) -> Result<GenomeGraph, PersistError> {
    const SECTION: &str = "graph";
    let bin = |e| from_bin(SECTION, e);
    let mut r = ByteReader::new(payload);
    // A node costs at least 9 bytes (length prefix + one packed byte).
    let node_count = r.take_count(9).map_err(bin)?;
    let mut builder = GraphBuilder::new();
    for n in 0..node_count {
        let len = usize::try_from(r.take_u64().map_err(bin)?)
            .map_err(|_| corrupt(SECTION, format!("node {n}: length overflows usize")))?;
        if len == 0 {
            return Err(corrupt(SECTION, format!("node {n} is empty")));
        }
        let packed = r.take_bytes(len.div_ceil(4)).map_err(bin)?;
        let seq: DnaSeq = (0..len)
            .map(|i| Base::from_code_masked(packed[i / 4] >> (2 * (i % 4))))
            .collect();
        builder
            .add_node(seq)
            .map_err(|e| corrupt(SECTION, format!("node {n}: {e}")))?;
    }
    let edge_count = r.take_count(8).map_err(bin)?;
    for e in 0..edge_count {
        let from = NodeId(r.take_u32().map_err(bin)?);
        let to = NodeId(r.take_u32().map_err(bin)?);
        builder
            .add_edge(from, to)
            .map_err(|err| corrupt(SECTION, format!("edge {e} ({from} -> {to}): {err}")))?;
    }
    if !r.is_empty() {
        return Err(corrupt(
            SECTION,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    builder
        .finish()
        .map_err(|e| corrupt(SECTION, e.to_string()))
}

fn encode_hash_index(index: &GraphIndex) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(index.scheme.w as u64);
    w.put_u64(index.scheme.k as u64);
    w.put_u8(match index.scheme.ordering {
        KmerOrdering::Hash => 0,
        KmerOrdering::Lexicographic => 1,
    });
    w.put_u32(index.bucket_bits);
    w.put_u64(index.bucket_starts.len() as u64);
    for &start in &index.bucket_starts {
        w.put_u32(start);
    }
    w.put_u64(index.minimizers.len() as u64);
    for entry in &index.minimizers {
        w.put_u64(entry.hash);
        w.put_u32(entry.loc_start);
        w.put_u32(entry.loc_count);
    }
    w.put_u64(index.locations.len() as u64);
    for loc in &index.locations {
        w.put_u32(loc.node.0);
        w.put_u32(loc.offset);
    }
    w.into_bytes()
}

/// Decodes the hash-index section and re-validates every structural
/// invariant [`GraphIndex::build`] guarantees — bucket ranges, sorted
/// hashes, contiguous location runs, in-graph positions — so a loaded
/// index can never panic (or silently mis-answer) a later lookup.
fn decode_hash_index(payload: &[u8], graph: &GenomeGraph) -> Result<GraphIndex, PersistError> {
    const SECTION: &str = "index";
    let bin = |e| from_bin(SECTION, e);
    let mut r = ByteReader::new(payload);
    let w = usize::try_from(r.take_u64().map_err(bin)?)
        .map_err(|_| corrupt(SECTION, "scheme w overflows usize"))?;
    let k = usize::try_from(r.take_u64().map_err(bin)?)
        .map_err(|_| corrupt(SECTION, "scheme k overflows usize"))?;
    if w == 0 || k == 0 || k > 31 {
        return Err(corrupt(SECTION, format!("invalid scheme <w={w}, k={k}>")));
    }
    let ordering = match r.take_u8().map_err(bin)? {
        0 => KmerOrdering::Hash,
        1 => KmerOrdering::Lexicographic,
        other => return Err(corrupt(SECTION, format!("unknown k-mer ordering {other}"))),
    };
    let scheme = MinimizerScheme { w, k, ordering };
    let bucket_bits = r.take_u32().map_err(bin)?;
    if !(1..=32).contains(&bucket_bits) {
        return Err(corrupt(
            SECTION,
            format!("bucket_bits {bucket_bits} not in 1..=32"),
        ));
    }
    let bucket_count = 1u64 << bucket_bits;

    let starts_len = r.take_count(4).map_err(bin)?;
    if starts_len as u64 != bucket_count + 1 {
        return Err(corrupt(
            SECTION,
            format!("{starts_len} bucket starts for 2^{bucket_bits} buckets"),
        ));
    }
    let mut bucket_starts = Vec::with_capacity(starts_len);
    for _ in 0..starts_len {
        bucket_starts.push(r.take_u32().map_err(bin)?);
    }
    if bucket_starts[0] != 0 {
        return Err(corrupt(SECTION, "first bucket start is not 0"));
    }
    if bucket_starts.windows(2).any(|p| p[0] > p[1]) {
        return Err(corrupt(SECTION, "bucket starts are not non-decreasing"));
    }

    let minimizer_count = r.take_count(16).map_err(bin)?;
    if *bucket_starts.last().expect("non-empty") as usize != minimizer_count {
        return Err(corrupt(
            SECTION,
            "last bucket start does not equal the minimizer count",
        ));
    }
    let mut minimizers = Vec::with_capacity(minimizer_count);
    let mut next_loc_start = 0u64;
    for m in 0..minimizer_count {
        let hash = r.take_u64().map_err(bin)?;
        let loc_start = r.take_u32().map_err(bin)?;
        let loc_count = r.take_u32().map_err(bin)?;
        // Location runs must tile the third level exactly, in order.
        if u64::from(loc_start) != next_loc_start || loc_count == 0 {
            return Err(corrupt(
                SECTION,
                format!("minimizer {m}: non-contiguous location run"),
            ));
        }
        next_loc_start += u64::from(loc_count);
        minimizers.push(MinimizerEntry {
            hash,
            loc_start,
            loc_count,
        });
    }
    // Per-bucket invariants: every entry hashes into its bucket and
    // hashes are strictly increasing within it (binary-search order).
    for bucket in 0..bucket_count as usize {
        let range = bucket_starts[bucket] as usize..bucket_starts[bucket + 1] as usize;
        let entries = &minimizers[range];
        for pair in entries.windows(2) {
            if pair[0].hash >= pair[1].hash {
                return Err(corrupt(
                    SECTION,
                    format!("bucket {bucket}: hashes not strictly increasing"),
                ));
            }
        }
        for entry in entries {
            if entry.hash % bucket_count != bucket as u64 {
                return Err(corrupt(
                    SECTION,
                    format!("hash {:#x} filed under bucket {bucket}", entry.hash),
                ));
            }
        }
    }

    let location_count = r.take_count(8).map_err(bin)?;
    if location_count as u64 != next_loc_start {
        return Err(corrupt(
            SECTION,
            "location count does not match the minimizer runs",
        ));
    }
    let mut locations = Vec::with_capacity(location_count);
    for l in 0..location_count {
        let node = NodeId(r.take_u32().map_err(bin)?);
        let offset = r.take_u32().map_err(bin)?;
        if node.index() >= graph.node_count() || offset as usize >= graph.node_len(node) {
            return Err(corrupt(
                SECTION,
                format!("location {l} ({node}:{offset}) is outside the graph"),
            ));
        }
        locations.push(GraphPos { node, offset });
    }
    if !r.is_empty() {
        return Err(corrupt(
            SECTION,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(GraphIndex {
        scheme,
        bucket_bits,
        bucket_starts,
        minimizers,
        locations,
    })
}

fn encode_meta(persisted: &PersistedIndex) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(persisted.discard_frac.to_bits());
    w.put_u32(persisted.freq_threshold);
    // Provenance rides as an optional tail: pre-provenance readers saw
    // exactly the two fields above, and presence is signalled purely by
    // there being more bytes.
    if let Some(p) = &persisted.provenance {
        w.put_u32(PROVENANCE_VERSION);
        put_string(&mut w, &p.reference_path);
        w.put_u64(p.vcf_paths.len() as u64);
        for path in &p.vcf_paths {
            put_string(&mut w, path);
        }
        put_string(&mut w, &p.preset);
        w.put_u64(p.epoch);
    }
    w.into_bytes()
}

fn decode_meta(payload: &[u8]) -> Result<(f64, u32, Option<IndexProvenance>), PersistError> {
    const SECTION: &str = "meta";
    let bin = |e| from_bin(SECTION, e);
    let mut r = ByteReader::new(payload);
    let discard_frac = f64::from_bits(r.take_u64().map_err(bin)?);
    if !(0.0..=1.0).contains(&discard_frac) {
        return Err(corrupt(
            SECTION,
            format!("discard fraction {discard_frac} not in 0..=1"),
        ));
    }
    let freq_threshold = r.take_u32().map_err(bin)?;
    let provenance = if r.is_empty() {
        None
    } else {
        let version = r.take_u32().map_err(bin)?;
        if version != PROVENANCE_VERSION {
            return Err(corrupt(
                SECTION,
                format!("unknown provenance version {version}"),
            ));
        }
        let reference_path = take_string(SECTION, &mut r)?;
        let vcf_count = r.take_count(8).map_err(bin)?;
        let mut vcf_paths = Vec::with_capacity(vcf_count);
        for _ in 0..vcf_count {
            vcf_paths.push(take_string(SECTION, &mut r)?);
        }
        let preset = take_string(SECTION, &mut r)?;
        let epoch = r.take_u64().map_err(bin)?;
        Some(IndexProvenance {
            reference_path,
            vcf_paths,
            preset,
            epoch,
        })
    };
    if !r.is_empty() {
        return Err(corrupt(
            SECTION,
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok((discard_frac, freq_threshold, provenance))
}

fn put_string(w: &mut ByteWriter, s: &str) {
    w.put_u64(s.len() as u64);
    w.put_bytes(s.as_bytes());
}

fn take_string(section: &'static str, r: &mut ByteReader<'_>) -> Result<String, PersistError> {
    let len = r.take_count(1).map_err(|e| from_bin(section, e))?;
    let bytes = r.take_bytes(len).map_err(|e| from_bin(section, e))?;
    String::from_utf8(bytes.to_vec()).map_err(|_| corrupt(section, "string is not UTF-8"))
}

/// 2-bit packed sequence, same layout as the graph section's node
/// payloads: length prefix, then low-bits-first packed bases.
fn put_seq(w: &mut ByteWriter, seq: &DnaSeq) {
    let bases = seq.as_slice();
    w.put_u64(bases.len() as u64);
    for chunk in bases.chunks(4) {
        let mut byte = 0u8;
        for (i, base) in chunk.iter().enumerate() {
            byte |= base.code() << (2 * i);
        }
        w.put_u8(byte);
    }
}

fn take_seq(section: &'static str, r: &mut ByteReader<'_>) -> Result<DnaSeq, PersistError> {
    let len = usize::try_from(r.take_u64().map_err(|e| from_bin(section, e))?)
        .map_err(|_| corrupt(section, "sequence length overflows usize"))?;
    let packed = r
        .take_bytes(len.div_ceil(4))
        .map_err(|e| from_bin(section, e))?;
    Ok((0..len)
        .map(|i| Base::from_code_masked(packed[i / 4] >> (2 * (i % 4))))
        .collect())
}

fn put_variant(w: &mut ByteWriter, v: &Variant) {
    match &v.kind {
        VariantKind::Snp { alt } => {
            w.put_u8(0);
            w.put_u64(v.pos);
            w.put_u8(alt.code());
        }
        VariantKind::Insertion { seq } => {
            w.put_u8(1);
            w.put_u64(v.pos);
            put_seq(w, seq);
        }
        VariantKind::Deletion { len } => {
            w.put_u8(2);
            w.put_u64(v.pos);
            w.put_u64(*len);
        }
        VariantKind::Replacement { ref_len, alt } => {
            w.put_u8(3);
            w.put_u64(v.pos);
            w.put_u64(*ref_len);
            put_seq(w, alt);
        }
    }
}

fn take_variant(section: &'static str, r: &mut ByteReader<'_>) -> Result<Variant, PersistError> {
    let bin = |e| from_bin(section, e);
    let tag = r.take_u8().map_err(bin)?;
    let pos = r.take_u64().map_err(bin)?;
    let kind = match tag {
        0 => VariantKind::Snp {
            alt: Base::from_code_masked(r.take_u8().map_err(bin)?),
        },
        1 => {
            let seq = take_seq(section, r)?;
            if seq.is_empty() {
                return Err(corrupt(section, "empty insertion sequence"));
            }
            VariantKind::Insertion { seq }
        }
        2 => {
            let len = r.take_u64().map_err(bin)?;
            if len == 0 {
                return Err(corrupt(section, "zero-length deletion"));
            }
            VariantKind::Deletion { len }
        }
        3 => {
            let ref_len = r.take_u64().map_err(bin)?;
            let alt = take_seq(section, r)?;
            if ref_len == 0 || alt.is_empty() {
                return Err(corrupt(section, "degenerate replacement"));
            }
            VariantKind::Replacement { ref_len, alt }
        }
        other => return Err(corrupt(section, format!("unknown variant tag {other}"))),
    };
    Ok(Variant { pos, kind })
}

fn encode_changelog(log: &StoreChangelog) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(CHANGELOG_VERSION);
    w.put_u64(log.epoch);
    w.put_u64(log.parent);
    w.put_u64(log.identity);
    put_seq(&mut w, &log.reference);
    w.put_u64(log.applied.len() as u64);
    for variant in log.applied.iter() {
        put_variant(&mut w, variant);
    }
    w.put_u64(log.history.len() as u64);
    for entry in &log.history {
        w.put_u64(entry.epoch);
        w.put_u64(entry.parent);
        w.put_u64(entry.identity);
        put_string(&mut w, &entry.source);
        w.put_u64(entry.added_variants);
        w.put_u64(entry.dropped_variants);
        w.put_u64(entry.touched.len() as u64);
        for &(start, end) in &entry.touched {
            w.put_u64(start);
            w.put_u64(end);
        }
    }
    w.into_bytes()
}

/// Decodes and *verifies* the changelog chain: the recorded identity must
/// match `computed_identity` (the checksum of the graph/index payloads
/// the changelog arrived with), history entries must carry consecutive
/// epochs, and each entry's parent must be its predecessor's identity —
/// the same linkage a git history gives commits. A changelog that was
/// spliced onto the wrong store, re-ordered, or hand-edited fails with
/// [`PersistError::ParentMismatch`] / [`PersistError::EpochSkew`] instead
/// of silently seeding a bad delta chain.
fn decode_changelog(
    payload: &[u8],
    computed_identity: u64,
) -> Result<StoreChangelog, PersistError> {
    const SECTION: &str = "changelog";
    let bin = |e| from_bin(SECTION, e);
    let mut r = ByteReader::new(payload);
    let version = r.take_u32().map_err(bin)?;
    if version != CHANGELOG_VERSION {
        return Err(corrupt(
            SECTION,
            format!("unknown changelog version {version}"),
        ));
    }
    let epoch = r.take_u64().map_err(bin)?;
    let parent = r.take_u64().map_err(bin)?;
    let identity = r.take_u64().map_err(bin)?;
    let reference = take_seq(SECTION, &mut r)?;
    let applied_count = r.take_count(9).map_err(bin)?;
    let mut applied = VariantSet::new();
    for _ in 0..applied_count {
        let variant = take_variant(SECTION, &mut r)?;
        let (_, end) = variant.ref_interval();
        if end > reference.len() as u64 {
            return Err(corrupt(
                SECTION,
                format!("variant at {} runs past the reference", variant.pos),
            ));
        }
        applied.push(variant);
    }
    let history_count = r.take_count(8 * 6).map_err(bin)?;
    let mut history = Vec::with_capacity(history_count);
    for _ in 0..history_count {
        let entry_epoch = r.take_u64().map_err(bin)?;
        let entry_parent = r.take_u64().map_err(bin)?;
        let entry_identity = r.take_u64().map_err(bin)?;
        let source = take_string(SECTION, &mut r)?;
        let added_variants = r.take_u64().map_err(bin)?;
        let dropped_variants = r.take_u64().map_err(bin)?;
        let touched_count = r.take_count(16).map_err(bin)?;
        let mut touched = Vec::with_capacity(touched_count);
        for _ in 0..touched_count {
            let start = r.take_u64().map_err(bin)?;
            let end = r.take_u64().map_err(bin)?;
            touched.push((start, end));
        }
        history.push(EpochEntry {
            epoch: entry_epoch,
            parent: entry_parent,
            identity: entry_identity,
            source,
            added_variants,
            dropped_variants,
            touched,
        });
    }
    if !r.is_empty() {
        return Err(corrupt(
            SECTION,
            format!("{} trailing bytes", r.remaining()),
        ));
    }

    if history.is_empty() {
        return Err(corrupt(SECTION, "empty epoch history"));
    }
    for (i, entry) in history.iter().enumerate() {
        if entry.epoch != i as u64 {
            return Err(PersistError::EpochSkew {
                expected: i as u64,
                found: entry.epoch,
            });
        }
        let expected_parent = if i == 0 { 0 } else { history[i - 1].identity };
        if entry.parent != expected_parent {
            return Err(PersistError::ParentMismatch {
                expected: expected_parent,
                found: entry.parent,
            });
        }
    }
    let last = history.last().expect("non-empty");
    if epoch != last.epoch {
        return Err(PersistError::EpochSkew {
            expected: last.epoch,
            found: epoch,
        });
    }
    if parent != last.parent {
        return Err(PersistError::ParentMismatch {
            expected: last.parent,
            found: parent,
        });
    }
    if identity != last.identity {
        return Err(PersistError::ParentMismatch {
            expected: last.identity,
            found: identity,
        });
    }
    // The chain must name the store it travels with: a changelog spliced
    // from another file fails here even though its internal links hold.
    if identity != computed_identity {
        return Err(PersistError::ParentMismatch {
            expected: computed_identity,
            found: identity,
        });
    }
    Ok(StoreChangelog {
        epoch,
        parent,
        identity,
        reference,
        applied,
        history,
    })
}
