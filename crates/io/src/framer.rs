//! Raw FASTQ framing: byte-level record slicing for the overlapped map
//! engine input path.
//!
//! [`FastqReader`](crate::FastqReader) parses records inline — UTF-8
//! validation, base decoding, Phred conversion — which is exactly the
//! work a multi-threaded consumer wants *off* the producer thread: when
//! the reader feeds `segram_core`'s `MapEngine`, every worker serializes
//! behind the single thread doing the parsing. [`FastqFramer`] splits the
//! job: the producer only scans bytes for record boundaries (newline
//! counting over block reads) and hands out [`RawFastqRecord`] frames;
//! [`RawFastqRecord::decode`] — the expensive half — runs wherever the
//! consumer wants, typically inside the worker pool, and is guaranteed to
//! behave byte-for-byte like `FastqReader` (same records, same errors,
//! same line numbers) because it *is* the same parser, pointed at the
//! frame.
//!
//! Both front-ends share one boundary scanner ([`FrameScanner`], a push
//! parser fed arbitrary byte chunks): `FastqFramer` feeds it block reads
//! on the producer thread, and [`FastqSplice`] feeds it inflated BGZF
//! payloads *in block order from worker threads* — a record straddling a
//! BGZF block boundary is carried over inside the scanner, so the
//! compressed path frames exactly the records the plain path would.
//!
//! ```
//! use segram_io::{Ambiguity, FastqFramer};
//!
//! let bytes: &[u8] = b"@r1\nACGT\n+\nIIII\n";
//! let mut framer = FastqFramer::new(bytes);
//! let raw = framer.next().unwrap().unwrap();
//! assert_eq!(raw.line(), 1);
//! let record = raw.decode(Ambiguity::Reject).unwrap();
//! assert_eq!(record.id, "r1");
//! assert!(framer.next().is_none());
//! ```

use std::collections::VecDeque;
use std::io::{self, Read};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

use crate::fasta::Ambiguity;
use crate::fastq::{decode_framed, FastqRecord};
use crate::stream::StreamError;

/// Default block size of [`FastqFramer`]'s block reads.
pub const FRAMER_BLOCK: usize = 64 * 1024;

/// One framed FASTQ record: the raw bytes of its lines (endings
/// included), still undecoded, plus the 1-based line number of its
/// header — everything [`decode`](Self::decode) needs to reproduce
/// [`FastqReader`](crate::FastqReader)'s behaviour exactly, including
/// error line numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawFastqRecord {
    bytes: Vec<u8>,
    line: usize,
}

impl RawFastqRecord {
    /// 1-based line number of the record's header line in the source.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The record's raw bytes: its header line and up to three following
    /// lines, verbatim (line endings included; fewer lines only at a
    /// truncated end of input).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Parses the frame into a [`FastqRecord`] — the decode half of the
    /// split reader, safe to run on any thread.
    ///
    /// # Errors
    ///
    /// Returns exactly the [`StreamError`] a [`FastqReader`] reading the
    /// whole source would report for this record (same variant, same line
    /// number): truncation, bad markers, length mismatches, invalid
    /// bases or quality characters, invalid UTF-8.
    ///
    /// [`FastqReader`]: crate::FastqReader
    pub fn decode(&self, ambiguity: Ambiguity) -> Result<FastqRecord, StreamError> {
        decode_framed(&self.bytes, self.line, ambiguity)
    }
}

/// The shared record-boundary scanner: a push parser fed arbitrary byte
/// chunks that emits complete four-line [`RawFastqRecord`] frames and
/// carries partial lines/records across chunk boundaries. It never
/// inspects record *contents* — it only counts lines (skipping the blank
/// lines between records that [`FastqReader`](crate::FastqReader)
/// tolerates) and slices frames; judging the lines is `decode`'s job.
///
/// [`FastqFramer`] drives it with block reads; [`FastqSplice`] drives it
/// with inflated BGZF payloads. One implementation means the two paths
/// cannot drift.
#[derive(Debug, Default)]
pub struct FrameScanner {
    /// Bytes of an incomplete final line, carried to the next chunk.
    tail: Vec<u8>,
    /// 1-based count of lines fed so far.
    line: usize,
    /// Accumulated lines of the in-progress record.
    current: Vec<u8>,
    /// Header line number of the in-progress record.
    record_line: usize,
    /// Complete lines in the in-progress record (0..=3).
    lines_in_record: usize,
}

impl FrameScanner {
    /// A scanner with nothing buffered.
    pub fn new() -> Self {
        Self::default()
    }

    /// 1-based number of lines consumed so far (a carried partial line
    /// does not count until it completes or the stream ends).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Feeds one chunk, appending every record it completes to `out`.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<RawFastqRecord>) {
        let mut rest = chunk;
        while let Some(newline) = rest.iter().position(|&b| b == b'\n') {
            let (line, remainder) = rest.split_at(newline + 1);
            rest = remainder;
            if self.tail.is_empty() {
                self.feed_line(line, out);
            } else {
                let mut whole = std::mem::take(&mut self.tail);
                whole.extend_from_slice(line);
                self.feed_line(&whole, out);
            }
        }
        self.tail.extend_from_slice(rest);
    }

    /// Ends the stream: a final unterminated line still counts (mirroring
    /// `BufRead::read_until`), and a partial record is emitted for decode
    /// to report as truncation with the right line numbers.
    pub fn finish(&mut self, out: &mut Vec<RawFastqRecord>) {
        if !self.tail.is_empty() {
            let tail = std::mem::take(&mut self.tail);
            self.feed_line(&tail, out);
        }
        if self.lines_in_record > 0 {
            out.push(RawFastqRecord {
                bytes: std::mem::take(&mut self.current),
                line: self.record_line,
            });
            self.lines_in_record = 0;
        }
    }

    /// Consumes one complete raw line (terminator included, except for an
    /// unterminated final line).
    fn feed_line(&mut self, line: &[u8], out: &mut Vec<RawFastqRecord>) {
        self.line += 1;
        if self.lines_in_record == 0 {
            // Skip blank lines between records, exactly as FastqReader
            // does (its line counter advances over them too).
            if is_blank(line) {
                return;
            }
            self.record_line = self.line;
        }
        self.current.extend_from_slice(line);
        self.lines_in_record += 1;
        if self.lines_in_record == 4 {
            out.push(RawFastqRecord {
                bytes: std::mem::take(&mut self.current),
                line: self.record_line,
            });
            self.lines_in_record = 0;
        }
    }
}

/// A byte-scanning FASTQ record framer over block reads: the
/// producer-side half of the split reader (see the module docs).
///
/// Iterating costs a newline scan plus one memcpy per record; the reads
/// are synchronous on the calling thread — the pipeline-level IO/compute
/// overlap comes from this framer living on the *producer* thread while
/// decoding and mapping run in the worker pool. Transport errors surface
/// here (after any records already sliced from earlier blocks); format
/// errors surface from [`RawFastqRecord::decode`].
#[derive(Debug)]
pub struct FastqFramer<R: Read> {
    source: R,
    scanner: FrameScanner,
    /// Records sliced but not yet yielded.
    ready: VecDeque<RawFastqRecord>,
    /// Reusable block read buffer.
    block: Vec<u8>,
    /// Block size of each read.
    block_size: usize,
    /// Set after end-of-input or a transport error; the iterator fuses.
    done: bool,
}

impl<R: Read> FastqFramer<R> {
    /// Wraps a byte source with the default block size.
    pub fn new(source: R) -> Self {
        Self::with_block_size(source, FRAMER_BLOCK)
    }

    /// Wraps a byte source with an explicit block size (clamped to at
    /// least 1). Small blocks are useful in tests to exercise records
    /// straddling block boundaries.
    pub fn with_block_size(source: R, block_size: usize) -> Self {
        Self {
            source,
            scanner: FrameScanner::new(),
            ready: VecDeque::new(),
            block: Vec::new(),
            block_size: block_size.max(1),
            done: false,
        }
    }

    /// 1-based number of the last line consumed from the source.
    pub fn line(&self) -> usize {
        self.scanner.line()
    }
}

/// Whether a raw line is blank once its `\n`/`\r\n` terminator is
/// stripped — the framing-level mirror of `FastqReader`'s blank check.
fn is_blank(line: &[u8]) -> bool {
    let line = line.strip_suffix(b"\n").unwrap_or(line);
    let line = line.strip_suffix(b"\r").unwrap_or(line);
    line.is_empty()
}

impl<R: Read> Iterator for FastqFramer<R> {
    type Item = Result<RawFastqRecord, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(raw) = self.ready.pop_front() {
                return Some(Ok(raw));
            }
            if self.done {
                return None;
            }
            self.block.resize(self.block_size, 0);
            let n = loop {
                match self.source.read(&mut self.block) {
                    Ok(n) => break n,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                    Err(err) => {
                        self.done = true;
                        return Some(Err(StreamError::Io(err)));
                    }
                }
            };
            let mut out = Vec::new();
            if n == 0 {
                self.done = true;
                self.scanner.finish(&mut out);
            } else {
                self.scanner.push(&self.block[..n], &mut out);
            }
            self.ready.extend(out);
        }
    }
}

/// The carry-over splice for worker-stage inflation: re-joins records
/// that straddle BGZF block boundaries while inflation itself runs in
/// parallel.
///
/// Workers inflate their blocks concurrently, then enter this turnstile
/// *in block-index order* to feed the shared [`FrameScanner`]: the call
/// for block `i` blocks until blocks `0..i` have been spliced, appends
/// its bytes, and collects whatever records completed. Because the
/// scanner is the same one `FastqFramer` uses, the record stream (ids,
/// line numbers, truncation errors) is identical to framing the plain
/// uncompressed bytes.
///
/// Deadlock safety: this turnstile is only sound when block indices are
/// assigned in the order workers pick them up — true for the fanout
/// engine's single shared FIFO queue, where the worker holding the
/// minimum unspliced index is never the one waiting. Multi-queue
/// schedules (elastic) could park every worker of one pool behind an
/// index queued on another, so compressed input is restricted to the
/// fanout schedule at the CLI layer. The wait also polls `cancelled`
/// every 50 ms, so a cancelled run (sink failure, upstream error) can
/// never strand a worker whose predecessor block was abandoned.
#[derive(Debug, Default)]
pub struct FastqSplice {
    state: Mutex<SpliceState>,
    turn: Condvar,
}

#[derive(Debug, Default)]
struct SpliceState {
    /// The next block index allowed through the turnstile.
    next: usize,
    scanner: FrameScanner,
    /// Set once the final block has been spliced and flushed.
    finished: bool,
}

impl FastqSplice {
    /// A splice expecting block 0 first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Splices block `index`'s inflated bytes into the shared scanner,
    /// returning the records that completed. `last` flushes the carry
    /// (the stream's final, possibly partial, record). Returns `None` —
    /// without splicing — when `cancelled` reports the run is over while
    /// an earlier block still has not arrived (it never will).
    ///
    /// Blocks until every earlier index has been spliced; see the type
    /// docs for why that wait is deadlock-free under the fanout engine.
    pub fn splice(
        &self,
        index: usize,
        bytes: &[u8],
        last: bool,
        cancelled: impl Fn() -> bool,
    ) -> Option<Vec<RawFastqRecord>> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.next != index {
            // Our turn will never come if the run was cancelled after a
            // predecessor block was dropped unspliced. When it *is* our
            // turn we proceed even under cancellation: the engine's
            // settle path relies on in-order splicing to pin down the
            // first error deterministically.
            if cancelled() {
                return None;
            }
            state = self
                .turn
                .wait_timeout(state, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        let mut out = Vec::new();
        if !state.finished {
            state.scanner.push(bytes, &mut out);
            if last {
                state.scanner.finish(&mut out);
                state.finished = true;
            }
        }
        state.next = index + 1;
        drop(state);
        self.turn.notify_all();
        Some(out)
    }

    /// 1-based number of lines spliced so far.
    pub fn line(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .scanner
            .line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastq::read_fastq;

    fn frames(text: &str, block: usize) -> Vec<RawFastqRecord> {
        FastqFramer::with_block_size(text.as_bytes(), block)
            .map(|r| r.expect("in-memory source cannot fail"))
            .collect()
    }

    #[test]
    fn frames_agree_with_batch_parser_across_block_sizes() {
        let text = "@r1 first\nACGT\n+\nII5I\n\n@r2\nTTAA\n+anything\n!!!!\n";
        let batch = read_fastq(text, Ambiguity::Reject).unwrap();
        for block in [1usize, 2, 3, 7, 64, FRAMER_BLOCK] {
            let decoded: Vec<FastqRecord> = frames(text, block)
                .iter()
                .map(|raw| raw.decode(Ambiguity::Reject).expect("well-formed"))
                .collect();
            assert_eq!(decoded, batch, "block size {block}");
        }
    }

    #[test]
    fn frames_carry_header_line_numbers_past_blanks_and_crlf() {
        let text = "\r\n\n@r1\r\nACGT\r\n+\r\nIIII\r\n\n@r2\nTT\n+\nII\n";
        let raw = frames(text, 4);
        assert_eq!(raw.len(), 2);
        assert_eq!(raw[0].line(), 3);
        assert_eq!(raw[1].line(), 8);
        let rec = raw[0].decode(Ambiguity::Reject).unwrap();
        assert_eq!(rec.id, "r1");
        assert_eq!(rec.seq.to_string(), "ACGT");
    }

    #[test]
    fn truncated_tail_decodes_to_the_reader_error() {
        // Frame the truncated record, then check decode reports the same
        // UnexpectedEof line the streaming reader would.
        let text = "@r1\nACGT\n+\nIIII\n@r2\nTT\n";
        let raw = frames(text, 5);
        assert_eq!(raw.len(), 2);
        assert!(raw[0].decode(Ambiguity::Reject).is_ok());
        let err = raw[1].decode(Ambiguity::Reject).unwrap_err();
        let direct = crate::FastqReader::new(text.as_bytes(), Ambiguity::Reject)
            .nth(1)
            .unwrap()
            .unwrap_err();
        assert_eq!(format!("{err:?}"), format!("{direct:?}"));
    }

    #[test]
    fn unterminated_final_line_is_framed() {
        let raw = frames("@r1\nACGT\n+\nIIII", 3);
        assert_eq!(raw.len(), 1);
        let rec = raw[0].decode(Ambiguity::Reject).unwrap();
        assert_eq!(rec.qual.len(), 4);
    }

    #[test]
    fn empty_and_blank_only_sources_frame_nothing() {
        assert!(frames("", 8).is_empty());
        assert!(frames("\n\r\n\n", 2).is_empty());
    }

    #[test]
    fn scanner_chunking_is_invisible() {
        // Feeding the same bytes in any chunking yields the same frames
        // as the framer over the whole text — including a chunk boundary
        // inside a CRLF ending.
        let text = b"@r1\r\nACGT\r\n+\r\nIIII\r\n@r2\nTTAA\n+\nJJJJ";
        let whole = frames(std::str::from_utf8(text).unwrap(), FRAMER_BLOCK);
        for chunk_size in 1..=text.len() {
            let mut scanner = FrameScanner::new();
            let mut out = Vec::new();
            for chunk in text.chunks(chunk_size) {
                scanner.push(chunk, &mut out);
            }
            scanner.finish(&mut out);
            assert_eq!(out, whole, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn splice_reorders_out_of_order_blocks() {
        // Three "blocks" spliced from three threads in reverse arrival
        // order must still produce the in-order record stream.
        let parts: [&[u8]; 3] = [b"@r1\nAC", b"GT\n+\nII", b"II\n@r2\nTT\n+\nJJ\n"];
        let splice = FastqSplice::new();
        let collected: Mutex<Vec<(usize, Vec<RawFastqRecord>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (index, part) in parts.iter().enumerate().rev() {
                let splice = &splice;
                let collected = &collected;
                scope.spawn(move || {
                    let records = splice
                        .splice(index, part, index == parts.len() - 1, || false)
                        .expect("not cancelled");
                    collected.lock().unwrap().push((index, records));
                });
                // Give the out-of-order thread a head start so the wait
                // path is actually exercised.
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let mut by_index = collected.into_inner().unwrap();
        by_index.sort_by_key(|(index, _)| *index);
        let records: Vec<RawFastqRecord> = by_index
            .into_iter()
            .flat_map(|(_, records)| records)
            .collect();
        let plain: Vec<u8> = parts.concat();
        let expected = frames(std::str::from_utf8(&plain).unwrap(), FRAMER_BLOCK);
        assert_eq!(records, expected);
    }

    #[test]
    fn cancelled_splice_waiting_on_a_lost_block_gives_up() {
        let splice = FastqSplice::new();
        // Block 1 arrives but block 0 never will; a cancelled run must
        // not hang.
        assert_eq!(splice.splice(1, b"@r\n", true, || true), None);
        // The turnstile still admits block 0 afterwards.
        assert!(splice.splice(0, b"", false, || false).is_some());
    }
}
