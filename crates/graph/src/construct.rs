//! Graph-based reference generation: builds a topologically sorted genome
//! graph from a linear reference plus a set of known variants, playing the
//! role of the paper's `vg construct` + `vg ids -s` pre-processing step
//! (Section 5).

use crate::{DnaSeq, GenomeGraph, GraphBuilder, GraphError, NodeId, VariantSet};

/// Outcome of [`build_graph`]: the graph plus bookkeeping useful for
/// experiments.
#[derive(Clone, Debug)]
pub struct ConstructedGraph {
    /// The topologically sorted genome graph.
    pub graph: GenomeGraph,
    /// Node that carries reference position 0 (the backbone head), when the
    /// reference is non-empty.
    pub backbone_head: Option<NodeId>,
    /// For every node, the reference coordinate its interval starts at.
    /// Alternative-allele nodes report the start of the interval they
    /// replace; insertion nodes report their anchor position.
    pub ref_starts: Vec<u64>,
    /// For every node, whether it is part of the linear reference backbone.
    pub is_backbone: Vec<bool>,
    /// Number of variants dropped because they overlapped earlier variants.
    pub dropped_variants: usize,
    /// Number of variants embedded in the graph.
    pub embedded_variants: usize,
    /// The embedded variant set (sorted, overlap-dropped) — the exact
    /// input a later [`apply_variants`](crate::apply_variants) call needs
    /// to evolve this graph incrementally.
    pub applied: VariantSet,
}

impl ConstructedGraph {
    /// Convenience accessor for the graph's statistics.
    pub fn stats(&self) -> crate::GraphStats {
        self.graph.stats()
    }
}

/// Builds a genome graph from a linear reference and a variant set.
///
/// The construction mirrors `vg construct`:
///
/// 1. the reference is split at every variant boundary into *backbone*
///    segments;
/// 2. every variant contributes an *alternative* node carrying its alt
///    allele (deletions contribute only a skip edge);
/// 3. junctions are wired so every combination of alleles at distinct sites
///    is a path.
///
/// Node ids are assigned in reference-coordinate order with insertions
/// before the backbone segment at the same coordinate, which makes the
/// output **topologically sorted by construction** (asserted in debug
/// builds and covered by tests) — the property the alignment step requires
/// (Section 5: "we need to make sure the nodes of each graph are
/// topologically sorted").
///
/// Overlapping variants are dropped (first-come-first-kept), matching the
/// behaviour of graph constructors that reject conflicting records.
///
/// # Errors
///
/// Returns an error when a variant lies outside the reference or the
/// reference is empty.
///
/// # Examples
///
/// ```
/// use segram_graph::{build_graph, Base, Variant, VariantSet};
///
/// // Figure 1: ACGTACGT with a SNP (T->G), an insertion (T) and a deletion.
/// let reference = "ACGTACGT".parse()?;
/// let variants: VariantSet = [
///     Variant::snp(3, Base::G),
///     Variant::insertion(4, "T".parse()?),
///     Variant::deletion(3, 1),
/// ]
/// .into_iter()
/// .collect();
/// let built = build_graph(&reference, variants)?;
/// assert!(built.graph.is_topologically_sorted());
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
pub fn build_graph(
    reference: &DnaSeq,
    variants: VariantSet,
) -> Result<ConstructedGraph, GraphError> {
    if reference.is_empty() {
        return Err(GraphError::EmptyNode);
    }
    let ref_len = reference.len() as u64;
    let mut variants = variants.into_sorted();
    for v in variants.iter() {
        let (start, end) = v.ref_interval();
        if start > ref_len || end > ref_len {
            return Err(GraphError::VariantOutOfBounds {
                pos: v.pos,
                ref_len,
            });
        }
        if v.alt_seq().is_empty() && !matches!(v.kind, crate::VariantKind::Deletion { .. }) {
            // Replacement/insertion with empty alt would create an empty node.
            return Err(GraphError::EmptyNode);
        }
    }
    let dropped_variants = variants.drop_overlapping();

    // A deletion spanning the whole reference would leave an empty path;
    // treat it as out of bounds for simplicity.
    // (Zero-length graphs are rejected by GraphBuilder anyway.)

    // ---- collect breakpoints ----
    let mut breakpoints: Vec<u64> = vec![0, ref_len];
    for v in variants.iter() {
        let (start, end) = v.ref_interval();
        breakpoints.push(start);
        breakpoints.push(end);
    }
    breakpoints.sort_unstable();
    breakpoints.dedup();

    // ---- plan nodes in (ref_start, rank) order ----
    // rank 0: insertion nodes anchored at the coordinate
    // rank 1: the backbone segment starting at the coordinate
    // rank 2: alternative-allele nodes whose interval starts here
    #[derive(Debug)]
    struct Planned {
        seq: DnaSeq,
        start: u64,
        end: u64,
        backbone: bool,
        insertion: bool,
    }
    let mut planned: Vec<Planned> = Vec::new();
    let mut keyed: Vec<(u64, u8, usize)> = Vec::new(); // (start, rank, planned idx)

    for window in breakpoints.windows(2) {
        let (start, end) = (window[0], window[1]);
        if start == end {
            continue;
        }
        keyed.push((start, 1, planned.len()));
        planned.push(Planned {
            seq: reference.slice(start as usize, end as usize),
            start,
            end,
            backbone: true,
            insertion: false,
        });
    }
    let embedded_variants = variants.len();
    for v in variants.iter() {
        let (start, end) = v.ref_interval();
        let alt = v.alt_seq();
        if alt.is_empty() {
            continue; // deletion: skip edge only, added below
        }
        let insertion = start == end;
        keyed.push((start, if insertion { 0 } else { 2 }, planned.len()));
        planned.push(Planned {
            seq: alt,
            start,
            end,
            backbone: false,
            insertion,
        });
    }
    keyed.sort_by_key(|&(start, rank, idx)| (start, rank, idx));

    // ---- create nodes ----
    let mut builder = GraphBuilder::new();
    let mut ids: Vec<NodeId> = vec![NodeId(0); planned.len()];
    let mut ref_starts = Vec::with_capacity(planned.len());
    let mut is_backbone = Vec::with_capacity(planned.len());
    let mut backbone_head = None;
    for &(_, _, idx) in &keyed {
        let p = &planned[idx];
        let id = builder.add_node(p.seq.clone())?;
        ids[idx] = id;
        ref_starts.push(p.start);
        is_backbone.push(p.backbone);
        if p.backbone && p.start == 0 {
            backbone_head = Some(id);
        }
    }

    // ---- wire junctions ----
    // For every reference coordinate p: nodes whose interval *ends* at p
    // connect to nodes whose interval *starts* at p. Insertion nodes are
    // spliced between the two sides (ends -> ins -> starts) and are mutually
    // parallel.
    use std::collections::BTreeMap;
    let mut ends: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut starts: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut inserts: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (idx, p) in planned.iter().enumerate() {
        if p.insertion {
            inserts.entry(p.start).or_default().push(idx);
        } else {
            ends.entry(p.end).or_default().push(idx);
            starts.entry(p.start).or_default().push(idx);
        }
    }
    let empty: Vec<usize> = Vec::new();
    let mut junctions: Vec<u64> = breakpoints.clone();
    junctions.extend(inserts.keys().copied());
    junctions.sort_unstable();
    junctions.dedup();
    for &p in &junctions {
        let left = ends.get(&p).unwrap_or(&empty);
        let right = starts.get(&p).unwrap_or(&empty);
        let mid = inserts.get(&p).unwrap_or(&empty);
        for &a in left {
            for &b in right {
                if !builder.has_edge(ids[a], ids[b]) {
                    builder.add_edge(ids[a], ids[b])?;
                }
            }
            for &m in mid {
                if !builder.has_edge(ids[a], ids[m]) {
                    builder.add_edge(ids[a], ids[m])?;
                }
            }
        }
        for &m in mid {
            for &b in right {
                if !builder.has_edge(ids[m], ids[b]) {
                    builder.add_edge(ids[m], ids[b])?;
                }
            }
        }
    }
    // Deletion skip edges: for a deletion [s, e), connect nodes ending at s
    // to nodes starting at e.
    for v in variants.iter() {
        let (start, end) = v.ref_interval();
        if !v.alt_seq().is_empty() || start == end {
            continue;
        }
        let left = ends.get(&start).unwrap_or(&empty);
        let right = starts.get(&end).unwrap_or(&empty);
        for &a in left {
            for &b in right {
                if !builder.has_edge(ids[a], ids[b]) {
                    builder.add_edge(ids[a], ids[b])?;
                }
            }
        }
    }

    // ref_starts / is_backbone were pushed in keyed (= id) order already.
    let graph = builder.finish()?;
    debug_assert!(graph.is_topologically_sorted());
    Ok(ConstructedGraph {
        graph,
        backbone_head,
        ref_starts,
        is_backbone,
        dropped_variants,
        embedded_variants,
        applied: variants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Base, Variant};

    fn seqs_spelled(built: &ConstructedGraph) -> Vec<String> {
        built
            .graph
            .node_ids()
            .map(|id| built.graph.seq(id).to_string())
            .collect()
    }

    /// Enumerate every full source-to-sink path's sequence (small graphs).
    fn all_path_seqs(graph: &GenomeGraph) -> Vec<String> {
        let mut out = Vec::new();
        let sources: Vec<NodeId> = graph
            .node_ids()
            .filter(|&n| graph.predecessors(n).is_empty())
            .collect();
        fn rec(graph: &GenomeGraph, node: NodeId, mut prefix: String, out: &mut Vec<String>) {
            prefix.push_str(&graph.seq(node).to_string());
            if graph.successors(node).is_empty() {
                out.push(prefix);
                return;
            }
            for &next in graph.successors(node) {
                rec(graph, next, prefix.clone(), out);
            }
        }
        for s in sources {
            rec(graph, s, String::new(), &mut out);
        }
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn no_variants_gives_single_node() {
        let built = build_graph(&"ACGTACGT".parse().unwrap(), VariantSet::new()).unwrap();
        assert_eq!(built.graph.node_count(), 1);
        assert_eq!(built.graph.seq(NodeId(0)).to_string(), "ACGTACGT");
        assert_eq!(built.backbone_head, Some(NodeId(0)));
    }

    #[test]
    fn snp_creates_bubble() {
        let built = build_graph(
            &"ACGTACGT".parse().unwrap(),
            [Variant::snp(3, Base::G)].into_iter().collect(),
        )
        .unwrap();
        // ACG -> {T, G} -> ACGT
        assert_eq!(seqs_spelled(&built), vec!["ACG", "T", "G", "ACGT"]);
        let paths = all_path_seqs(&built.graph);
        assert_eq!(paths, vec!["ACGGACGT", "ACGTACGT"]);
        assert!(built.graph.is_topologically_sorted());
    }

    #[test]
    fn figure1_graph_reconstructed_from_variants() {
        // Figure 1's four sequences: ACGTACGT (ref), ACGGACGT (SNP),
        // ACGTTACGT (insertion), ACGACGT (deletion).
        let built = build_graph(
            &"ACGTACGT".parse().unwrap(),
            [
                Variant::snp(3, Base::G),
                Variant::insertion(3, "T".parse().unwrap()),
                Variant::deletion(3, 1),
            ]
            .into_iter()
            .collect(),
        )
        .unwrap();
        let paths = all_path_seqs(&built.graph);
        for expect in ["ACGTACGT", "ACGGACGT", "ACGTTACGT", "ACGACGT"] {
            assert!(
                paths.contains(&expect.to_string()),
                "missing {expect}: {paths:?}"
            );
        }
    }

    #[test]
    fn deletion_adds_skip_edge() {
        let built = build_graph(
            &"AACCGGTT".parse().unwrap(),
            [Variant::deletion(2, 2)].into_iter().collect(),
        )
        .unwrap();
        let paths = all_path_seqs(&built.graph);
        assert_eq!(paths, vec!["AACCGGTT".to_string(), "AAGGTT".to_string()]);
    }

    #[test]
    fn insertion_splices_between_segments() {
        let built = build_graph(
            &"AATT".parse().unwrap(),
            [Variant::insertion(2, "GGG".parse().unwrap())]
                .into_iter()
                .collect(),
        )
        .unwrap();
        let paths = all_path_seqs(&built.graph);
        assert_eq!(paths, vec!["AAGGGTT".to_string(), "AATT".to_string()]);
        assert!(built.graph.is_topologically_sorted());
    }

    #[test]
    fn replacement_structural_variant() {
        let built = build_graph(
            &"AAAACCCC".parse().unwrap(),
            [Variant::replacement(2, 4, "G".parse().unwrap())]
                .into_iter()
                .collect(),
        )
        .unwrap();
        let paths = all_path_seqs(&built.graph);
        assert_eq!(paths, vec!["AAAACCCC".to_string(), "AAGCC".to_string()]);
    }

    #[test]
    fn multiallelic_site_keeps_both_alts() {
        let built = build_graph(
            &"AACAA".parse().unwrap(),
            [Variant::snp(2, Base::G), Variant::snp(2, Base::T)]
                .into_iter()
                .collect(),
        )
        .unwrap();
        let paths = all_path_seqs(&built.graph);
        assert_eq!(
            paths,
            vec![
                "AACAA".to_string(),
                "AAGAA".to_string(),
                "AATAA".to_string()
            ]
        );
    }

    #[test]
    fn overlapping_variants_are_dropped() {
        let built = build_graph(
            &"AAAAAAAA".parse().unwrap(),
            [Variant::deletion(1, 4), Variant::snp(2, Base::C)]
                .into_iter()
                .collect(),
        )
        .unwrap();
        assert_eq!(built.dropped_variants, 1);
        assert_eq!(built.embedded_variants, 1);
    }

    #[test]
    fn variant_past_reference_is_rejected() {
        let err = build_graph(
            &"ACGT".parse().unwrap(),
            [Variant::snp(4, Base::A)].into_iter().collect(),
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::VariantOutOfBounds { .. }));
    }

    #[test]
    fn variant_at_position_zero() {
        let built = build_graph(
            &"ACGT".parse().unwrap(),
            [Variant::snp(0, Base::T)].into_iter().collect(),
        )
        .unwrap();
        let paths = all_path_seqs(&built.graph);
        assert_eq!(paths, vec!["ACGT".to_string(), "TCGT".to_string()]);
        assert!(built.graph.is_topologically_sorted());
    }

    #[test]
    fn variant_touching_reference_end() {
        let built = build_graph(
            &"ACGT".parse().unwrap(),
            [
                Variant::snp(3, Base::A),
                Variant::insertion(4, "GG".parse().unwrap()),
            ]
            .into_iter()
            .collect(),
        )
        .unwrap();
        let paths = all_path_seqs(&built.graph);
        // Full source-to-sink paths include the insertion; the insertion-free
        // alleles are their prefixes (graph walks may stop at any node).
        assert_eq!(paths, vec!["ACGAGG".to_string(), "ACGTGG".to_string()]);
    }

    #[test]
    fn dense_variants_remain_topologically_sorted() {
        let reference: DnaSeq = "ACGTACGTACGTACGTACGT".parse().unwrap();
        let variants: VariantSet = (0..20)
            .step_by(2)
            .map(|p| Variant::snp(p, Base::A))
            .collect();
        let built = build_graph(&reference, variants).unwrap();
        assert!(built.graph.is_topologically_sorted());
        // Backbone path must spell the reference.
        let backbone: Vec<NodeId> = built
            .graph
            .node_ids()
            .filter(|n| built.is_backbone[n.index()])
            .collect();
        let spelled = built.graph.path_seq(&backbone).unwrap().to_string();
        assert_eq!(spelled, "ACGTACGTACGTACGTACGT");
    }
}
