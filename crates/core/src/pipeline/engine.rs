//! The batched, multi-threaded, order-preserving map engine with
//! overlapped IO.
//!
//! [`MapEngine`] is the production driver around
//! [`SegramMapper`](crate::SegramMapper): it consumes a stream of reads,
//! groups them into fixed-size batches, fans the batches out to
//! `std::thread::scope` workers through a bounded work queue (so an
//! arbitrarily long input stream never piles up in memory), and emits
//! per-read outcomes to a sink **in input order**, whatever the worker
//! interleaving. Per-stage [`MapStats`] are aggregated across all workers.
//!
//! Mapping workers never touch IO. On the input side,
//! [`MapEngine::map_raw_stream`] accepts *undecoded* items plus a decode
//! function that runs in the worker stage (timed into
//! [`MapStats::decode`]), so the producer thread only slices raw record
//! boundaries (e.g. `segram_io::FastqFramer`). On the output side, the
//! reorder buffer never calls the sink under its lock: released batches
//! are handed — still strictly in input order — over a bounded channel to
//! a dedicated writer thread, the only thread that runs the sink. A shared
//! [`CancelToken`] in [`EngineConfig`] stops the producer *and* the
//! workers promptly when either end fails (sink write error, input stream
//! error) instead of mapping every queued batch first.
//!
//! Ordering guarantee: batches are numbered by the producer and the
//! reorder buffer releases them to the writer strictly sequentially, so
//! the output of `threads = N` is byte-identical to `threads = 1` for any
//! `N` (the mapper itself is deterministic). `ci.sh` enforces this end to
//! end, including through the overlapped framer+decode path.
//!
//! The engine is generic over [`ReadMapper`], so the same driver runs the
//! monolithic [`SegramMapper`] and the coordinate-range
//! [`ShardedIndex`](crate::ShardedIndex). Both bounded queues expose
//! depth/wait counters ([`QueueStats`]) to locate the
//! producer-vs-worker-vs-writer bottleneck, and a [`ShardAffinity`] plan
//! assigns workers to shard groups with the same size-balanced placement
//! the paper uses for chromosomes over memory channels. This engine is
//! the *fanout* schedule — every worker pops from the one shared queue;
//! the per-shard-group pool schedule lives in
//! [`elastic`](crate::pipeline::elastic).
//!
//! Failure model: the first panic anywhere in the pipeline (decode,
//! mapper, sink) is captured, the run is cancelled, and the original
//! payload is re-raised once from the calling thread — not buried under
//! the poisoned-lock panic cascade every other worker would otherwise die
//! with.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use segram_graph::DnaSeq;
use segram_sim::Strand;

use crate::mapper::{MapStats, Mapping, ReadMapper, SegramMapper};
use crate::shard::balance_loads;

/// A shared cooperative stop flag: cloning yields handles onto the same
/// flag, so the CLI (or any engine embedder) can hand one clone to the
/// engine via [`EngineConfig`] and keep another to pull when its sink or
/// input stream fails. Once cancelled, the engine's producer stops
/// consuming input and workers drop still-queued batches unmapped —
/// instead of faithfully mapping a stream whose output already failed.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag on every clone of this token. Idempotent.
    ///
    /// Sequentially consistent so that anything stored before the cancel
    /// (e.g. the engine's decode-failure flag, or an embedder's error
    /// slot) is visible to every thread that observes the cancellation.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether any clone has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

/// Tuning knobs of a [`MapEngine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker thread count (clamped to at least 1).
    pub threads: usize,
    /// Reads per work item; batching amortizes queue synchronization.
    pub batch_size: usize,
    /// Bounded work-queue capacity in batches (0 = `2 × threads`). Bounds
    /// how far the producer can run ahead of the workers, and doubles as
    /// the capacity of the ordered channel to the writer thread.
    pub queue_depth: usize,
    /// Map each read on both strands and keep the better mapping.
    pub both_strands: bool,
    /// Shared stop flag: cancel it (from the sink, the input stream, or
    /// anywhere else holding a clone) and the run winds down promptly.
    pub cancel: CancelToken,
    /// Adaptive batch sizing: when set, the producer observes the live
    /// queue imbalance at each refill and grows/shrinks the batch size
    /// within these bounds (see [`BatchBounds`]); `batch_size` is then
    /// only the starting point. `None` keeps batches fixed. The elastic
    /// scheduler ignores this knob (its pre-route pass wants stable
    /// batch shapes).
    pub adaptive_batch: Option<BatchBounds>,
}

/// Bounds for adaptive batch sizing ([`EngineConfig::adaptive_batch`]).
///
/// The producer doubles the batch when the workers look starved (empty
/// queue, or worker waits grew since the last refill) and halves it when
/// it is itself the backlog (full queue, or producer waits grew) — a
/// small batch keeps latency and reorder memory low, a large batch
/// amortizes queue synchronization when the producer is the bottleneck.
/// Output bytes are invariant to the trajectory: batch size only changes
/// where batch boundaries fall, and the reorder buffer restores input
/// order regardless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchBounds {
    /// Smallest batch the controller will shrink to (clamped to >= 1).
    pub min: usize,
    /// Largest batch the controller will grow to.
    pub max: usize,
}

impl EngineConfig {
    /// A configuration with `threads` workers and default batching.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Returns a copy with both-strand mapping enabled or disabled.
    pub fn both_strands(mut self, enabled: bool) -> Self {
        self.both_strands = enabled;
        self
    }

    /// Returns a copy sharing the given cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_size: 16,
            queue_depth: 0,
            both_strands: false,
            cancel: CancelToken::new(),
            adaptive_batch: None,
        }
    }
}

/// The one builder for engine tuning knobs, shared by every engine in the
/// workspace. [`EngineConfig`] (single-stream [`MapEngine`] /
/// [`ElasticScheduler`](super::ElasticScheduler)) and
/// [`MultiConfig`](super::MultiConfig) (the serve-mode
/// [`MultiEngine`](super::MultiEngine)) historically duplicated the same
/// fields; `EngineOptions` holds the superset once, and every engine
/// constructor accepts it directly (`impl Into<Config>`). Knobs a target
/// engine does not have are simply ignored by the conversion:
/// `batch_size` by [`MultiConfig`] (the daemon batches on the wire),
/// `max_queued` and `cancel` by [`EngineConfig`] / [`MultiConfig`]
/// respectively (admission is a multi-engine concept, cancellation is
/// per-request there).
///
/// # Examples
///
/// ```
/// use segram_core::{EngineConfig, EngineOptions, MultiConfig};
///
/// let options = EngineOptions::new().threads(4).queue_depth(8).both_strands(true);
/// let single: EngineConfig = options.clone().into();
/// let multi: MultiConfig = options.into();
/// assert_eq!(single.threads, 4);
/// assert_eq!(multi.queue_depth, 8);
/// assert!(single.both_strands && multi.both_strands);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EngineOptions {
    threads: usize,
    batch_size: usize,
    queue_depth: usize,
    max_queued: usize,
    both_strands: bool,
    cancel: CancelToken,
    adaptive_batch: Option<BatchBounds>,
}

impl EngineOptions {
    /// Default options: all available cores, default batching, derived
    /// queue depths (each engine derives its own zero-value defaults).
    pub fn new() -> Self {
        Self {
            threads: 0,
            batch_size: 0,
            queue_depth: 0,
            max_queued: 0,
            both_strands: false,
            cancel: CancelToken::new(),
            adaptive_batch: None,
        }
    }

    /// Worker thread count (0 = all available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Reads per work item (0 = the engine default; multi-request engines
    /// batch on the wire and ignore this).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Bounded input-queue capacity in batches (0 = `2 × threads`;
    /// per-request for the multi-request engine).
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Multi-request admission limit in total queued batches
    /// (0 = `4 ×` queue depth; single-stream engines ignore this).
    pub fn max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }

    /// Map each read on both strands and keep the better mapping.
    pub fn both_strands(mut self, enabled: bool) -> Self {
        self.both_strands = enabled;
        self
    }

    /// Shared stop flag for single-stream engines (the multi-request
    /// engine is per-request-cancelled and ignores this).
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Enables adaptive batch sizing within `[min, max]` (fanout
    /// [`MapEngine`] only; other engines ignore it — see
    /// [`EngineConfig::adaptive_batch`]).
    pub fn adaptive_batch(mut self, min: usize, max: usize) -> Self {
        self.adaptive_batch = Some(BatchBounds { min, max });
        self
    }
}

impl From<EngineOptions> for EngineConfig {
    fn from(options: EngineOptions) -> Self {
        let defaults = EngineConfig::default();
        Self {
            threads: if options.threads == 0 {
                defaults.threads
            } else {
                options.threads
            },
            batch_size: if options.batch_size == 0 {
                defaults.batch_size
            } else {
                options.batch_size
            },
            queue_depth: options.queue_depth,
            both_strands: options.both_strands,
            cancel: options.cancel,
            adaptive_batch: options.adaptive_batch,
        }
    }
}

impl EngineOptions {
    /// The pieces [`MultiConfig`](super::MultiConfig)'s conversion needs,
    /// without exposing the fields (crate-internal).
    pub(crate) fn multi_parts(&self) -> (usize, usize, usize, bool) {
        let threads = if self.threads == 0 {
            EngineConfig::default().threads
        } else {
            self.threads
        };
        (
            threads,
            self.queue_depth,
            self.max_queued,
            self.both_strands,
        )
    }
}

/// Poison-tolerant lock: a panicking thread is already captured by the
/// engine's first-failure slot, so other threads keep the lock usable
/// instead of dying on the poison flag (the cascade this replaces).
/// Crate-visible because the multi-request engine shares the failure
/// model.
pub(crate) fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The first panic payload captured from any pipeline stage; later
/// failures (usually knock-on effects of the first) are dropped.
/// Crate-visible because the elastic scheduler shares the failure model.
#[derive(Default)]
pub(crate) struct FirstFailure {
    slot: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl FirstFailure {
    pub(crate) fn record(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = relock(&self.slot);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    pub(crate) fn take(&self) -> Option<Box<dyn Any + Send + 'static>> {
        relock(&self.slot).take()
    }
}

/// The engine's per-read result: the mapping (if any), the strand it was
/// found on, and this read's per-stage statistics (the inputs SAM/GAF
/// rendering needs, e.g. for MAPQ estimation).
#[derive(Clone, Debug)]
pub struct ReadOutcome {
    /// The winning mapping, if the read mapped.
    pub mapping: Option<Mapping>,
    /// Strand the mapping was found on ([`Strand::Forward`] unless
    /// [`EngineConfig::both_strands`] found a better reverse mapping).
    pub strand: Strand,
    /// This read's pipeline statistics.
    pub stats: MapStats,
}

/// Aggregate of one engine run.
#[derive(Clone, Copy, Debug)]
pub struct EngineReport {
    /// The backend that produced this run
    /// ([`ReadMapper::backend_name`]), so reports and artifacts always
    /// name the mapper behind the numbers.
    pub backend: &'static str,
    /// Reads consumed from the input stream.
    pub reads: usize,
    /// Reads that produced a mapping.
    pub mapped: usize,
    /// Batches the workers actually mapped — counted at worker
    /// completion, not at producer enqueue, so a cancelled run reports
    /// the work that happened rather than the work that was queued.
    pub batches: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Per-stage statistics summed over every read and worker.
    pub stats: MapStats,
    /// Work-queue depth and wait counters for this run.
    pub queue: QueueStats,
    /// The batch-size trajectory the producer actually used (fixed runs
    /// record their one size; adaptive runs record the bounds explored).
    pub batching: BatchTrajectory,
}

impl Default for EngineReport {
    fn default() -> Self {
        Self {
            backend: "segram",
            reads: 0,
            mapped: 0,
            batches: 0,
            threads: 0,
            stats: MapStats::default(),
            queue: QueueStats::default(),
            batching: BatchTrajectory::default(),
        }
    }
}

/// The batch sizes an engine run actually used
/// ([`EngineReport::batching`]): with adaptive sizing enabled the
/// producer's grow/shrink decisions are surfaced here, so reports can
/// show where within `[min, max]` the controller settled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchTrajectory {
    /// Whether adaptive sizing was enabled for the run.
    pub adaptive: bool,
    /// Batch size of the first batch.
    pub initial: usize,
    /// Batch size in effect when the stream ended.
    pub last: usize,
    /// Smallest batch size used.
    pub min_used: usize,
    /// Largest batch size used.
    pub max_used: usize,
    /// Times the controller doubled the batch (worker starvation).
    pub grows: u64,
    /// Times the controller halved the batch (producer backlog).
    pub shrinks: u64,
}

/// Depth/wait counters of the engine's two bounded queues — the
/// backpressure observability that locates the bottleneck at high thread
/// counts: the producer side (input queue, producer vs workers) and the
/// writer side (ordered output channel, workers vs the writer thread),
/// each with symmetric push/pop accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// High-water mark of queued input batches.
    pub max_depth: usize,
    /// Times the producer blocked on a full input queue.
    pub producer_waits: u64,
    /// Total time the producer spent blocked on a full input queue.
    pub producer_wait: Duration,
    /// Times a worker blocked on an empty input queue (excluding the
    /// final end-of-stream drain).
    pub worker_waits: u64,
    /// Total time workers spent blocked on an empty input queue.
    pub worker_wait: Duration,
    /// High-water mark of released batches queued to the writer thread.
    pub output_max_depth: usize,
    /// Times a worker blocked handing a released batch to the full
    /// output channel (the writer is the bottleneck).
    pub output_stall_waits: u64,
    /// Total time workers spent blocked on the full output channel.
    pub output_stall_wait: Duration,
    /// Times the writer thread blocked on an empty output channel
    /// (mapping is the bottleneck; excludes the end-of-stream drain).
    pub writer_waits: u64,
    /// Total time the writer thread spent blocked on an empty channel.
    pub writer_wait: Duration,
    /// Times a worker genuinely parked on a full reorder buffer (ran too
    /// far ahead of a slow batch). One parked period counts once, however
    /// many 50 ms cancellation-poll wakeups it spans — so the counter
    /// stays an honest backpressure signal for admission control.
    pub park_waits: u64,
    /// Total time workers spent parked on a full reorder buffer.
    pub park_wait: Duration,
}

/// Worker-to-shard ownership plan: distributes shard ids over worker
/// groups with the same greedy size-balanced placement the paper uses to
/// spread chromosomes across HBM channels (Section 8.3,
/// [`balance_loads`](crate::balance_loads)).
///
/// The [`ElasticScheduler`](crate::pipeline::ElasticScheduler) consumes
/// this plan as its *initial* pool placement: each group becomes a worker
/// pool with its own bounded queue, batches are routed by the seeding
/// router's shard decision, and a live rebalancer migrates shard
/// ownership between pools as the load skews. Under the fanout schedule
/// ([`MapEngine`]) the plan is informational only — every worker pops
/// from the one shared queue (the historical per-group batch counters
/// that measured that shared-queue scheduling are gone; per-pool batch
/// counts live in the elastic report, per-shard occupancy in
/// [`ShardStats`](crate::ShardStats)).
///
/// With more workers than shards, workers share groups round-robin; with
/// more shards than workers, a group owns several shards.
#[derive(Debug)]
pub struct ShardAffinity {
    /// Per group, the shard ids pinned to it.
    groups: Vec<Vec<usize>>,
    /// Worker index → group index.
    worker_group: Vec<usize>,
}

impl ShardAffinity {
    /// Pins `workers` workers to shard groups balanced by `shard_loads`
    /// (per-shard memory bytes).
    ///
    /// # Panics
    ///
    /// Panics when `shard_loads` is empty or `workers` is zero.
    pub fn pin_workers(shard_loads: &[u64], workers: usize) -> Self {
        assert!(!shard_loads.is_empty(), "at least one shard");
        assert!(workers > 0, "at least one worker");
        let group_count = workers.min(shard_loads.len());
        let groups = balance_loads(shard_loads, group_count);
        let worker_group = (0..workers).map(|w| w % group_count).collect();
        Self {
            groups,
            worker_group,
        }
    }

    /// Per group, the shard ids pinned to it.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The shard group a worker is pinned to.
    pub fn group_of(&self, worker: usize) -> usize {
        self.worker_group[worker % self.worker_group.len()]
    }
}

/// A bounded single-producer / multi-consumer batch queue (Mutex +
/// Condvar; no external dependencies). `push` blocks while the queue is
/// full, `pop` blocks while it is empty, and `close` wakes everyone so
/// drained workers observe end-of-stream. The elastic scheduler runs one
/// of these per worker pool, and the CLI's split SAM+GAF emission runs
/// one per output file as a bounded writer channel (hence public).
pub struct WorkQueue<T> {
    // Missing-Debug note: Debug is implemented manually below (the
    // items themselves need no Debug bound).
    inner: Mutex<WorkQueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    // Wait accounting lives outside the mutex so blocked-time bookkeeping
    // never extends the critical section.
    producer_waits: AtomicU64,
    producer_wait_ns: AtomicU64,
    worker_waits: AtomicU64,
    worker_wait_ns: AtomicU64,
}

impl<T> std::fmt::Debug for WorkQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkQueue")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

struct WorkQueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
    /// High-water mark of `items.len()`.
    max_depth: usize,
}

impl<T> WorkQueue<T> {
    /// A queue holding at most `capacity` items (clamped to >= 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(WorkQueueInner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
                max_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            producer_waits: AtomicU64::new(0),
            producer_wait_ns: AtomicU64::new(0),
            worker_waits: AtomicU64::new(0),
            worker_wait_ns: AtomicU64::new(0),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Pushing onto a
    /// closed queue silently drops the item — the consumer has already
    /// decided the stream is over.
    pub fn push(&self, item: T) {
        let mut inner = relock(&self.inner);
        if inner.items.len() >= inner.capacity && !inner.closed {
            let blocked = Instant::now();
            while inner.items.len() >= inner.capacity && !inner.closed {
                inner = self
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            self.producer_waits.fetch_add(1, Ordering::Relaxed);
            self.producer_wait_ns
                .fetch_add(blocked.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if inner.closed {
            return;
        }
        inner.items.push_back(item);
        inner.max_depth = inner.max_depth.max(inner.items.len());
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Dequeues the next item, blocking while the queue is empty;
    /// `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = relock(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            // One blocked period counts as one wait, however many
            // (possibly spurious) wakeups it takes — mirroring the
            // producer-side accounting so the two columns compare.
            // End-of-stream wakeups (close with no work) are not
            // starvation and are not counted.
            let blocked = Instant::now();
            while inner.items.is_empty() && !inner.closed {
                inner = self
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if !inner.items.is_empty() {
                self.worker_waits.fetch_add(1, Ordering::Relaxed);
                self.worker_wait_ns
                    .fetch_add(blocked.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
    }

    /// Current queued-item count — the live load signal behind the
    /// elastic scheduler's least-loaded spill decision.
    pub fn len(&self) -> usize {
        relock(&self.inner).items.len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the queue's depth/wait counters (push side reported as
    /// `producer_*`, pop side as `worker_*`; callers remap for the output
    /// channel).
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            max_depth: relock(&self.inner).max_depth,
            producer_waits: self.producer_waits.load(Ordering::Relaxed),
            producer_wait: Duration::from_nanos(self.producer_wait_ns.load(Ordering::Relaxed)),
            worker_waits: self.worker_waits.load(Ordering::Relaxed),
            worker_wait: Duration::from_nanos(self.worker_wait_ns.load(Ordering::Relaxed)),
            ..QueueStats::default()
        }
    }

    /// Closes the queue: wakes every blocked producer and consumer so
    /// they observe end-of-stream. Idempotent.
    pub fn close(&self) {
        // Closing must succeed even after a worker panicked while holding
        // the lock — liveness beats the poison flag here (relock).
        relock(&self.inner).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Closes the queue when dropped — including during a panic unwind. Both
/// the producer and every worker hold one, so a panic anywhere (input
/// iterator, sink, pipeline) releases the threads blocked on the queue
/// and lets `std::thread::scope` propagate the panic instead of
/// deadlocking.
pub(crate) struct CloseOnDrop<'a, T>(pub(crate) &'a WorkQueue<T>);

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// The in-order release side: completed batches park in `pending` until
/// every earlier batch has been handed — still in input order — to the
/// bounded channel feeding the writer thread. The lock covers only this
/// bookkeeping; rendering and IO happen on the writer thread, outside it.
/// Crate-visible: the elastic scheduler's pools all merge through one of
/// these, which is what keeps pool-routed output byte-identical.
pub(crate) struct Reorder<T> {
    pub(crate) next: usize,
    pub(crate) pending: BTreeMap<usize, Vec<(T, ReadOutcome)>>,
    pub(crate) report: EngineReport,
}

/// The result of decoding one raw input unit in the worker stage, for
/// [`MapEngine::map_block_stream`]: a raw unit may decode to *several*
/// reads (a BGZF block inflates to a span of FASTQ records) or to none
/// (a block whose bytes all belong to records completed by neighbouring
/// blocks). `inflate` is the decompression share of the decode time,
/// reported separately in [`MapStats::inflate`].
#[derive(Clone, Debug)]
pub struct DecodedBlock<T> {
    /// The decoded items, in input order.
    pub items: Vec<T>,
    /// Time spent decompressing (zero for uncompressed paths).
    pub inflate: Duration,
}

impl<T> DecodedBlock<T> {
    /// A single-item block with no decompression share — what a plain
    /// one-record decode returns.
    pub fn one(item: T) -> Self {
        Self {
            items: vec![item],
            inflate: Duration::ZERO,
        }
    }
}

/// The batched, multi-threaded, order-preserving mapping engine, generic
/// over the [`ReadMapper`] it drives (the monolithic [`SegramMapper`] or
/// the coordinate-range [`ShardedIndex`](crate::ShardedIndex)).
///
/// # Examples
///
/// ```
/// use segram_core::{EngineConfig, MapEngine, SegramConfig, SegramMapper};
/// use segram_sim::DatasetConfig;
///
/// let dataset = DatasetConfig::tiny(3).illumina(100);
/// let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
/// let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2));
/// let reads: Vec<_> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
/// let (outcomes, report) = engine.map_batch(&reads);
/// assert_eq!(outcomes.len(), reads.len());
/// assert_eq!(report.reads, reads.len());
/// assert!(report.mapped > 0);
/// ```
#[derive(Debug)]
pub struct MapEngine<'m, M: ReadMapper = SegramMapper> {
    mapper: &'m M,
    config: EngineConfig,
    affinity: Option<ShardAffinity>,
}

impl<'m, M: ReadMapper> MapEngine<'m, M> {
    /// Binds the engine to a mapper. Accepts an [`EngineConfig`] or the
    /// shared [`EngineOptions`] builder.
    pub fn new(mapper: &'m M, config: impl Into<EngineConfig>) -> Self {
        Self {
            mapper,
            config: config.into(),
            affinity: None,
        }
    }

    /// Binds the engine to a mapper with a worker-to-shard-group
    /// ownership plan (see [`ShardAffinity`] for what the plan does and
    /// does not affect).
    pub fn with_affinity(
        mapper: &'m M,
        config: impl Into<EngineConfig>,
        affinity: ShardAffinity,
    ) -> Self {
        Self {
            mapper,
            config: config.into(),
            affinity: Some(affinity),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The worker-to-shard pinning, when configured.
    pub fn affinity(&self) -> Option<&ShardAffinity> {
        self.affinity.as_ref()
    }

    /// Maps one read according to the engine's strand policy.
    fn map_one(&self, read: &DnaSeq) -> ReadOutcome {
        if self.config.both_strands {
            let (best, stats) = self.mapper.map_read_both(read);
            let (mapping, strand) = match best {
                Some((mapping, strand)) => (Some(mapping), strand),
                None => (None, Strand::Forward),
            };
            ReadOutcome {
                mapping,
                strand,
                stats,
            }
        } else {
            let (mapping, stats) = self.mapper.map_read(read);
            ReadOutcome {
                mapping,
                strand: Strand::Forward,
                stats,
            }
        }
    }

    /// Streams `reads` through the engine, calling `sink(item, outcome)`
    /// once per read **in input order** — already-decoded items, the
    /// trivial-decode special case of [`map_raw_stream`](Self::map_raw_stream).
    pub fn map_stream<T, R, F>(
        &self,
        reads: impl Iterator<Item = T>,
        read_of: R,
        sink: F,
    ) -> EngineReport
    where
        T: Send,
        R: Fn(&T) -> &DnaSeq + Sync,
        F: FnMut(T, ReadOutcome) + Send,
    {
        self.map_raw_stream(reads, Some, read_of, sink)
    }

    /// Streams *undecoded* items through the engine: `decode` runs in the
    /// worker stage ahead of seeding (timed into [`MapStats::decode`]),
    /// and `sink(item, outcome)` is called once per read **in input
    /// order** on a dedicated writer thread — the only thread that ever
    /// runs the sink — so neither input parsing nor output rendering/IO
    /// blocks a mapping worker.
    ///
    /// `raw` is consumed incrementally on the calling thread (the
    /// producer), which ideally only slices record boundaries (e.g.
    /// `segram_io::FastqFramer`). `read_of` projects the sequence out of
    /// the decoded item. A worker that runs too far ahead of a slow batch
    /// parks until the reorder buffer drains, and released batches flow
    /// through a bounded channel to the writer, so at most
    /// `3 × queue_depth + 2 × threads` batches exist at any moment —
    /// memory stays bounded for arbitrarily long streams.
    ///
    /// Cancellation: when [`EngineConfig::cancel`] is cancelled — by the
    /// sink, the input iterator, anyone holding a clone — the producer
    /// stops consuming `raw` and workers drop still-queued batches
    /// unmapped. `decode` returning `None` cancels the run the same way
    /// (the decoder is expected to have recorded its error out of band).
    /// [`EngineReport::batches`] counts batches that were actually
    /// mapped, so a cancelled run's report stays truthful.
    ///
    /// # Panics
    ///
    /// If decode, the mapper, or the sink panics, the run is cancelled
    /// and the **first** panic payload is re-raised from this call once
    /// every thread has wound down.
    pub fn map_raw_stream<Q, T, D, R, F>(
        &self,
        raw: impl Iterator<Item = Q>,
        decode: D,
        read_of: R,
        sink: F,
    ) -> EngineReport
    where
        Q: Send,
        T: Send,
        D: Fn(Q) -> Option<T> + Sync,
        R: Fn(&T) -> &DnaSeq + Sync,
        F: FnMut(T, ReadOutcome) + Send,
    {
        self.map_block_stream(
            raw,
            move |q| decode(q).map(DecodedBlock::one),
            read_of,
            sink,
        )
    }

    /// The many-reads-per-raw-unit generalization of
    /// [`map_raw_stream`](Self::map_raw_stream): `decode` turns one raw
    /// unit into a [`DecodedBlock`] of zero or more reads. This is the
    /// compressed input path — the producer slices still-compressed BGZF
    /// blocks, and workers inflate + splice + FASTQ-decode them here (the
    /// decompression share is timed into [`MapStats::inflate`], the rest
    /// into [`MapStats::decode`]). A block completing no record is legal;
    /// its decode time is carried onto the next decoded read of the same
    /// batch.
    ///
    /// Ordering, cancellation, settle-on-decode-failure and panic
    /// semantics are exactly those of `map_raw_stream` (this is the one
    /// implementation; `map_raw_stream` wraps every item in a singleton
    /// block). With [`EngineConfig::adaptive_batch`] set, the producer
    /// additionally retunes its batch size at each refill from the live
    /// queue imbalance; the trajectory lands in
    /// [`EngineReport::batching`].
    pub fn map_block_stream<Q, T, D, R, F>(
        &self,
        mut raw: impl Iterator<Item = Q>,
        decode: D,
        read_of: R,
        sink: F,
    ) -> EngineReport
    where
        Q: Send,
        T: Send,
        D: Fn(Q) -> Option<DecodedBlock<T>> + Sync,
        R: Fn(&T) -> &DnaSeq + Sync,
        F: FnMut(T, ReadOutcome) + Send,
    {
        let threads = self.config.threads.max(1);
        let batch_size = self.config.batch_size.max(1);
        let queue_depth = if self.config.queue_depth == 0 {
            threads * 2
        } else {
            self.config.queue_depth
        };
        let cancel = &self.config.cancel;
        let queue: WorkQueue<(usize, Vec<Q>)> = WorkQueue::new(queue_depth);
        // The ordered handoff to the writer thread: released batches enter
        // in input order (pushes happen under the reorder lock) and the
        // bound makes a slow sink back-pressure the workers.
        let out_queue: WorkQueue<Vec<(T, ReadOutcome)>> = WorkQueue::new(queue_depth);
        // The reorder buffer is bounded too: a worker whose finished batch
        // is further than this ahead of the next-to-release batch parks
        // until the slow batch releases, so one pathological read cannot
        // make `pending` absorb the rest of the stream.
        let max_ahead = queue_depth + threads;
        let reorder: Mutex<Reorder<T>> = Mutex::new(Reorder {
            next: 0,
            pending: BTreeMap::new(),
            report: EngineReport::default(),
        });
        let released = Condvar::new();
        let failure = FirstFailure::default();
        let mapped_batches = AtomicUsize::new(0);
        // Raised (before `cancel`, which is SeqCst) when a decode failure
        // stopped the run. Workers that observe the cancellation then
        // *settle* still-queued batches decode-only instead of dropping
        // them blind, so the decoder's error recording deterministically
        // covers every record up to and including the file's first
        // malformed one — whatever the worker interleaving.
        let decode_failed = AtomicBool::new(false);
        // Reorder-park accounting (one count per genuine parked period;
        // see `QueueStats::park_waits`).
        let park_waits = AtomicU64::new(0);
        let park_wait_ns = AtomicU64::new(0);
        let decode = &decode;
        let read_of = &read_of;
        let mut produced = 0usize;
        let mut trajectory = BatchTrajectory::default();

        std::thread::scope(|scope| {
            // The writer: drains ordered batches and runs the sink. A sink
            // panic is captured as the run's failure, the run is
            // cancelled, and both queues close so no thread stays blocked.
            let writer_handle = {
                let out_queue = &out_queue;
                let queue = &queue;
                let failure = &failure;
                let released = &released;
                let mut sink = sink;
                scope.spawn(move || {
                    while let Some(batch) = out_queue.pop() {
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            for (item, outcome) in batch {
                                sink(item, outcome);
                            }
                        }));
                        if let Err(payload) = result {
                            failure.record(payload);
                            cancel.cancel();
                            out_queue.close();
                            queue.close();
                            // Wake workers parked on the reorder buffer so
                            // they observe the cancellation now instead of
                            // at the next 50 ms poll.
                            released.notify_all();
                            break;
                        }
                    }
                })
            };

            let worker_handles: Vec<_> = (0..threads)
                .map(|_worker| {
                    let queue = &queue;
                    let out_queue = &out_queue;
                    let reorder = &reorder;
                    let released = &released;
                    let failure = &failure;
                    let mapped_batches = &mapped_batches;
                    let decode_failed = &decode_failed;
                    let park_waits = &park_waits;
                    let park_wait_ns = &park_wait_ns;
                    scope.spawn(move || {
                        // Unblocks the producer and fellow workers if this
                        // worker dies in a way `catch_unwind` cannot see.
                        // Note: no such guard on `out_queue` — the first
                        // worker to finish must not close the channel
                        // under peers that are still releasing batches;
                        // the producer closes it after joining every
                        // worker (and the explicit failure path closes it
                        // eagerly).
                        let _close_guard = CloseOnDrop(queue);
                        while let Some((index, raws)) = queue.pop() {
                            if cancel.is_cancelled() {
                                // Drain path: the producer is already
                                // stopping and queued batches are not
                                // mapped. If the stop was a decode
                                // failure, settle the batch decode-only —
                                // the decoder records errors out of band,
                                // and the producer pushed batches in file
                                // order, so settling every queued batch
                                // guarantees the earliest recorded error
                                // is the file's *first* malformed record.
                                if decode_failed.load(Ordering::SeqCst) {
                                    let result = catch_unwind(AssertUnwindSafe(|| {
                                        for raw in raws {
                                            let _ = decode(raw);
                                        }
                                    }));
                                    if let Err(payload) = result {
                                        failure.record(payload);
                                    }
                                }
                                continue;
                            }
                            // `true` = batch released; `false` = run
                            // cancelled mid-batch (batch abandoned).
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                // Decode + map: the parallel stage.
                                let mut outcomes: Vec<(T, ReadOutcome)> =
                                    Vec::with_capacity(raws.len());
                                let mut settling = false;
                                // Transport time of raw units that
                                // completed no record, carried onto the
                                // batch's next decoded read so the sums
                                // stay truthful.
                                let mut carry_decode = Duration::ZERO;
                                let mut carry_inflate = Duration::ZERO;
                                for raw in raws {
                                    if !settling && cancel.is_cancelled() {
                                        if decode_failed.load(Ordering::SeqCst) {
                                            // Another worker hit a decode
                                            // failure: finish this batch
                                            // decode-only (see the drain
                                            // path above) so error
                                            // reporting stays
                                            // deterministic.
                                            settling = true;
                                        } else {
                                            return false;
                                        }
                                    }
                                    if settling {
                                        let _ = decode(raw);
                                        continue;
                                    }
                                    let started = Instant::now();
                                    let Some(decoded) = decode(raw) else {
                                        // The decoder records its own
                                        // error; stopping the run is the
                                        // engine's job. Everything after
                                        // this record is later in the
                                        // file, so nothing here needs
                                        // settling.
                                        decode_failed.store(true, Ordering::SeqCst);
                                        cancel.cancel();
                                        return false;
                                    };
                                    let inflate_time = decoded.inflate;
                                    let decode_time =
                                        started.elapsed().saturating_sub(inflate_time);
                                    if decoded.items.is_empty() {
                                        carry_decode += decode_time;
                                        carry_inflate += inflate_time;
                                        continue;
                                    }
                                    let mut first = true;
                                    for item in decoded.items {
                                        // A raw unit may hold many reads;
                                        // keep cancellation latency at
                                        // read, not block, granularity
                                        // (decode-failure settling is
                                        // handled at the next raw).
                                        if cancel.is_cancelled()
                                            && !decode_failed.load(Ordering::SeqCst)
                                        {
                                            return false;
                                        }
                                        let mut outcome = self.map_one(read_of(&item));
                                        if first {
                                            outcome.stats.decode = decode_time + carry_decode;
                                            outcome.stats.inflate = inflate_time + carry_inflate;
                                            carry_decode = Duration::ZERO;
                                            carry_inflate = Duration::ZERO;
                                            first = false;
                                        }
                                        outcomes.push((item, outcome));
                                    }
                                }
                                if settling {
                                    return false;
                                }
                                mapped_batches.fetch_add(1, Ordering::Relaxed);
                                // Reorder bookkeeping: the lock covers map
                                // insertion and release accounting only —
                                // rendering and IO happen on the writer
                                // thread, outside any engine lock.
                                let mut guard = relock(reorder);
                                // Backpressure: the worker owning batch
                                // `next` is never parked here, so release
                                // always advances. The wait is timed out
                                // as a safety net so a cancellation path
                                // without a handle on this condvar cannot
                                // strand a parked worker — but one parked
                                // period is *one* stall, however many
                                // timeout wakeups it spans: admission
                                // control reads these counters, and
                                // counting poll wakeups would inflate
                                // them ~20×/s per parked worker.
                                if index >= guard.next + max_ahead {
                                    let blocked = Instant::now();
                                    let mut parked = false;
                                    let record = |since: Instant| {
                                        park_waits.fetch_add(1, Ordering::Relaxed);
                                        park_wait_ns.fetch_add(
                                            since.elapsed().as_nanos() as u64,
                                            Ordering::Relaxed,
                                        );
                                    };
                                    while index >= guard.next + max_ahead {
                                        if cancel.is_cancelled() {
                                            if parked {
                                                record(blocked);
                                            }
                                            return false;
                                        }
                                        parked = true;
                                        guard = released
                                            .wait_timeout(guard, Duration::from_millis(50))
                                            .unwrap_or_else(PoisonError::into_inner)
                                            .0;
                                    }
                                    record(blocked);
                                }
                                let state = &mut *guard;
                                state.pending.insert(index, outcomes);
                                // Release every batch now contiguous with
                                // the released prefix, in order. Pushing
                                // under the lock keeps the channel order
                                // identical to release order; a full
                                // channel blocks here, which is exactly
                                // the backpressure a lagging writer must
                                // exert on the workers.
                                let mut advanced = false;
                                while let Some(ready) = state.pending.remove(&state.next) {
                                    state.next += 1;
                                    advanced = true;
                                    for (_, outcome) in &ready {
                                        state.report.reads += 1;
                                        if outcome.mapping.is_some() {
                                            state.report.mapped += 1;
                                        }
                                        state.report.stats.merge(&outcome.stats);
                                    }
                                    out_queue.push(ready);
                                }
                                drop(guard);
                                if advanced {
                                    released.notify_all();
                                }
                                true
                            }));
                            match result {
                                Ok(true) => {}
                                // Cancelled mid-batch: keep draining the
                                // queue so the producer never blocks.
                                Ok(false) => continue,
                                Err(payload) => {
                                    // First failure wins; wind everyone
                                    // down and let the calling thread
                                    // re-raise it once.
                                    failure.record(payload);
                                    cancel.cancel();
                                    queue.close();
                                    out_queue.close();
                                    released.notify_all();
                                    break;
                                }
                            }
                        }
                    })
                })
                .collect();

            // The calling thread is the producer: it only slices the raw
            // stream into batches — decode belongs to the workers. The
            // guards also close both queues if the input iterator panics,
            // so no thread is ever left blocked.
            let _close_guard = CloseOnDrop(&queue);
            let _out_close_guard = CloseOnDrop(&out_queue);
            // Adaptive batch sizing: observe the queue imbalance at each
            // refill and steer the batch size within the configured
            // bounds — grow when the workers starve (the producer's
            // per-batch overhead is the bottleneck), shrink when the
            // producer is blocked pushing (mapping is the bottleneck and
            // smaller batches cut latency and reorder memory). Output is
            // invariant to the trajectory; only batch boundaries move.
            let bounds = self.config.adaptive_batch.map(|b| BatchBounds {
                min: b.min.max(1),
                max: b.max.max(b.min.max(1)),
            });
            let mut current = match bounds {
                Some(b) => batch_size.clamp(b.min, b.max),
                None => batch_size,
            };
            trajectory = BatchTrajectory {
                adaptive: bounds.is_some(),
                initial: current,
                last: current,
                min_used: current,
                max_used: current,
                grows: 0,
                shrinks: 0,
            };
            let mut seen_waits = (0u64, 0u64);
            loop {
                if cancel.is_cancelled() {
                    break;
                }
                let batch: Vec<Q> = raw.by_ref().take(current).collect();
                if batch.is_empty() {
                    break;
                }
                queue.push((produced, batch));
                produced += 1;
                if let Some(b) = bounds {
                    let stats = queue.stats();
                    let depth = queue.len();
                    let starved = depth == 0 || stats.worker_waits > seen_waits.1;
                    let backlogged = depth >= queue_depth || stats.producer_waits > seen_waits.0;
                    seen_waits = (stats.producer_waits, stats.worker_waits);
                    // Both signals firing means the pipeline is
                    // oscillating — hold rather than thrash.
                    if starved && !backlogged && current < b.max {
                        current = (current * 2).min(b.max);
                        trajectory.grows += 1;
                    } else if backlogged && !starved && current > b.min {
                        current = (current / 2).max(b.min);
                        trajectory.shrinks += 1;
                    }
                    trajectory.last = current;
                    trajectory.min_used = trajectory.min_used.min(current);
                    trajectory.max_used = trajectory.max_used.max(current);
                }
            }
            queue.close();
            // Workers first, then the channel, then the writer: the writer
            // must not see end-of-stream before every released batch is in
            // the channel.
            for handle in worker_handles {
                if let Err(payload) = handle.join() {
                    failure.record(payload);
                }
            }
            out_queue.close();
            if let Err(payload) = writer_handle.join() {
                failure.record(payload);
            }
        });

        if let Some(payload) = failure.take() {
            // Surface the original failure once, instead of the
            // poisoned-lock panic cascade every other thread would
            // otherwise die with.
            resume_unwind(payload);
        }

        let reorder = reorder.into_inner().unwrap_or_else(PoisonError::into_inner);
        let mut report = reorder.report;
        report.backend = self.mapper.backend_name();
        report.batches = mapped_batches.load(Ordering::Relaxed);
        report.threads = threads;
        report.batching = trajectory;
        let input = queue.stats();
        let output = out_queue.stats();
        report.queue = QueueStats {
            output_max_depth: output.max_depth,
            output_stall_waits: output.producer_waits,
            output_stall_wait: output.producer_wait,
            writer_waits: output.worker_waits,
            writer_wait: output.worker_wait,
            park_waits: park_waits.load(Ordering::Relaxed),
            park_wait: Duration::from_nanos(park_wait_ns.load(Ordering::Relaxed)),
            ..input
        };
        report
    }

    /// Maps a slice of reads, returning the outcomes in input order plus
    /// the aggregate report (the batch-oriented convenience entry point).
    pub fn map_batch(&self, reads: &[DnaSeq]) -> (Vec<ReadOutcome>, EngineReport) {
        let mut outcomes = Vec::with_capacity(reads.len());
        let report = self.map_stream(
            reads.iter(),
            |read| *read,
            |_, outcome| outcomes.push(outcome),
        );
        (outcomes, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegramConfig;
    use segram_sim::DatasetConfig;
    use std::time::Duration;

    fn setup() -> (segram_sim::Dataset, SegramMapper) {
        let dataset = DatasetConfig::tiny(91).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        (dataset, mapper)
    }

    #[test]
    fn outcomes_preserve_input_order_across_thread_counts() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let serial = MapEngine::new(&mapper, EngineConfig::with_threads(1));
        let (base, base_report) = serial.map_batch(&reads);
        assert_eq!(base_report.reads, reads.len());
        for threads in [2usize, 4] {
            let mut config = EngineConfig::with_threads(threads);
            config.batch_size = 3; // force interleaving across workers
            let engine = MapEngine::new(&mapper, config);
            let (outcomes, report) = engine.map_batch(&reads);
            assert_eq!(report.threads, threads);
            assert_eq!(report.reads, reads.len());
            assert_eq!(report.mapped, base_report.mapped);
            for (a, b) in base.iter().zip(&outcomes) {
                assert_eq!(
                    a.mapping
                        .as_ref()
                        .map(|m| (m.linear_start, m.alignment.edit_distance)),
                    b.mapping
                        .as_ref()
                        .map(|m| (m.linear_start, m.alignment.edit_distance)),
                );
                assert_eq!(a.strand, b.strand);
            }
        }
    }

    #[test]
    fn tiny_queue_backpressure_still_preserves_order() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let (base, _) = MapEngine::new(&mapper, EngineConfig::with_threads(1)).map_batch(&reads);
        // One-read batches through a one-slot queue with four workers:
        // maximum contention on both the work queue and the bounded
        // reorder buffer (max_ahead = 5 with 20 batches in flight).
        let mut config = EngineConfig::with_threads(4);
        config.batch_size = 1;
        config.queue_depth = 1;
        let engine = MapEngine::new(&mapper, config);
        let (outcomes, report) = engine.map_batch(&reads);
        assert_eq!(report.reads, reads.len());
        assert_eq!(report.batches, reads.len());
        for (a, b) in base.iter().zip(&outcomes) {
            assert_eq!(
                a.mapping.as_ref().map(|m| m.linear_start),
                b.mapping.as_ref().map(|m| m.linear_start),
            );
        }
    }

    #[test]
    fn per_stage_stats_aggregation_matches_serial_sums() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();

        // Serial reference: sum per-read stats by hand.
        let mut serial = MapStats::default();
        let mut serial_mapped = 0usize;
        for read in &reads {
            let (mapping, stats) = mapper.map_read(read);
            serial.merge(&stats);
            if mapping.is_some() {
                serial_mapped += 1;
            }
        }

        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(4));
        let (_, report) = engine.map_batch(&reads);
        // Counts are deterministic and must match the serial sums exactly;
        // durations are wall-clock measurements, so only their presence is
        // checked.
        assert_eq!(report.mapped, serial_mapped);
        assert_eq!(report.stats.minimizers, serial.minimizers);
        assert_eq!(report.stats.filtered_minimizers, serial.filtered_minimizers);
        assert_eq!(report.stats.seed_locations, serial.seed_locations);
        assert_eq!(report.stats.regions_aligned, serial.regions_aligned);
        assert_eq!(report.stats.regions_filtered, serial.regions_filtered);
        assert_eq!(report.stats.total_region_len, serial.total_region_len);
        assert!(report.stats.seeding > Duration::ZERO);
        assert!(report.stats.alignment > Duration::ZERO);
    }

    #[test]
    fn prefiltered_engine_accounts_filtering_time_separately() {
        let dataset = DatasetConfig::tiny(93).illumina(100);
        let config =
            SegramConfig::short_reads().with_prefilter(segram_filter::FilterSpec::cascade());
        let mapper = SegramMapper::new(dataset.graph().clone(), config);
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2));
        let (_, report) = engine.map_batch(&reads);
        assert!(report.stats.filtering > Duration::ZERO);
        let fraction = report.stats.alignment_fraction();
        assert!(fraction > 0.0 && fraction < 1.0);
    }

    #[test]
    fn queue_stats_observe_depth_and_waits() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        // A one-slot queue with one-read batches maximizes contention: the
        // producer must block while workers drain.
        let mut config = EngineConfig::with_threads(2);
        config.batch_size = 1;
        config.queue_depth = 1;
        let engine = MapEngine::new(&mapper, config);
        let (_, report) = engine.map_batch(&reads);
        assert!(report.queue.max_depth >= 1);
        assert!(
            report.queue.max_depth <= 1,
            "bounded queue must bound depth"
        );
        // With 20 single-read batches through one slot, someone must have
        // waited at least once on either side.
        assert!(
            report.queue.producer_waits + report.queue.worker_waits > 0,
            "contended run recorded no waits: {:?}",
            report.queue
        );
    }

    #[test]
    fn shard_affinity_pins_every_shard_to_exactly_one_group() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let affinity = ShardAffinity::pin_workers(&[100, 80, 60, 40], 4);
        // Every shard pinned to exactly one group.
        let mut pinned: Vec<usize> = affinity.groups().iter().flatten().copied().collect();
        pinned.sort_unstable();
        assert_eq!(pinned, vec![0, 1, 2, 3]);
        // The plan rides along without changing the fanout engine's run.
        let mut config = EngineConfig::with_threads(4);
        config.batch_size = 2;
        let engine = MapEngine::with_affinity(&mapper, config, affinity);
        let (_, report) = engine.map_batch(&reads);
        assert_eq!(report.reads, reads.len());
        assert_eq!(
            engine
                .affinity()
                .expect("affinity configured")
                .groups()
                .len(),
            4
        );
    }

    #[test]
    fn more_workers_than_shards_share_groups() {
        let affinity = ShardAffinity::pin_workers(&[10, 20], 5);
        assert_eq!(affinity.groups().len(), 2);
        for worker in 0..5 {
            assert!(affinity.group_of(worker) < 2);
        }
        // More shards than workers: one group owns several shards.
        let wide = ShardAffinity::pin_workers(&[5, 4, 3, 2, 1], 2);
        assert_eq!(wide.groups().len(), 2);
        assert_eq!(wide.groups().iter().map(Vec::len).sum::<usize>(), 5);
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let (_, mapper) = setup();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(3));
        let report = engine.map_stream(std::iter::empty::<DnaSeq>(), |r| r, |_, _| {});
        assert_eq!(report.reads, 0);
        assert_eq!(report.batches, 0);
        assert_eq!(report.mapped, 0);
    }

    #[test]
    fn report_names_the_backend() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset
            .reads
            .iter()
            .map(|r| r.seq.clone())
            .take(3)
            .collect();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2));
        let (_, report) = engine.map_batch(&reads);
        assert_eq!(report.backend, "segram");
        assert_eq!(EngineReport::default().backend, "segram");
    }

    #[test]
    fn work_queue_depth_high_water_never_exceeds_capacity() {
        // Direct accounting check on the bounded queue: with a consumer
        // draining a 3-slot queue, max_depth reflects occupancy and stays
        // within the configured capacity.
        let queue: WorkQueue<u32> = WorkQueue::new(3);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for item in 0..20u32 {
                    queue.push(item);
                }
                queue.close();
            });
            let mut popped = Vec::new();
            while let Some(item) = queue.pop() {
                popped.push(item);
            }
            assert_eq!(popped, (0..20).collect::<Vec<_>>());
        });
        let stats = queue.stats();
        assert!(stats.max_depth >= 1);
        assert!(
            stats.max_depth <= 3,
            "high-water {} exceeds capacity 3",
            stats.max_depth
        );
    }

    #[test]
    fn work_queue_wait_counters_are_monotone_and_consistent() {
        let queue: WorkQueue<u32> = WorkQueue::new(1);
        // Producer wait: fill the single slot, then push from another
        // thread while this one drains slowly.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for item in 0..5u32 {
                    queue.push(item); // blocks whenever the slot is full
                }
                queue.close();
            });
            let mut snapshots = Vec::new();
            while let Some(_item) = queue.pop() {
                std::thread::sleep(Duration::from_millis(2));
                snapshots.push(queue.stats());
            }
            // Counters only ever grow between snapshots.
            for pair in snapshots.windows(2) {
                assert!(pair[1].producer_waits >= pair[0].producer_waits);
                assert!(pair[1].worker_waits >= pair[0].worker_waits);
                assert!(pair[1].producer_wait >= pair[0].producer_wait);
                assert!(pair[1].worker_wait >= pair[0].worker_wait);
            }
        });
        let stats = queue.stats();
        assert!(
            stats.producer_waits >= 1,
            "slow consumer on a 1-slot queue must block the producer: {stats:?}"
        );
        // A recorded wait implies recorded blocked time, and vice versa.
        assert_eq!(
            stats.producer_waits > 0,
            stats.producer_wait > Duration::ZERO
        );
        assert_eq!(stats.worker_waits > 0, stats.worker_wait > Duration::ZERO);
        assert_eq!(stats.max_depth, 1);
    }

    #[test]
    fn worker_wait_is_counted_only_for_real_starvation() {
        // Whether the consumer actually blocks before the push depends on
        // scheduling, so retry until a starved pop is observed instead of
        // trusting one sleep; a barrier removes the thread-spawn delay
        // from the race window. Consistency (a recorded wait carries
        // recorded blocked time) is asserted on every attempt.
        let mut starved = false;
        for _ in 0..20 {
            let queue: WorkQueue<u32> = WorkQueue::new(4);
            let barrier = std::sync::Barrier::new(2);
            std::thread::scope(|scope| {
                let consumer = scope.spawn(|| {
                    barrier.wait();
                    // Blocks on the empty queue until the item arrives.
                    assert_eq!(queue.pop(), Some(7));
                });
                barrier.wait();
                std::thread::sleep(Duration::from_millis(10));
                queue.push(7);
                consumer.join().expect("consumer");
            });
            let stats = queue.stats();
            assert_eq!(stats.worker_waits > 0, stats.worker_wait > Duration::ZERO);
            if stats.worker_waits >= 1 {
                starved = true;
                break;
            }
        }
        assert!(starved, "consumer never observed starving in 20 attempts");

        // End-of-stream drain: a pop woken only by close() is not counted
        // as starvation, however the pop and the close interleave.
        let drained: WorkQueue<u32> = WorkQueue::new(4);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| drained.pop());
            std::thread::sleep(Duration::from_millis(5));
            drained.close();
            assert_eq!(consumer.join().expect("consumer"), None);
        });
        assert_eq!(drained.stats().worker_waits, 0);
        assert_eq!(drained.stats().worker_wait, Duration::ZERO);
    }

    /// A [`ReadMapper`] that sleeps per read: cancellation tests need a
    /// mapper slow enough that the producer is still feeding (and workers
    /// still queued up) when the failure fires.
    struct SlowMapper {
        graph: segram_graph::GenomeGraph,
        delay: Duration,
    }

    impl SlowMapper {
        fn with_delay(delay: Duration) -> Self {
            let dataset = DatasetConfig::tiny(97).illumina(100);
            Self {
                graph: dataset.graph().clone(),
                delay,
            }
        }
    }

    impl ReadMapper for SlowMapper {
        fn graph(&self) -> &segram_graph::GenomeGraph {
            &self.graph
        }

        fn map_read(&self, _read: &DnaSeq) -> (Option<Mapping>, MapStats) {
            std::thread::sleep(self.delay);
            (None, MapStats::default())
        }

        fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, Strand)>, MapStats) {
            let (mapping, stats) = self.map_read(read);
            (mapping.map(|m| (m, Strand::Forward)), stats)
        }
    }

    fn slow_engine_reads(count: usize) -> Vec<DnaSeq> {
        let dataset = DatasetConfig::tiny(97).illumina(100);
        let read = dataset.reads[0].seq.clone();
        vec![read; count]
    }

    #[test]
    fn sink_cancellation_stops_producer_and_workers_promptly() {
        // 100 reads x 5 ms = 500 ms of serial mapping; the sink cancels
        // on the very first outcome, so a prompt stop maps only the few
        // batches that were already in flight.
        let mapper = SlowMapper::with_delay(Duration::from_millis(5));
        let reads = slow_engine_reads(100);
        let cancel = CancelToken::new();
        let mut config = EngineConfig::with_threads(2).with_cancel(cancel.clone());
        config.batch_size = 1;
        config.queue_depth = 2;
        let engine = MapEngine::new(&mapper, config);

        let produced = std::cell::Cell::new(0usize);
        let mut reads_iter = reads.iter();
        let stream = std::iter::from_fn(|| {
            let next = reads_iter.next()?;
            produced.set(produced.get() + 1);
            Some(next)
        });
        let mut sunk = 0usize;
        let started = Instant::now();
        let report = engine.map_stream(
            stream,
            |read| *read,
            |_, _| {
                sunk += 1;
                cancel.cancel(); // the CLI does this on a write error
            },
        );
        let elapsed = started.elapsed();

        assert!(
            produced.get() < reads.len(),
            "producer must stop early, consumed {}/{}",
            produced.get(),
            reads.len()
        );
        // Truthful accounting: batches counts mapped work only, and the
        // released reads can never exceed what was produced.
        assert!(report.batches <= produced.get(), "{report:?}");
        assert!(report.reads <= produced.get(), "{report:?}");
        assert!(sunk >= 1);
        assert!(
            elapsed < Duration::from_millis(300),
            "cancelled run still took {elapsed:?} (serial estimate 500 ms)"
        );
    }

    #[test]
    fn decode_failure_cancels_the_run() {
        let mapper = SlowMapper::with_delay(Duration::from_millis(2));
        let reads = slow_engine_reads(60);
        let cancel = CancelToken::new();
        let mut config = EngineConfig::with_threads(2).with_cancel(cancel.clone());
        config.batch_size = 1;
        config.queue_depth = 2;
        let engine = MapEngine::new(&mapper, config);
        let decode_failures = AtomicUsize::new(0);
        let report = engine.map_raw_stream(
            reads.iter().enumerate(),
            |(i, read)| {
                if i == 3 {
                    // A real decoder records its error here.
                    decode_failures.fetch_add(1, Ordering::Relaxed);
                    None
                } else {
                    Some(read)
                }
            },
            |read| *read,
            |_, _| {},
        );
        assert_eq!(decode_failures.load(Ordering::Relaxed), 1);
        assert!(cancel.is_cancelled(), "decode failure must cancel the run");
        assert!(
            report.reads < reads.len(),
            "run must not map the whole stream: {report:?}"
        );
    }

    #[test]
    fn already_cancelled_token_maps_nothing() {
        let (_, mapper) = setup();
        let cancel = CancelToken::new();
        cancel.cancel();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2).with_cancel(cancel));
        let reads = slow_engine_reads(10);
        let report = engine.map_stream(reads.iter(), |r| *r, |_, _| {});
        assert_eq!(report.reads, 0);
        assert_eq!(report.batches, 0);
    }

    #[test]
    fn sink_panic_surfaces_the_original_payload_once() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let mut config = EngineConfig::with_threads(4);
        config.batch_size = 1;
        let engine = MapEngine::new(&mapper, config);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            engine.map_stream(reads.iter(), |r| *r, |_, _| panic!("sink exploded"));
        }));
        let payload = result.expect_err("sink panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic payload is the original message");
        assert!(
            message.contains("sink exploded"),
            "expected the sink's own panic, got {message:?}"
        );
    }

    #[test]
    fn sink_runs_on_one_dedicated_thread_in_input_order() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let mut config = EngineConfig::with_threads(4);
        config.batch_size = 2; // interleave batches across workers
        let engine = MapEngine::new(&mapper, config);
        let caller = std::thread::current().id();
        let mut sink_threads = Vec::new();
        let mut order = Vec::new();
        engine.map_stream(
            reads.iter().enumerate(),
            |(_, read)| *read,
            |(index, _), _| {
                sink_threads.push(std::thread::current().id());
                order.push(index);
            },
        );
        assert_eq!(order, (0..reads.len()).collect::<Vec<_>>());
        assert!(
            sink_threads.iter().all(|&id| id == sink_threads[0]),
            "sink must run on exactly one thread"
        );
        assert_ne!(
            sink_threads[0], caller,
            "the writer is a dedicated thread, not the producer"
        );
    }

    #[test]
    fn worker_decode_is_timed_into_stats() {
        let (dataset, mapper) = setup();
        let texts: Vec<(String, String)> = dataset
            .reads
            .iter()
            .map(|r| (format!("read{}", r.id), r.seq.to_string()))
            .collect();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2));
        let report = engine.map_raw_stream(
            texts.iter(),
            |(_, text)| text.parse::<DnaSeq>().ok(),
            |read| read,
            |_, _| {},
        );
        assert_eq!(report.reads, texts.len());
        assert!(
            report.stats.decode > Duration::ZERO,
            "decode stage must be timed: {:?}",
            report.stats
        );
        // Transport time is excluded from the mapping-stage total.
        assert_eq!(
            report.stats.total_time(),
            report.stats.seeding + report.stats.filtering + report.stats.alignment
        );
    }

    #[test]
    fn writer_channel_stats_observe_depth_and_stalls() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let mut config = EngineConfig::with_threads(2);
        config.batch_size = 1;
        config.queue_depth = 1; // output channel capacity follows
        let engine = MapEngine::new(&mapper, config);
        let (_, report) = {
            let mut outcomes = Vec::new();
            let report = engine.map_stream(
                reads.iter(),
                |r| *r,
                |_, outcome| {
                    // A deliberately slow sink: the bounded channel must fill
                    // and stall the workers, never the other way around.
                    std::thread::sleep(Duration::from_millis(2));
                    outcomes.push(outcome);
                },
            );
            (outcomes, report)
        };
        assert!(report.queue.output_max_depth >= 1);
        assert!(
            report.queue.output_max_depth <= 1,
            "bounded channel must bound depth: {:?}",
            report.queue
        );
        assert!(
            report.queue.output_stall_waits > 0,
            "slow writer must stall workers: {:?}",
            report.queue
        );
        // A recorded wait implies recorded blocked time, and vice versa.
        assert_eq!(
            report.queue.output_stall_waits > 0,
            report.queue.output_stall_wait > Duration::ZERO
        );
        assert_eq!(
            report.queue.writer_waits > 0,
            report.queue.writer_wait > Duration::ZERO
        );
    }

    #[test]
    fn decode_errors_settle_to_the_files_first_failure() {
        // Two malformed records (stream indices 5 and 9) in a 16-record
        // stream, two workers, batch_size 8: one worker is still inside
        // batch 0 (records 0..8, held open by record 0) when the other
        // worker's record 9 fails and cancels the run. Before the settle
        // path, the first worker dropped records 1..8 undecoded on the
        // cancellation check and the run reported record 9 — the racy
        // behavior this test pins down.
        let (dataset, mapper) = setup();
        let read = dataset.reads[0].seq.clone();
        for attempt in 0..8 {
            let cancel = CancelToken::new();
            let mut config = EngineConfig::with_threads(2).with_cancel(cancel.clone());
            config.batch_size = 8;
            config.queue_depth = 4;
            let engine = MapEngine::new(&mapper, config);
            let first_error: Mutex<Option<usize>> = Mutex::new(None);
            let gate = cancel.clone();
            engine.map_raw_stream(
                0..16usize,
                |i| {
                    if i == 0 {
                        // Hold batch 0 open until the cancellation fires
                        // (bounded so a regression cannot hang the test).
                        let waited = Instant::now();
                        while !gate.is_cancelled() && waited.elapsed() < Duration::from_secs(2) {
                            std::thread::yield_now();
                        }
                    }
                    if i == 5 || i == 9 {
                        // A real decoder keeps the smallest failing line,
                        // exactly as the CLI's error slot does.
                        let mut slot = relock(&first_error);
                        *slot = Some(slot.map_or(i, |prev| prev.min(i)));
                        return None;
                    }
                    Some(read.clone())
                },
                |r| r,
                |_, _| {},
            );
            assert_eq!(
                *relock(&first_error),
                Some(5),
                "attempt {attempt}: the settled decode error must be the \
                 file's first malformed record"
            );
        }
    }

    /// A [`ReadMapper`] that sleeps only on one sentinel read — the tool
    /// for making exactly one batch slow while the rest of the stream is
    /// fast (reorder-park scenarios).
    struct SelectiveSlowMapper {
        graph: segram_graph::GenomeGraph,
        slow: DnaSeq,
        delay: Duration,
    }

    impl ReadMapper for SelectiveSlowMapper {
        fn graph(&self) -> &segram_graph::GenomeGraph {
            &self.graph
        }

        fn map_read(&self, read: &DnaSeq) -> (Option<Mapping>, MapStats) {
            if *read == self.slow {
                std::thread::sleep(self.delay);
            }
            (None, MapStats::default())
        }

        fn map_read_both(&self, read: &DnaSeq) -> (Option<(Mapping, Strand)>, MapStats) {
            let (mapping, stats) = self.map_read(read);
            (mapping.map(|m| (m, Strand::Forward)), stats)
        }
    }

    #[test]
    fn reorder_park_counts_one_stall_per_period_not_per_poll_wakeup() {
        // Batch 0 maps for ~400 ms while everything else is instant, so
        // with queue_depth 1 and 2 threads (max_ahead = 3) the second
        // worker finishes batches 1 and 2 and then parks on batch 3 for
        // the rest of the slow batch — a single genuine stall spanning
        // many 50 ms cancellation-poll wakeups. Counting wakeups instead
        // of periods would report ~8 stalls here and poison the
        // admission-control signal.
        let dataset = DatasetConfig::tiny(97).illumina(100);
        let slow = dataset.reads[0].seq.clone();
        let fast = dataset.reads[1].seq.clone();
        assert_ne!(slow, fast);
        let mapper = SelectiveSlowMapper {
            graph: dataset.graph().clone(),
            slow: slow.clone(),
            delay: Duration::from_millis(400),
        };
        let mut config = EngineConfig::with_threads(2);
        config.batch_size = 1;
        config.queue_depth = 1;
        let engine = MapEngine::new(&mapper, config);
        let mut reads = vec![slow];
        reads.extend(std::iter::repeat_with(|| fast.clone()).take(7));
        let (_, report) = engine.map_batch(&reads);
        assert!(
            report.queue.park_waits >= 1,
            "the second worker must park behind the slow batch: {:?}",
            report.queue
        );
        assert!(
            report.queue.park_wait >= Duration::from_millis(200),
            "the park spans most of the slow batch: {:?}",
            report.queue
        );
        // The pinned bug: the parked period above spans at least four
        // 50 ms poll wakeups; per-wakeup counting would report >= 4.
        assert!(
            report.queue.park_waits <= 2,
            "one parked period must count once, not once per poll wakeup: {:?}",
            report.queue
        );
        // A recorded park implies recorded parked time, and vice versa.
        assert_eq!(
            report.queue.park_waits > 0,
            report.queue.park_wait > Duration::ZERO
        );
    }

    #[test]
    fn unparked_runs_record_no_park_stalls() {
        // Plenty of reorder headroom: nobody should ever park, so the
        // counter must stay zero (no spurious counts from the poll loop).
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2));
        let (_, report) = engine.map_batch(&reads);
        assert_eq!(report.queue.park_waits, 0, "{:?}", report.queue);
        assert_eq!(report.queue.park_wait, Duration::ZERO);
    }

    #[test]
    fn both_strand_engine_recovers_reverse_reads() {
        let dataset = DatasetConfig::tiny(95).illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let stranded = segram_sim::simulate_stranded_reads(
            dataset.graph(),
            &segram_sim::ReadConfig::short_reads(10, 100, 96),
            1.0,
        );
        let reads: Vec<DnaSeq> = stranded.iter().map(|r| r.seq.clone()).collect();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2).both_strands(true));
        let (outcomes, report) = engine.map_batch(&reads);
        assert!(report.mapped >= 8, "only {} of 10 mapped", report.mapped);
        assert!(outcomes
            .iter()
            .filter_map(|o| o.mapping.as_ref().map(|_| o.strand))
            .any(|s| s == Strand::Reverse));
    }

    #[test]
    fn block_stream_fans_multiple_reads_per_raw_unit_in_order() {
        // One raw unit = a "block" of several reads (the BGZF shape).
        // The outcome stream must equal the per-read reference, and the
        // block's inflate share must land in the aggregated stats.
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let (base, _) = MapEngine::new(&mapper, EngineConfig::with_threads(1)).map_batch(&reads);
        let blocks: Vec<Vec<DnaSeq>> = reads.chunks(3).map(<[DnaSeq]>::to_vec).collect();
        let mut config = EngineConfig::with_threads(4);
        config.batch_size = 2; // batches of blocks, interleaved across workers
        let engine = MapEngine::new(&mapper, config);
        let mut outcomes = Vec::new();
        let report = engine.map_block_stream(
            blocks.into_iter(),
            |block| {
                Some(DecodedBlock {
                    items: block,
                    inflate: Duration::from_micros(40),
                })
            },
            |read| read,
            |_, outcome| outcomes.push(outcome),
        );
        assert_eq!(report.reads, reads.len());
        assert!(
            report.stats.inflate >= Duration::from_micros(40),
            "inflate share must aggregate: {:?}",
            report.stats.inflate
        );
        for (a, b) in base.iter().zip(&outcomes) {
            assert_eq!(
                a.mapping.as_ref().map(|m| m.linear_start),
                b.mapping.as_ref().map(|m| m.linear_start),
            );
        }
    }

    #[test]
    fn empty_blocks_carry_their_time_without_emitting_reads() {
        // Blocks that complete no record (all bytes belong to straddling
        // neighbours) are legal: read count unaffected, inflate time
        // still accounted via the carry.
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let raws: Vec<Option<DnaSeq>> = reads
            .iter()
            .flat_map(|read| [None, Some(read.clone())])
            .collect();
        let engine = MapEngine::new(&mapper, EngineConfig::with_threads(2));
        let mut seen = 0usize;
        let report = engine.map_block_stream(
            raws.into_iter(),
            |raw| {
                Some(DecodedBlock {
                    items: raw.into_iter().collect(),
                    inflate: Duration::from_micros(10),
                })
            },
            |read| read,
            |_, _| seen += 1,
        );
        assert_eq!(report.reads, reads.len());
        assert_eq!(seen, reads.len());
        // Every raw unit contributed 10 µs of inflate, including the
        // empty ones whose time was carried onto a later read.
        assert!(
            report.stats.inflate >= Duration::from_micros(10) * (reads.len() as u32 * 2 - 1),
            "carried inflate time lost: {:?}",
            report.stats.inflate
        );
    }

    #[test]
    fn adaptive_batching_stays_in_bounds_and_preserves_output() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let (base, _) = MapEngine::new(&mapper, EngineConfig::with_threads(1)).map_batch(&reads);
        for threads in [1usize, 4] {
            let mut config = EngineConfig::with_threads(threads);
            config.batch_size = 2;
            config.queue_depth = 2;
            config.adaptive_batch = Some(BatchBounds { min: 1, max: 8 });
            let engine = MapEngine::new(&mapper, config);
            let (outcomes, report) = engine.map_batch(&reads);
            assert_eq!(report.reads, reads.len());
            assert!(report.batching.adaptive);
            assert_eq!(report.batching.initial, 2);
            assert!(report.batching.min_used >= 1 && report.batching.max_used <= 8);
            assert!(
                report.batching.last >= report.batching.min_used
                    && report.batching.last <= report.batching.max_used
            );
            for (a, b) in base.iter().zip(&outcomes) {
                assert_eq!(
                    a.mapping.as_ref().map(|m| m.linear_start),
                    b.mapping.as_ref().map(|m| m.linear_start),
                    "threads {threads}"
                );
            }
        }
    }

    #[test]
    fn fixed_runs_report_their_batch_size_as_the_trajectory() {
        let (dataset, mapper) = setup();
        let reads: Vec<DnaSeq> = dataset.reads.iter().map(|r| r.seq.clone()).collect();
        let mut config = EngineConfig::with_threads(2);
        config.batch_size = 5;
        let engine = MapEngine::new(&mapper, config);
        let (_, report) = engine.map_batch(&reads);
        assert!(!report.batching.adaptive);
        assert_eq!(report.batching.initial, 5);
        assert_eq!(report.batching.last, 5);
        assert_eq!(report.batching.min_used, 5);
        assert_eq!(report.batching.max_used, 5);
        assert_eq!(report.batching.grows + report.batching.shrinks, 0);
    }
}
