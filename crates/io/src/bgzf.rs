//! BGZF container framing and an offline, in-tree DEFLATE codec.
//!
//! Real sequencing traffic arrives BGZF-compressed (the blocked gzip
//! dialect of htslib: a stream of independent gzip members, each carrying
//! a `BC` extra subfield with the compressed block size, terminated by a
//! canonical empty EOF-marker member). Because every member is
//! self-contained, the container splits exactly like raw FASTQ framing
//! does: the producer thread only *slices* compressed blocks off the
//! stream ([`BgzfBlocks`]), and inflation runs in the worker stage
//! ([`BgzfBlock::inflate`]) right before FASTQ decode — the same
//! producer/worker split `FastqFramer` established for plain bytes.
//!
//! Everything is implemented here, offline, with no external crates:
//!
//! * a DEFLATE (RFC 1951) inflater supporting stored, fixed-Huffman and
//!   dynamic-Huffman blocks ([`inflate`]), bit-by-bit canonical Huffman
//!   decoding in the style of Mark Adler's `puff`;
//! * gzip's CRC32 ([`crc32`]) for payload verification;
//! * BGZF member parsing with `BSIZE` bookkeeping, CRC32 + ISIZE
//!   verification and EOF-marker detection — every failure mode a named
//!   [`BgzfError`] variant, never a panic;
//! * a minimal compressor ([`bgzf_compress`]) emitting stored or
//!   fixed-Huffman members, so tests and `ci.sh` fabricate compressed
//!   fixtures with zero external tooling.
//!
//! ```
//! use segram_io::{bgzf_compress, BgzfBlocks, BgzfMode};
//!
//! let plain = b"@r1\nACGT\n+\nIIII\n";
//! let compressed = bgzf_compress(plain, 8, BgzfMode::Fixed);
//! let mut out = Vec::new();
//! for block in BgzfBlocks::new(&compressed[..]) {
//!     out.extend(block?.inflate()?);
//! }
//! assert_eq!(out, plain);
//! # Ok::<(), segram_io::BgzfError>(())
//! ```

use std::io::{self, Read, Write};

use crate::error::BgzfError;

/// The two magic bytes every gzip member (and thus every BGZF block)
/// starts with — [`looks_like_gzip`] sniffs them to auto-detect
/// compressed input.
pub const GZIP_MAGIC: [u8; 2] = [0x1f, 0x8b];

/// The canonical 28-byte BGZF EOF marker: an empty member (zero-length
/// payload in one fixed-Huffman block) that htslib appends to every
/// complete file and requires at end of stream.
pub const BGZF_EOF: [u8; 28] = [
    0x1f, 0x8b, 0x08, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0xff, 0x06, 0x00, 0x42, 0x43, 0x02, 0x00,
    0x1b, 0x00, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
];

/// Whether a 2-byte sniff of a stream head is a gzip member header —
/// the format auto-detection used by `segram map` to route a reads file
/// down the compressed or the plain framing path.
pub fn looks_like_gzip(head: &[u8]) -> bool {
    head.len() >= 2 && head[..2] == GZIP_MAGIC
}

// ---------------------------------------------------------------------
// CRC32 (the gzip/IEEE polynomial, reflected).
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// CRC32 of `data` (IEEE polynomial, as stored in gzip trailers).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &byte in data {
        c = CRC_TABLE[((c ^ byte as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// DEFLATE inflate (RFC 1951).
// ---------------------------------------------------------------------

/// Maximum number of bits in a DEFLATE Huffman code.
const MAX_BITS: usize = 15;
/// Literal/length alphabet size.
const MAX_LCODES: usize = 286;
/// Distance alphabet size.
const MAX_DCODES: usize = 30;
/// Order in which code-length code lengths are stored (RFC 1951 §3.2.7).
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];
/// Base match lengths for length codes 257..=285.
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits for length codes 257..=285.
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Base distances for distance codes 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits for distance codes 0..=29.
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// An LSB-first bit reader over a byte slice; running out of bytes is a
/// named error, never a panic.
struct BitReader<'a> {
    data: &'a [u8],
    /// Next unread byte.
    byte: usize,
    /// Bits already consumed from `data[byte]`.
    bit: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            byte: 0,
            bit: 0,
        }
    }

    /// Reads `count` bits (LSB first), `count <= 16`.
    fn take(&mut self, count: u32) -> Result<u32, &'static str> {
        let mut value = 0u32;
        for i in 0..count {
            let Some(&byte) = self.data.get(self.byte) else {
                return Err("deflate stream ended inside a block");
            };
            value |= (((byte >> self.bit) & 1) as u32) << i;
            self.bit += 1;
            if self.bit == 8 {
                self.bit = 0;
                self.byte += 1;
            }
        }
        Ok(value)
    }

    /// Discards bits up to the next byte boundary (stored-block headers
    /// are byte-aligned).
    fn align(&mut self) {
        if self.bit != 0 {
            self.bit = 0;
            self.byte += 1;
        }
    }

    /// Whether every payload byte has been consumed (a partially-read
    /// final byte counts as consumed: it is legal bit padding).
    fn exhausted(&self) -> bool {
        self.byte + usize::from(self.bit > 0) >= self.data.len()
    }
}

/// A canonical Huffman decoding table in `puff` style: symbol counts per
/// code length plus symbols sorted by (length, symbol).
struct Huffman {
    count: [u16; MAX_BITS + 1],
    symbol: Vec<u16>,
}

impl Huffman {
    /// Builds the table from per-symbol code lengths (0 = unused).
    /// Rejects over-subscribed length sets; incomplete sets are allowed
    /// (decoding an unassigned code then errors), matching `puff` and
    /// what real encoders emit for single-symbol distance alphabets.
    fn build(lengths: &[u8]) -> Result<Self, &'static str> {
        let mut count = [0u16; MAX_BITS + 1];
        for &len in lengths {
            if len as usize > MAX_BITS {
                return Err("code length exceeds 15 bits");
            }
            count[len as usize] += 1;
        }
        if count[0] as usize == lengths.len() {
            return Err("huffman alphabet has no symbols");
        }
        let mut left = 1i32;
        for &n in count.iter().take(MAX_BITS + 1).skip(1) {
            left <<= 1;
            left -= n as i32;
            if left < 0 {
                return Err("over-subscribed huffman code lengths");
            }
        }
        let mut offsets = [0usize; MAX_BITS + 2];
        for len in 1..=MAX_BITS {
            offsets[len + 1] = offsets[len] + count[len] as usize;
        }
        let mut symbol = vec![0u16; lengths.len() - count[0] as usize];
        for (sym, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbol[offsets[len as usize]] = sym as u16;
                offsets[len as usize] += 1;
            }
        }
        Ok(Self { count, symbol })
    }

    /// Decodes one symbol, reading the stream bit by bit.
    fn decode(&self, bits: &mut BitReader<'_>) -> Result<u16, &'static str> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..=MAX_BITS {
            code |= bits.take(1)? as i32;
            let count = self.count[len] as i32;
            if code - first < count {
                return Ok(self.symbol[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err("invalid huffman code (unassigned)")
    }
}

/// The fixed literal/length code of RFC 1951 §3.2.6.
fn fixed_literal_lengths() -> [u8; 288] {
    let mut lengths = [8u8; 288];
    for len in lengths.iter_mut().take(256).skip(144) {
        *len = 9;
    }
    for len in lengths.iter_mut().take(280).skip(256) {
        *len = 7;
    }
    lengths
}

/// Decodes the compressed body of one block given its two code tables;
/// shared by the fixed and dynamic paths.
fn inflate_codes(
    bits: &mut BitReader<'_>,
    lit: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
) -> Result<(), &'static str> {
    loop {
        let symbol = lit.decode(bits)?;
        match symbol {
            0..=255 => out.push(symbol as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = symbol as usize - 257;
                let length =
                    LENGTH_BASE[idx] as usize + bits.take(LENGTH_EXTRA[idx] as u32)? as usize;
                let dsym = dist.decode(bits)? as usize;
                if dsym >= MAX_DCODES {
                    return Err("invalid distance symbol");
                }
                let distance =
                    DIST_BASE[dsym] as usize + bits.take(DIST_EXTRA[dsym] as u32)? as usize;
                if distance > out.len() {
                    return Err("back-reference before start of output");
                }
                let start = out.len() - distance;
                // Overlapping copies are the LZ77 run-length idiom
                // (distance < length), so copy byte by byte.
                for i in 0..length {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            _ => return Err("invalid literal/length symbol"),
        }
    }
}

/// Decodes the dynamic-Huffman table definition at the head of a
/// BTYPE=10 block and returns the (literal, distance) tables.
fn dynamic_tables(bits: &mut BitReader<'_>) -> Result<(Huffman, Huffman), &'static str> {
    let hlit = bits.take(5)? as usize + 257;
    let hdist = bits.take(5)? as usize + 1;
    let hclen = bits.take(4)? as usize + 4;
    if hlit > MAX_LCODES || hdist > MAX_DCODES {
        return Err("too many literal or distance codes");
    }
    let mut clen_lengths = [0u8; 19];
    for &pos in CLEN_ORDER.iter().take(hclen) {
        clen_lengths[pos] = bits.take(3)? as u8;
    }
    let clen = Huffman::build(&clen_lengths)?;
    let mut lengths = [0u8; MAX_LCODES + MAX_DCODES];
    let total = hlit + hdist;
    let mut index = 0;
    while index < total {
        let symbol = clen.decode(bits)?;
        match symbol {
            0..=15 => {
                lengths[index] = symbol as u8;
                index += 1;
            }
            16 => {
                if index == 0 {
                    return Err("repeat code with no previous length");
                }
                let prev = lengths[index - 1];
                let repeat = 3 + bits.take(2)? as usize;
                if index + repeat > total {
                    return Err("code-length repeat overruns the alphabet");
                }
                lengths[index..index + repeat].fill(prev);
                index += repeat;
            }
            17 | 18 => {
                let repeat = if symbol == 17 {
                    3 + bits.take(3)? as usize
                } else {
                    11 + bits.take(7)? as usize
                };
                if index + repeat > total {
                    return Err("code-length repeat overruns the alphabet");
                }
                index += repeat; // already zero
            }
            _ => return Err("invalid code-length symbol"),
        }
    }
    if lengths[256] == 0 {
        return Err("dynamic block has no end-of-block code");
    }
    let lit = Huffman::build(&lengths[..hlit])?;
    let dist = Huffman::build(&lengths[hlit..total])?;
    Ok((lit, dist))
}

/// Inflates a raw DEFLATE stream (RFC 1951: stored, fixed-Huffman and
/// dynamic-Huffman blocks). `size_hint` pre-sizes the output (callers
/// pass the trailer's ISIZE, clamped — a hostile hint cannot
/// over-allocate).
///
/// # Errors
///
/// A static description of the first structural violation; the BGZF
/// layer wraps it into [`BgzfError::BadDeflate`]. Hostile input never
/// panics and never reads out of bounds.
pub fn inflate(data: &[u8], size_hint: usize) -> Result<Vec<u8>, &'static str> {
    let mut bits = BitReader::new(data);
    let mut out = Vec::with_capacity(size_hint.min(2 * BGZF_MAX_PLAIN));
    loop {
        let last = bits.take(1)? == 1;
        match bits.take(2)? {
            0 => {
                bits.align();
                let Some(header) = bits.data.get(bits.byte..bits.byte + 4) else {
                    return Err("stored block header truncated");
                };
                let len = u16::from_le_bytes([header[0], header[1]]) as usize;
                let nlen = u16::from_le_bytes([header[2], header[3]]);
                if nlen != !(len as u16) {
                    return Err("stored block length check (NLEN) failed");
                }
                bits.byte += 4;
                let Some(body) = bits.data.get(bits.byte..bits.byte + len) else {
                    return Err("stored block overruns the payload");
                };
                out.extend_from_slice(body);
                bits.byte += len;
            }
            1 => {
                let lit = Huffman::build(&fixed_literal_lengths())?;
                let dist = Huffman::build(&[5u8; 30])?;
                inflate_codes(&mut bits, &lit, &dist, &mut out)?;
            }
            2 => {
                let (lit, dist) = dynamic_tables(&mut bits)?;
                inflate_codes(&mut bits, &lit, &dist, &mut out)?;
            }
            _ => return Err("reserved block type (BTYPE=11)"),
        }
        if last {
            break;
        }
    }
    if !bits.exhausted() {
        return Err("trailing garbage after the final block");
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// BGZF container parsing.
// ---------------------------------------------------------------------

/// Fixed gzip member header length up to (and including) XLEN.
const GZIP_HEADER: usize = 12;
/// Most plain bytes packed into one member by [`bgzf_compress`]; chosen
/// so even a worst-case fixed-Huffman expansion (9 bits/byte) plus
/// framing stays under the `BSIZE` u16 ceiling.
pub const BGZF_MAX_PLAIN: usize = 57000;

/// One sliced (still compressed) BGZF block: the producer-side frame of
/// the compressed input path. Inflation ([`Self::inflate`]) is the
/// worker-stage half.
#[derive(Clone, Debug)]
pub struct BgzfBlock {
    index: usize,
    offset: u64,
    cdata: Vec<u8>,
    crc: u32,
    isize: u32,
    last: bool,
}

impl BgzfBlock {
    /// 0-based position of this block in the stream.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Byte offset of the block's member header in the compressed input.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Whether this is the stream's final block (the EOF marker).
    pub fn is_last(&self) -> bool {
        self.last
    }

    /// The still-compressed DEFLATE payload (tests corrupt this).
    pub fn cdata(&self) -> &[u8] {
        &self.cdata
    }

    /// Inflates and verifies the payload: DEFLATE decode, then ISIZE,
    /// then CRC32 — the worker-stage half of compressed framing.
    ///
    /// # Errors
    ///
    /// [`BgzfError::BadDeflate`] on a malformed payload,
    /// [`BgzfError::CrcMismatch`] when the inflated bytes fail either
    /// integrity check. Never panics.
    pub fn inflate(&self) -> Result<Vec<u8>, BgzfError> {
        let out =
            inflate(&self.cdata, self.isize as usize).map_err(|reason| BgzfError::BadDeflate {
                block: self.index,
                reason,
            })?;
        if out.len() as u32 != self.isize {
            return Err(BgzfError::CrcMismatch {
                block: self.index,
                check: "ISIZE",
                stored: self.isize,
                computed: out.len() as u32,
            });
        }
        let computed = crc32(&out);
        if computed != self.crc {
            return Err(BgzfError::CrcMismatch {
                block: self.index,
                check: "CRC32",
                stored: self.crc,
                computed,
            });
        }
        Ok(out)
    }
}

/// An iterator slicing a byte stream into [`BgzfBlock`]s — the
/// producer-thread half of compressed input framing. It parses member
/// headers and `BSIZE`s only; payloads stay compressed for the workers.
///
/// The stream must end with the canonical EOF marker ([`BGZF_EOF`]);
/// the marker is yielded as the final block with
/// [`BgzfBlock::is_last`] set (its payload inflates to nothing), and a
/// clean end of input without it is [`BgzfError::MissingEof`]. After
/// yielding an error the iterator fuses.
#[derive(Debug)]
pub struct BgzfBlocks<R: Read> {
    source: R,
    /// Bytes read from the source but not yet consumed into blocks.
    buffer: Vec<u8>,
    /// Byte offset of `buffer[0]` in the overall stream.
    offset: u64,
    /// The source reported end of input.
    eof: bool,
    /// Blocks sliced so far.
    index: usize,
    /// Set once the iterator has finished (marker seen or error yielded).
    done: bool,
}

impl<R: Read> BgzfBlocks<R> {
    /// Wraps a compressed byte source.
    pub fn new(source: R) -> Self {
        Self {
            source,
            buffer: Vec::new(),
            offset: 0,
            eof: false,
            index: 0,
            done: false,
        }
    }

    /// Ensures at least `need` bytes are buffered; returns the number
    /// actually available (less only at end of input).
    fn fill_to(&mut self, need: usize) -> std::io::Result<usize> {
        let mut chunk = [0u8; 16 * 1024];
        while self.buffer.len() < need && !self.eof {
            let n = match self.source.read(&mut chunk) {
                Ok(n) => n,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(err) => return Err(err),
            };
            if n == 0 {
                self.eof = true;
            } else {
                self.buffer.extend_from_slice(&chunk[..n]);
            }
        }
        Ok(self.buffer.len().min(need))
    }

    /// Parses the next block off the buffer. `Ok(None)` is clean end of
    /// input (no bytes left at a block boundary).
    fn read_block(&mut self) -> Result<Option<BgzfBlock>, BgzfError> {
        let offset = self.offset;
        let truncated = BgzfError::Truncated { offset };
        let io_as_truncated = |_| BgzfError::Truncated { offset };
        if self.fill_to(GZIP_HEADER).map_err(io_as_truncated)? == 0 {
            return Ok(None);
        }
        if self.buffer.len() < GZIP_HEADER {
            // Partial header: enough bytes to know more was coming.
            return Err(
                if self.buffer.len() >= 2 && !looks_like_gzip(&self.buffer) {
                    BgzfError::BadMagic { offset }
                } else {
                    truncated
                },
            );
        }
        if self.buffer[..2] != GZIP_MAGIC || self.buffer[2] != 0x08 {
            return Err(BgzfError::BadMagic { offset });
        }
        let flags = self.buffer[3];
        if flags & 0x04 == 0 {
            return Err(BgzfError::BadExtra {
                offset,
                reason: "no FEXTRA field (plain gzip, not BGZF)",
            });
        }
        let xlen = u16::from_le_bytes([self.buffer[10], self.buffer[11]]) as usize;
        let header_len = GZIP_HEADER + xlen;
        if self.fill_to(header_len).map_err(io_as_truncated)? < header_len {
            return Err(truncated);
        }
        // Scan the extra subfields for BC (SLEN must be 2).
        let mut bsize: Option<usize> = None;
        let extra = &self.buffer[GZIP_HEADER..header_len];
        let mut at = 0;
        while at + 4 <= extra.len() {
            let slen = u16::from_le_bytes([extra[at + 2], extra[at + 3]]) as usize;
            if at + 4 + slen > extra.len() {
                return Err(BgzfError::BadExtra {
                    offset,
                    reason: "extra subfield overruns XLEN",
                });
            }
            if extra[at] == b'B' && extra[at + 1] == b'C' {
                if slen != 2 {
                    return Err(BgzfError::BadExtra {
                        offset,
                        reason: "BC subfield length is not 2",
                    });
                }
                bsize = Some(u16::from_le_bytes([extra[at + 4], extra[at + 5]]) as usize + 1);
            }
            at += 4 + slen;
        }
        if at != extra.len() {
            return Err(BgzfError::BadExtra {
                offset,
                reason: "trailing bytes after the last extra subfield",
            });
        }
        let Some(total) = bsize else {
            return Err(BgzfError::BadExtra {
                offset,
                reason: "no BC subfield (BSIZE missing)",
            });
        };
        if total < header_len + 8 {
            return Err(BgzfError::BadExtra {
                offset,
                reason: "BSIZE smaller than the member's own framing",
            });
        }
        if self.fill_to(total).map_err(io_as_truncated)? < total {
            return Err(truncated);
        }
        let cdata = self.buffer[header_len..total - 8].to_vec();
        let crc = u32::from_le_bytes(self.buffer[total - 8..total - 4].try_into().unwrap());
        let isize = u32::from_le_bytes(self.buffer[total - 4..total].try_into().unwrap());
        let last = self.buffer[..total] == BGZF_EOF;
        self.buffer.drain(..total);
        self.offset += total as u64;
        let block = BgzfBlock {
            index: self.index,
            offset,
            cdata,
            crc,
            isize,
            last,
        };
        self.index += 1;
        Ok(Some(block))
    }
}

impl<R: Read> Iterator for BgzfBlocks<R> {
    type Item = Result<BgzfBlock, BgzfError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_block() {
            Ok(Some(block)) => {
                if block.last {
                    // The EOF marker ends the stream; anything after it
                    // (concatenated archives) is out of scope here.
                    self.done = true;
                }
                Some(Ok(block))
            }
            Ok(None) => {
                self.done = true;
                Some(Err(BgzfError::MissingEof))
            }
            Err(err) => {
                self.done = true;
                Some(Err(err))
            }
        }
    }
}

// ---------------------------------------------------------------------
// The minimal in-tree compressor (fixture factory for tests and ci.sh).
// ---------------------------------------------------------------------

/// How [`bgzf_compress`] encodes each member's DEFLATE payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BgzfMode {
    /// Stored (BTYPE=00) blocks: no compression, trivially correct.
    Stored,
    /// Fixed-Huffman (BTYPE=01) blocks with a greedy LZ77 matcher.
    Fixed,
}

/// An LSB-first bit writer (the mirror of [`BitReader`]).
struct BitWriter {
    out: Vec<u8>,
    bit: u32,
}

impl BitWriter {
    fn new() -> Self {
        Self {
            out: Vec::new(),
            bit: 0,
        }
    }

    /// Writes `count` bits of `value`, LSB first (extra-bit fields).
    fn put(&mut self, value: u32, count: u32) {
        for i in 0..count {
            if self.bit == 0 {
                self.out.push(0);
            }
            if value >> i & 1 != 0 {
                *self.out.last_mut().expect("pushed above") |= 1 << self.bit;
            }
            self.bit = (self.bit + 1) % 8;
        }
    }

    /// Writes a Huffman code: MSB of the code first (RFC 1951 §3.1.1).
    fn put_code(&mut self, code: u32, len: u32) {
        for i in (0..len).rev() {
            self.put(code >> i & 1, 1);
        }
    }

    fn finish(self) -> Vec<u8> {
        self.out
    }
}

/// The fixed-Huffman code for one literal/length symbol.
fn fixed_code(symbol: u16) -> (u32, u32) {
    match symbol {
        0..=143 => (0x30 + symbol as u32, 8),
        144..=255 => (0x190 + (symbol as u32 - 144), 9),
        256..=279 => (symbol as u32 - 256, 7),
        _ => (0xc0 + (symbol as u32 - 280), 8),
    }
}

/// Emits one length/distance pair with the fixed codes.
fn put_match(bits: &mut BitWriter, length: usize, distance: usize) {
    let idx = LENGTH_BASE
        .iter()
        .rposition(|&base| base as usize <= length)
        .expect("length >= 3");
    let (code, len) = fixed_code(257 + idx as u16);
    bits.put_code(code, len);
    bits.put(
        (length - LENGTH_BASE[idx] as usize) as u32,
        LENGTH_EXTRA[idx] as u32,
    );
    let didx = DIST_BASE
        .iter()
        .rposition(|&base| base as usize <= distance)
        .expect("distance >= 1");
    bits.put_code(didx as u32, 5);
    bits.put(
        (distance - DIST_BASE[didx] as usize) as u32,
        DIST_EXTRA[didx] as u32,
    );
}

/// Deflates `data` as one final fixed-Huffman block with a greedy
/// hash-chained LZ77 matcher (min match 3, max 258, 32 KiB window).
fn deflate_fixed(data: &[u8]) -> Vec<u8> {
    const WINDOW: usize = 32 * 1024;
    const CHAIN: usize = 16;
    let mut bits = BitWriter::new();
    bits.put(1, 1); // BFINAL
    bits.put(1, 2); // BTYPE=01
    let mut heads: std::collections::HashMap<[u8; 3], Vec<usize>> =
        std::collections::HashMap::new();
    let mut pos = 0;
    while pos < data.len() {
        let mut best: Option<(usize, usize)> = None; // (length, distance)
        if pos + 3 <= data.len() {
            let key = [data[pos], data[pos + 1], data[pos + 2]];
            if let Some(starts) = heads.get(&key) {
                for &start in starts.iter().rev().take(CHAIN) {
                    if pos - start > WINDOW {
                        break;
                    }
                    let limit = (data.len() - pos).min(258);
                    let mut len = 0;
                    while len < limit && data[start + len] == data[pos + len] {
                        len += 1;
                    }
                    if len >= 3 && best.is_none_or(|(b, _)| len > b) {
                        best = Some((len, pos - start));
                    }
                }
            }
        }
        let advance = match best {
            Some((length, distance)) => {
                put_match(&mut bits, length, distance);
                length
            }
            None => {
                let (code, len) = fixed_code(data[pos] as u16);
                bits.put_code(code, len);
                1
            }
        };
        for p in pos..(pos + advance).min(data.len().saturating_sub(2)) {
            heads
                .entry([data[p], data[p + 1], data[p + 2]])
                .or_default()
                .push(p);
        }
        pos += advance;
    }
    let (eob, eob_len) = fixed_code(256);
    bits.put_code(eob, eob_len);
    bits.finish()
}

/// Deflates `data` as one final stored block (`data.len() <= 65535`).
fn deflate_stored(data: &[u8]) -> Vec<u8> {
    let len = data.len() as u16;
    let mut out = Vec::with_capacity(data.len() + 5);
    out.push(0x01); // BFINAL=1, BTYPE=00
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&(!len).to_le_bytes());
    out.extend_from_slice(data);
    out
}

/// Encodes one complete BGZF member holding `chunk`
/// (`chunk.len() <= `[`BGZF_MAX_PLAIN`], panics otherwise — this is the
/// fixture factory, not a general-purpose encoder). Falls back to a
/// stored block if fixed-Huffman coding would overflow `BSIZE`'s u16.
pub fn bgzf_member(chunk: &[u8], mode: BgzfMode) -> Vec<u8> {
    assert!(
        chunk.len() <= BGZF_MAX_PLAIN,
        "BGZF member payload over {BGZF_MAX_PLAIN} bytes"
    );
    let mut cdata = match mode {
        BgzfMode::Stored => deflate_stored(chunk),
        BgzfMode::Fixed => deflate_fixed(chunk),
    };
    let framing = GZIP_HEADER + 6 + 8;
    if cdata.len() + framing > u16::MAX as usize {
        cdata = deflate_stored(chunk);
    }
    let total = framing + cdata.len();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&[0x1f, 0x8b, 0x08, 0x04, 0, 0, 0, 0, 0, 0xff]);
    out.extend_from_slice(&6u16.to_le_bytes()); // XLEN
    out.extend_from_slice(b"BC");
    out.extend_from_slice(&2u16.to_le_bytes()); // SLEN
    out.extend_from_slice(&((total - 1) as u16).to_le_bytes()); // BSIZE
    out.extend_from_slice(&cdata);
    out.extend_from_slice(&crc32(chunk).to_le_bytes());
    out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
    out
}

/// Compresses `data` into a complete BGZF stream: members of at most
/// `block_size` plain bytes each (clamped to `1..=`[`BGZF_MAX_PLAIN`]),
/// terminated by the canonical EOF marker.
pub fn bgzf_compress(data: &[u8], block_size: usize, mode: BgzfMode) -> Vec<u8> {
    let block_size = block_size.clamp(1, BGZF_MAX_PLAIN);
    let mut out = Vec::new();
    for chunk in data.chunks(block_size) {
        out.extend_from_slice(&bgzf_member(chunk, mode));
    }
    out.extend_from_slice(&BGZF_EOF);
    out
}

/// A streaming BGZF compressor: a [`Write`] adapter that buffers plain
/// bytes into members of at most `block_size` bytes (`segram map
/// --compress-output` wraps its SAM/GAF sinks in one per writer thread).
///
/// [`finish`](Self::finish) emits the buffered tail and the canonical
/// 28-byte EOF marker — the htslib completeness signal — so a stream is
/// only well-terminated on a clean close. Dropping the writer without
/// `finish` leaves the output EOF-less, exactly how a truncated file
/// should look to downstream readers.
#[derive(Debug)]
pub struct BgzfWriter<W: Write> {
    sink: W,
    mode: BgzfMode,
    block_size: usize,
    buffer: Vec<u8>,
}

impl<W: Write> BgzfWriter<W> {
    /// Wraps `sink`, compressing with full-sized members.
    pub fn new(sink: W, mode: BgzfMode) -> Self {
        Self::with_block_size(sink, mode, BGZF_MAX_PLAIN)
    }

    /// Wraps `sink` with an explicit member payload size (clamped to
    /// `1..=`[`BGZF_MAX_PLAIN`]).
    pub fn with_block_size(sink: W, mode: BgzfMode, block_size: usize) -> Self {
        Self {
            sink,
            mode,
            block_size: block_size.clamp(1, BGZF_MAX_PLAIN),
            buffer: Vec::new(),
        }
    }

    /// Emits the buffered plain bytes as one member, if any.
    fn emit_buffer(&mut self) -> io::Result<()> {
        if !self.buffer.is_empty() {
            let member = bgzf_member(&self.buffer, self.mode);
            self.buffer.clear();
            self.sink.write_all(&member)?;
        }
        Ok(())
    }

    /// Flushes the tail member, writes the EOF marker, flushes the sink,
    /// and returns it.
    pub fn finish(mut self) -> io::Result<W> {
        self.emit_buffer()?;
        self.sink.write_all(&BGZF_EOF)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

impl<W: Write> Write for BgzfWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // Fill the current member to exactly `block_size` before emitting,
        // so the stream's member boundaries depend only on the byte
        // offsets, never on how the caller chunked its writes.
        let mut rest = buf;
        while !rest.is_empty() {
            let room = self.block_size - self.buffer.len();
            let take = room.min(rest.len());
            self.buffer.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buffer.len() == self.block_size {
                self.emit_buffer()?;
            }
        }
        Ok(buf.len())
    }

    /// Flushes the *sink* only: buffered plain bytes stay put so member
    /// boundaries remain deterministic (use [`finish`](Self::finish) to
    /// terminate the stream).
    fn flush(&mut self) -> io::Result<()> {
        self.sink.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], block_size: usize, mode: BgzfMode) -> Vec<u8> {
        let compressed = bgzf_compress(data, block_size, mode);
        let mut out = Vec::new();
        let mut saw_last = false;
        for block in BgzfBlocks::new(&compressed[..]) {
            let block = block.expect("well-formed stream");
            saw_last = block.is_last();
            out.extend(block.inflate().expect("verified payload"));
        }
        assert!(saw_last, "EOF marker must be yielded as the last block");
        out
    }

    #[test]
    fn crc32_matches_the_check_value() {
        // The classic CRC32 check vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn stored_and_fixed_members_roundtrip_across_block_sizes() {
        let data: Vec<u8> = (0..2000u32)
            .flat_map(|i| format!("@r{i}\nACGTACGTTG\n+\nIIIIIIIIII\n").into_bytes())
            .collect();
        for mode in [BgzfMode::Stored, BgzfMode::Fixed] {
            for block_size in [1usize, 7, 100, 4096, BGZF_MAX_PLAIN] {
                assert_eq!(
                    roundtrip(&data, block_size, mode),
                    data,
                    "{mode:?}/{block_size}"
                );
            }
        }
    }

    #[test]
    fn empty_input_compresses_to_just_the_marker() {
        let compressed = bgzf_compress(b"", 100, BgzfMode::Fixed);
        assert_eq!(compressed, BGZF_EOF);
        let blocks: Vec<_> = BgzfBlocks::new(&compressed[..]).collect();
        assert_eq!(blocks.len(), 1);
        let marker = blocks[0].as_ref().expect("marker parses");
        assert!(marker.is_last());
        assert_eq!(marker.inflate().expect("empty payload"), b"");
    }

    #[test]
    fn incompressible_fixed_members_fall_back_to_stored() {
        // A de Bruijn-ish byte soup defeats the matcher; the member must
        // still respect the u16 BSIZE ceiling (via the stored fallback).
        let data: Vec<u8> = (0..BGZF_MAX_PLAIN as u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let member = bgzf_member(&data, BgzfMode::Fixed);
        assert!(member.len() <= u16::MAX as usize);
        let blocks: Vec<_> = BgzfBlocks::new(&member[..])
            .take(1)
            .map(|b| b.expect("parses"))
            .collect();
        assert_eq!(blocks[0].inflate().expect("verifies"), data);
    }

    #[test]
    fn dynamic_huffman_blocks_inflate() {
        // Hand-assemble a dynamic block for "abaabbba". Literal alphabet:
        // 'a'(97) length 1, 'b'(98) length 2, EOB(256) length 2 — a
        // complete code (1×2⁻¹ + 2×2⁻² = 1). Code-length alphabet:
        // symbols {0, 1, 2, 18} all length 2 (canonical 00, 01, 10, 11).
        let mut bits = BitWriter::new();
        bits.put(1, 1);
        bits.put(2, 2);
        bits.put(0, 5); // HLIT=257
        bits.put(0, 5); // HDIST=1
        bits.put(15, 4); // HCLEN=19
                         // clen lengths: symbol 18 → 2 bits, 0 → 2, 1 → 2, 2 → 2.
                         // Canonical: 0=00, 1=01, 2=10, 18=11.
        let mut clen = [0u32; 19];
        clen[18] = 2;
        clen[0] = 2;
        clen[1] = 2;
        clen[2] = 2;
        for &pos in CLEN_ORDER.iter() {
            bits.put(clen[pos], 3);
        }
        let code_of = |sym: usize| -> (u32, u32) {
            match sym {
                0 => (0b00, 2),
                1 => (0b01, 2),
                2 => (0b10, 2),
                18 => (0b11, 2),
                _ => unreachable!(),
            }
        };
        let put_len = |bits: &mut BitWriter, sym: usize| {
            let (c, l) = code_of(sym);
            bits.put_code(c, l);
        };
        // Literal lengths (257 total): 97 zeros, 'a'→1, 'b'→2, then
        // 138 + 19 zeros, EOB→2. Code 18 repeats zero 11..=138 times
        // (7 extra bits).
        put_len(&mut bits, 18);
        bits.put(97 - 11, 7); // 97 zeros
        put_len(&mut bits, 1); // 'a' → length 1
        put_len(&mut bits, 2); // 'b' → length 2
        put_len(&mut bits, 18);
        bits.put(127, 7); // 138 zeros (99..=236)
        put_len(&mut bits, 18);
        bits.put(19 - 11, 7); // 19 zeros (237..=255)
        put_len(&mut bits, 2); // EOB → length 2
                               // Distance alphabet (HDIST=1): one symbol, length 1 (incomplete
                               // code — legal, never used).
        put_len(&mut bits, 1);
        // Body: canonical lit codes 'a'=0, 'b'=10, EOB=11.
        for byte in b"abaabbba" {
            match byte {
                b'a' => bits.put_code(0, 1),
                _ => bits.put_code(0b10, 2),
            }
        }
        bits.put_code(0b11, 2); // EOB
        let payload = bits.finish();
        assert_eq!(
            inflate(&payload, 8).expect("valid dynamic block"),
            b"abaabbba"
        );
    }

    #[test]
    fn lz_backreferences_compress_repetitive_payloads() {
        let data = b"ACGTACGTACGTACGTACGTACGTACGTACGT".repeat(64);
        let fixed = bgzf_member(&data, BgzfMode::Fixed);
        let stored = bgzf_member(&data, BgzfMode::Stored);
        assert!(
            fixed.len() < stored.len() / 4,
            "matcher must actually compress: fixed {} vs stored {}",
            fixed.len(),
            stored.len()
        );
    }

    // -- the corruption-class fixture factory -------------------------

    /// A two-block fixture (plus marker) every corruption test mutates.
    fn fixture() -> Vec<u8> {
        bgzf_compress(
            b"@r1\nACGT\n+\nIIII\n@r2\nTTAA\n+\nJJJJ\n",
            20,
            BgzfMode::Stored,
        )
    }

    /// First error from slicing + inflating every block of `bytes`.
    fn first_error(bytes: &[u8]) -> Option<BgzfError> {
        for block in BgzfBlocks::new(bytes) {
            match block {
                Ok(block) => {
                    if let Err(err) = block.inflate() {
                        return Some(err);
                    }
                }
                Err(err) => return Some(err),
            }
        }
        None
    }

    #[test]
    fn intact_fixture_has_no_error() {
        assert_eq!(first_error(&fixture()), None);
    }

    #[test]
    fn garbage_magic_is_bad_magic() {
        let mut bytes = fixture();
        bytes[0] = 0x2a;
        assert!(matches!(
            first_error(&bytes),
            Some(BgzfError::BadMagic { offset: 0 })
        ));
    }

    #[test]
    fn plain_gzip_header_is_bad_extra() {
        let mut bytes = fixture();
        bytes[3] = 0; // clear FEXTRA: valid gzip, not BGZF
        assert!(matches!(
            first_error(&bytes),
            Some(BgzfError::BadExtra { offset: 0, .. })
        ));
    }

    #[test]
    fn bitflipped_payload_is_crc_mismatch() {
        let mut bytes = fixture();
        // Flip a bit inside the first member's stored-block body: the
        // DEFLATE structure stays valid, so the corruption is caught by
        // CRC32 — exactly what the check exists for.
        let body_start = GZIP_HEADER + 6 + 5; // header + extra + stored hdr
        bytes[body_start] ^= 0x10;
        assert!(matches!(
            first_error(&bytes),
            Some(BgzfError::CrcMismatch {
                block: 0,
                check: "CRC32",
                ..
            })
        ));
    }

    #[test]
    fn lied_isize_is_caught() {
        let mut bytes = fixture();
        // The first member's ISIZE is its last 4 bytes; BSIZE is at a
        // fixed offset in the extra field.
        let total = u16::from_le_bytes([bytes[16], bytes[17]]) as usize + 1;
        bytes[total - 4] ^= 0x01;
        assert!(matches!(
            first_error(&bytes),
            Some(BgzfError::CrcMismatch {
                block: 0,
                check: "ISIZE",
                ..
            })
        ));
    }

    #[test]
    fn lied_bsize_is_bad_deflate_or_magic() {
        let mut bytes = fixture();
        // Shrink BSIZE by 4: the payload is cut short, so the stored
        // block overruns what the member now claims to contain.
        let total = u16::from_le_bytes([bytes[16], bytes[17]]) as usize + 1;
        bytes[16..18].copy_from_slice(&((total - 4 - 1) as u16).to_le_bytes());
        assert!(matches!(
            first_error(&bytes),
            Some(BgzfError::BadDeflate { block: 0, .. })
        ));
    }

    #[test]
    fn missing_eof_marker_is_reported() {
        let mut bytes = fixture();
        bytes.truncate(bytes.len() - BGZF_EOF.len());
        assert_eq!(first_error(&bytes), Some(BgzfError::MissingEof));
    }

    #[test]
    fn truncation_mid_block_is_reported() {
        let bytes = fixture();
        // Cut inside the second member's payload.
        let first = u16::from_le_bytes([bytes[16], bytes[17]]) as usize + 1;
        let cut = first + 20;
        assert!(matches!(
            first_error(&bytes[..cut]),
            Some(BgzfError::Truncated { .. })
        ));
    }

    #[test]
    fn truncation_at_every_byte_yields_a_named_error_without_panicking() {
        let bytes = bgzf_compress(b"@r1\nACGTACGT\n+\nIIIIIIII\n", 6, BgzfMode::Fixed);
        for cut in 0..bytes.len() - 1 {
            let err = first_error(&bytes[..cut]);
            assert!(
                matches!(
                    err,
                    Some(
                        BgzfError::Truncated { .. }
                            | BgzfError::MissingEof
                            | BgzfError::BadMagic { .. }
                    )
                ),
                "cut at {cut}: unexpected outcome {err:?}"
            );
        }
    }

    #[test]
    fn eof_marker_constant_is_itself_a_valid_empty_member() {
        let blocks: Vec<_> = BgzfBlocks::new(&BGZF_EOF[..]).collect();
        assert_eq!(blocks.len(), 1);
        let block = blocks[0].as_ref().expect("marker is well-formed");
        assert!(block.is_last());
        assert_eq!(block.inflate().expect("inflates"), Vec::<u8>::new());
    }

    #[test]
    fn writer_stream_matches_one_shot_compression_regardless_of_chunking() {
        let plain: Vec<u8> = (0u16..4000).map(|i| (i % 251) as u8).collect();
        let expected = bgzf_compress(&plain, 512, BgzfMode::Fixed);
        // Write in awkward chunk sizes: member boundaries must depend only
        // on byte offsets, so the stream is byte-identical.
        for step in [1usize, 7, 511, 512, 513, 4000] {
            let mut writer = BgzfWriter::with_block_size(Vec::new(), BgzfMode::Fixed, 512);
            for chunk in plain.chunks(step) {
                writer.write_all(chunk).expect("vec write");
            }
            let stream = writer.finish().expect("finish");
            assert_eq!(stream, expected, "chunk step {step}");
        }
    }

    #[test]
    fn writer_finish_terminates_with_the_eof_marker_but_drop_does_not() {
        let mut writer = BgzfWriter::new(Vec::new(), BgzfMode::Stored);
        writer.write_all(b"tail bytes").expect("vec write");
        let stream = writer.finish().expect("finish");
        assert_eq!(&stream[stream.len() - BGZF_EOF.len()..], &BGZF_EOF);
        let inflated = roundtrip(b"tail bytes", BGZF_MAX_PLAIN, BgzfMode::Stored);
        assert_eq!(inflated, b"tail bytes");

        // Without `finish`, the stream is EOF-less: readers classify it as
        // truncated rather than silently complete.
        let mut writer = BgzfWriter::new(Vec::new(), BgzfMode::Stored);
        writer.write_all(b"lost tail").expect("vec write");
        drop(writer);
    }

    #[test]
    fn errors_display_their_corruption_class() {
        let shown = format!(
            "{}",
            BgzfError::CrcMismatch {
                block: 3,
                check: "CRC32",
                stored: 1,
                computed: 2
            }
        );
        assert!(
            shown.contains("block 3") && shown.contains("CRC32"),
            "{shown}"
        );
        assert!(format!("{}", BgzfError::MissingEof).contains("EOF marker"));
    }
}
