//! Property tests for the stage-based map engine: on random simulated
//! datasets, the SAM and GAF documents the engine produces are
//! byte-identical for every thread count **and** every shard count (the
//! sharded path routes seeding through per-coordinate-range index shards
//! and merges before prefilter/alignment). This is the in-process half of
//! the determinism guarantee (`ci.sh` checks the same property end to end
//! through the built binary).

use segram_core::{
    gaf_record_for, sam_record_for, BatchBounds, EngineConfig, EngineReport, MapEngine, ReadMapper,
    SegramConfig, SegramMapper, ShardedIndex,
};
use segram_filter::FilterSpec;
use segram_graph::DnaSeq;
use segram_io::{GafWriter, SamWriter};
use segram_sim::DatasetConfig;
use segram_testkit::prelude::*;

/// Runs one engine pass and renders both output documents, exactly as the
/// CLI's streaming path does (shared renderers, shared writers). Generic
/// over the mapper so the monolithic and sharded paths share the harness.
fn render_documents<M: ReadMapper>(
    mapper: &M,
    reads: &[(String, DnaSeq)],
    threads: usize,
    both_strands: bool,
) -> (Vec<u8>, Vec<u8>) {
    let mut config = EngineConfig::with_threads(threads).both_strands(both_strands);
    // Tiny batches force batch interleaving across workers even on the
    // small datasets the strategy generates.
    config.batch_size = 2;
    let (sam, gaf, _) = render_with_config(mapper, reads, config);
    (sam, gaf)
}

/// [`render_documents`] with a caller-supplied engine config, also
/// returning the run report (the adaptive-batching property inspects
/// the trajectory it carries).
fn render_with_config<M: ReadMapper>(
    mapper: &M,
    reads: &[(String, DnaSeq)],
    config: EngineConfig,
) -> (Vec<u8>, Vec<u8>, EngineReport) {
    let engine = MapEngine::new(mapper, config);
    let mut sam = SamWriter::new(Vec::new(), "graph", mapper.graph().total_chars())
        .expect("vec write cannot fail");
    let mut gaf = GafWriter::new(Vec::new());
    let report = engine.map_stream(
        reads.iter(),
        |(_, seq)| seq,
        |(id, seq), outcome| {
            let record = sam_record_for(id, seq, &outcome);
            sam.write_line(&record.to_sam_line())
                .expect("vec write cannot fail");
            if let Some(record) =
                gaf_record_for(id, seq, mapper.graph(), &outcome).expect("consistent graph path")
            {
                gaf.write_record(&record).expect("vec write cannot fail");
            }
        },
    );
    (
        sam.finish().expect("vec flush cannot fail"),
        gaf.finish().expect("vec flush cannot fail"),
        report,
    )
}

proptest! {
    #[test]
    fn sam_and_gaf_bytes_are_thread_and_shard_invariant(
        seed in 0u64..5_000,
        read_count in 3usize..8,
        read_len in prop::sample::select(vec![80usize, 100, 130]),
        shards in prop::sample::select(vec![2usize, 3, 4]),
        with_filter in any::<bool>(),
        both_strands in any::<bool>(),
    ) {
        let mut dataset_config = DatasetConfig::tiny(seed);
        dataset_config.read_count = read_count;
        let dataset = dataset_config.illumina(read_len);
        let mut config = SegramConfig::short_reads();
        if with_filter {
            config.prefilter = Some(FilterSpec::cascade());
        }
        let mapper = SegramMapper::new(dataset.graph().clone(), config);
        let reads: Vec<(String, DnaSeq)> = dataset
            .reads
            .iter()
            .map(|r| (format!("read{}", r.id), r.seq.clone()))
            .collect();

        let (sam_serial, gaf_serial) = render_documents(&mapper, &reads, 1, both_strands);
        // The serial document contains one SAM record per read.
        let records = sam_serial.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count();
        prop_assert_eq!(records, reads.len() + 3); // 3 header lines

        for threads in [2usize, 4] {
            let (sam, gaf) = render_documents(&mapper, &reads, threads, both_strands);
            prop_assert_eq!(&sam, &sam_serial);
            prop_assert_eq!(&gaf, &gaf_serial);
        }

        // The sharded engine (router seeding over per-range index shards)
        // must emit the same bytes as the monolithic serial baseline, at
        // any thread count.
        let sharded = ShardedIndex::build(dataset.graph().clone(), config, shards);
        for threads in [1usize, 4] {
            let (sam, gaf) = render_documents(&sharded, &reads, threads, both_strands);
            prop_assert_eq!(&sam, &sam_serial);
            prop_assert_eq!(&gaf, &gaf_serial);
        }
    }

    /// Adaptive batch sizing is an internal throughput knob: whatever
    /// bounds the producer explores and wherever the controller settles,
    /// the output bytes match a fixed-batch run, and the reported
    /// trajectory never leaves `[min, max]`.
    #[test]
    fn adaptive_batching_is_output_invariant_and_stays_in_bounds(
        seed in 0u64..5_000,
        read_count in 4usize..10,
        min in prop::sample::select(vec![1usize, 2, 4]),
        span in 0usize..8,
        threads in prop::sample::select(vec![1usize, 2, 4]),
        both_strands in any::<bool>(),
    ) {
        let max = min + span;
        let mut dataset_config = DatasetConfig::tiny(seed);
        dataset_config.read_count = read_count;
        let dataset = dataset_config.illumina(100);
        let mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
        let reads: Vec<(String, DnaSeq)> = dataset
            .reads
            .iter()
            .map(|r| (format!("read{}", r.id), r.seq.clone()))
            .collect();

        let (sam_fixed, gaf_fixed) = render_documents(&mapper, &reads, 1, both_strands);

        let mut config = EngineConfig::with_threads(threads).both_strands(both_strands);
        config.adaptive_batch = Some(BatchBounds { min, max });
        let (sam, gaf, report) = render_with_config(&mapper, &reads, config);
        prop_assert_eq!(&sam, &sam_fixed, "adaptive batching changed the SAM bytes");
        prop_assert_eq!(&gaf, &gaf_fixed, "adaptive batching changed the GAF bytes");

        let batching = report.batching;
        prop_assert!(batching.adaptive);
        for (what, size) in [
            ("initial", batching.initial),
            ("last", batching.last),
            ("min_used", batching.min_used),
            ("max_used", batching.max_used),
        ] {
            prop_assert!(
                (min..=max).contains(&size),
                "{what} batch {size} escaped [{min}, {max}]"
            );
        }
        prop_assert!(batching.min_used <= batching.max_used);
    }
}
