//! End-to-end tests for the compressed production-shaped IO path:
//! `segram bgzip` fixtures, BGZF auto-detection in `segram map` with
//! byte-parity against plain input, the corruption-class error matrix
//! (named [`segram_io::BgzfError`] per class, no panic, no orphaned
//! partial output), split SAM+GAF emission, and adaptive batching.

use std::fs;
use std::path::PathBuf;

use segram_cli::{dispatch, CliError};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("segram-bgzf-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run(args: &[&str]) -> Result<String, CliError> {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    dispatch(&owned)
}

/// Simulates a bundle and returns its path prefix.
fn simulate(dir: &TempDir, reads: &str, seed: &str) -> String {
    let prefix = dir.path("bundle");
    run(&[
        "simulate",
        "--out-prefix",
        &prefix,
        "--length",
        "25000",
        "--reads",
        reads,
        "--read-len",
        "110",
        "--seed",
        seed,
    ])
    .expect("simulate");
    prefix
}

#[test]
fn bgzip_compressed_map_is_byte_identical_to_plain() {
    let dir = TempDir::new("parity");
    let prefix = simulate(&dir, "14", "41");

    // Compress the simulated FASTQ with both in-tree DEFLATE modes; tiny
    // blocks force records to straddle member boundaries.
    for (mode, block) in [("fixed", "512"), ("stored", "97")] {
        let gz = dir.path(&format!("reads-{mode}.fq.gz"));
        let report = run(&[
            "bgzip",
            "--input",
            &format!("{prefix}.fq"),
            "--output",
            &gz,
            "--block-bytes",
            block,
            "--mode",
            mode,
        ])
        .expect("bgzip");
        assert!(report.contains("BGZF blocks + EOF marker"), "{report}");

        for format in ["sam", "gaf"] {
            for threads in ["1", "4"] {
                let plain_out = dir.path(&format!("plain-{mode}-{format}-{threads}"));
                let gz_out = dir.path(&format!("gz-{mode}-{format}-{threads}"));
                let map = |reads: &str, out: &str| {
                    run(&[
                        "map",
                        "--graph",
                        &format!("{prefix}.gfa"),
                        "--reads",
                        reads,
                        "--format",
                        format,
                        "--threads",
                        threads,
                        "--output",
                        out,
                        "--both-strands",
                    ])
                    .expect("map")
                };
                map(&format!("{prefix}.fq"), &plain_out);
                let report = map(&gz, &gz_out);
                // The compressed run reports the worker-stage inflate time.
                assert!(report.contains("inflate:"), "{report}");
                assert_eq!(
                    fs::read(&plain_out).unwrap(),
                    fs::read(&gz_out).unwrap(),
                    "BGZF {format} output differs from plain ({mode}, {threads} threads)"
                );
            }
        }
    }
}

/// Parses the first member's BSIZE to find where the second one starts.
fn second_member_offset(bytes: &[u8]) -> usize {
    u16::from_le_bytes([bytes[16], bytes[17]]) as usize + 1
}

#[test]
fn every_corruption_class_yields_its_named_error_and_removes_output() {
    let dir = TempDir::new("corruption");
    let prefix = simulate(&dir, "12", "43");

    // A stored-mode fixture with many small members: the deflate header
    // and payload byte offsets below are those of `deflate_stored`.
    let gz = dir.path("reads.fq.gz");
    run(&[
        "bgzip",
        "--input",
        &format!("{prefix}.fq"),
        "--output",
        &gz,
        "--block-bytes",
        "256",
        "--mode",
        "stored",
    ])
    .expect("bgzip");
    let pristine = fs::read(&gz).unwrap();
    let off = second_member_offset(&pristine);
    assert!(
        off + 32 < pristine.len() - 28,
        "fixture must have at least two data members"
    );

    // One mutation per corruption class, all hitting the *second* member
    // so the failure lands mid-stream and must cancel a running engine.
    type Mutate = fn(&mut Vec<u8>, usize);
    let classes: [(&str, &str, Mutate); 6] = [
        ("bad-magic", "bad magic", |b, off| b[off] = 0x2a),
        ("bad-extra", "not a BGZF member", |b, off| b[off + 3] = 0x00),
        // Member header is 18 bytes (12 + XLEN 6); the stored DEFLATE
        // block is 1 header byte + LEN/NLEN(4) + payload.
        ("crc-mismatch", "CRC32 mismatch", |b, off| {
            b[off + 18 + 5] ^= 0x20
        }),
        // BFINAL=1 with the reserved BTYPE=11.
        ("bad-deflate", "invalid DEFLATE payload", |b, off| {
            b[off + 18] = 0x07
        }),
        ("truncated", "truncated inside a BGZF block", |b, off| {
            b.truncate(off + 10)
        }),
        ("missing-eof", "without the BGZF EOF marker", |b, _| {
            let keep = b.len() - 28;
            b.truncate(keep)
        }),
    ];

    for (name, expected, mutate) in classes {
        let mut corrupt = pristine.clone();
        mutate(&mut corrupt, off);
        let bad_gz = dir.path(&format!("{name}.fq.gz"));
        fs::write(&bad_gz, &corrupt).unwrap();

        for threads in ["1", "4"] {
            let out = dir.path(&format!("{name}-{threads}.sam"));
            let err = run(&[
                "map",
                "--graph",
                &format!("{prefix}.gfa"),
                "--reads",
                &bad_gz,
                "--threads",
                threads,
                "--output",
                &out,
            ])
            .unwrap_err();
            assert_eq!(err.exit_code(), 1, "{name}: corruption is exit 1");
            let shown = err.to_string();
            assert!(
                shown.contains(expected),
                "{name} ({threads} threads): expected {expected:?} in {shown:?}"
            );
            assert!(
                shown.contains(&format!("{name}.fq.gz")),
                "{name}: error names the file: {shown}"
            );
            assert!(
                fs::metadata(&out).is_err(),
                "{name} ({threads} threads): partial output must be removed"
            );
        }
    }
}

#[test]
fn split_emission_matches_two_single_format_runs() {
    let dir = TempDir::new("split");
    let prefix = simulate(&dir, "12", "47");

    // Reference outputs: two single-format passes.
    for format in ["sam", "gaf"] {
        run(&[
            "map",
            "--graph",
            &format!("{prefix}.gfa"),
            "--reads",
            &format!("{prefix}.fq"),
            "--format",
            format,
            "--output",
            &dir.path(&format!("single.{format}")),
            "--both-strands",
        ])
        .expect("single-format map");
    }

    for threads in ["1", "4"] {
        let sam = dir.path(&format!("split-{threads}.sam"));
        let gaf = dir.path(&format!("split-{threads}.gaf"));
        let report = run(&[
            "map",
            "--graph",
            &format!("{prefix}.gfa"),
            "--reads",
            &format!("{prefix}.fq"),
            "--threads",
            threads,
            "--output-sam",
            &sam,
            "--output-gaf",
            &gaf,
            "--both-strands",
        ])
        .expect("split map");
        // Each document's writer channel reports its own counters.
        assert!(report.contains("writer sam: max depth"), "{report}");
        assert!(report.contains("writer gaf: max depth"), "{report}");
        assert!(report.contains(&format!("wrote SAM to {sam}")), "{report}");
        assert!(report.contains(&format!("wrote GAF to {gaf}")), "{report}");
        assert_eq!(
            fs::read(dir.path("single.sam")).unwrap(),
            fs::read(&sam).unwrap(),
            "split SAM differs from the single-format run ({threads} threads)"
        );
        assert_eq!(
            fs::read(dir.path("single.gaf")).unwrap(),
            fs::read(&gaf).unwrap(),
            "split GAF differs from the single-format run ({threads} threads)"
        );
    }

    // One split option alone is a single-format run under another name.
    let solo = dir.path("solo.gaf");
    run(&[
        "map",
        "--graph",
        &format!("{prefix}.gfa"),
        "--reads",
        &format!("{prefix}.fq"),
        "--output-gaf",
        &solo,
        "--both-strands",
    ])
    .expect("solo --output-gaf map");
    assert_eq!(
        fs::read(dir.path("single.gaf")).unwrap(),
        fs::read(&solo).unwrap(),
        "--output-gaf alone must equal a --format gaf run"
    );
}

#[test]
fn adaptive_batching_is_reported_and_output_invariant() {
    let dir = TempDir::new("adaptive");
    let prefix = simulate(&dir, "14", "53");

    let map = |batch: &str, out: &str| {
        run(&[
            "map",
            "--graph",
            &format!("{prefix}.gfa"),
            "--reads",
            &format!("{prefix}.fq"),
            "--threads",
            "4",
            "--batch-size",
            batch,
            "--output",
            &dir.path(out),
            "--both-strands",
        ])
        .expect("map")
    };
    let fixed_report = map("8", "fixed.sam");
    assert!(
        !fixed_report.contains("batching: adaptive"),
        "{fixed_report}"
    );
    let auto_report = map("auto", "auto.sam");
    assert!(auto_report.contains("batching: adaptive"), "{auto_report}");
    let bounded_report = map("auto:2:16", "bounded.sam");
    assert!(
        bounded_report.contains("batching: adaptive"),
        "{bounded_report}"
    );
    let fixed = fs::read(dir.path("fixed.sam")).unwrap();
    assert_eq!(
        fixed,
        fs::read(dir.path("auto.sam")).unwrap(),
        "--batch-size auto changed the output bytes"
    );
    assert_eq!(
        fixed,
        fs::read(dir.path("bounded.sam")).unwrap(),
        "--batch-size auto:2:16 changed the output bytes"
    );
}

#[test]
fn compressed_io_option_conflicts_are_usage_errors() {
    // All of these must fail before any input file is opened (the paths
    // do not exist), so exit code 2 proves validation order.
    let base = ["map", "--graph", "x.gfa", "--reads", "y.fq"];
    let usage = |extra: &[&str]| {
        let mut args: Vec<&str> = base.to_vec();
        args.extend_from_slice(extra);
        let err = run(&args).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{extra:?} must be a usage error");
        err.to_string()
    };

    // Split emission vs. the single-document options.
    let shown = usage(&["--output-sam", "a.sam", "--format", "gaf"]);
    assert!(shown.contains("--output-sam/--output-gaf"), "{shown}");
    let shown = usage(&["--output-gaf", "a.gaf", "--output", "b.gaf"]);
    assert!(shown.contains("mutually exclusive"), "{shown}");

    // Batch-size grammar.
    for bad in ["0", "auto:0:4", "auto:9:2", "auto:x:y", "several"] {
        let shown = usage(&["--batch-size", bad]);
        assert!(shown.contains("--batch-size"), "{bad}: {shown}");
    }
    // Adaptive batching needs the single-queue fanout schedule.
    let shown = usage(&[
        "--batch-size",
        "auto",
        "--schedule",
        "elastic",
        "--shards",
        "2",
    ]);
    assert!(shown.contains("--batch-size auto"), "{shown}");

    // BGZF input cannot feed the elastic schedule's multi-pool routing:
    // this one needs a real compressed file (the check runs post-sniff).
    let dir = TempDir::new("conflicts");
    let prefix = simulate(&dir, "4", "59");
    let gz = dir.path("r.fq.gz");
    run(&["bgzip", "--input", &format!("{prefix}.fq"), "--output", &gz]).expect("bgzip");
    let err = run(&[
        "map",
        "--graph",
        &format!("{prefix}.gfa"),
        "--reads",
        &gz,
        "--schedule",
        "elastic",
        "--shards",
        "2",
    ])
    .unwrap_err();
    assert_eq!(err.exit_code(), 2);
    assert!(
        err.to_string()
            .contains("cannot read BGZF-compressed input"),
        "{err}"
    );
}

#[test]
fn bgzip_validates_options_and_roundtrips() {
    let dir = TempDir::new("bgzip");
    let input = dir.path("plain.txt");
    fs::write(&input, b"@r\nACGT\n+\nIIII\n".repeat(100)).unwrap();

    assert!(run(&["bgzip", "--help"]).unwrap().contains("OPTIONS"));
    let err = run(&[
        "bgzip", "--input", &input, "--output", "o.gz", "--mode", "zstd",
    ])
    .unwrap_err();
    assert_eq!(err.exit_code(), 2);
    assert!(err.to_string().contains("fixed|stored"), "{err}");
    let err = run(&[
        "bgzip",
        "--input",
        &input,
        "--output",
        "o.gz",
        "--block-bytes",
        "0",
    ])
    .unwrap_err();
    assert_eq!(err.exit_code(), 2);
    let err = run(&["bgzip", "--input", &dir.path("absent"), "--output", "o.gz"]).unwrap_err();
    assert_eq!(err.exit_code(), 1, "missing input is an I/O error");

    // The compressed stream decodes back to the input via the library.
    let gz = dir.path("plain.txt.gz");
    run(&[
        "bgzip",
        "--input",
        &input,
        "--output",
        &gz,
        "--block-bytes",
        "64",
    ])
    .expect("bgzip");
    let compressed = fs::read(&gz).unwrap();
    let mut plain = Vec::new();
    for block in segram_io::BgzfBlocks::new(&compressed[..]) {
        plain.extend(block.expect("well-formed").inflate().expect("verifies"));
    }
    assert_eq!(plain, fs::read(&input).unwrap());
}
