//! Sequence-to-sequence mapping: SeGraM as a universal mapper (Section 9).
//!
//! A linear reference is "a graph where each node has an outgoing edge to
//! exactly one other node", so the same MinSeed + BitAlign pipeline maps
//! classical resequencing reads with no special-casing — and BitAlign
//! doubles as a plain pairwise aligner (GenASM mode).
//!
//! Run with: `cargo run --release --example s2s_mapping`

use segram_align::{genasm_align, myers_distance};
use segram_core::{SegramConfig, SegramMapper};
use segram_sim::{generate_reference, simulate_reads, ErrorProfile, GenomeConfig, ReadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A plain linear reference (no variants).
    let reference = generate_reference(&GenomeConfig::human_like(80_000, 7));
    let mapper = SegramMapper::new_linear(&reference, SegramConfig::short_reads())?;
    println!(
        "linear reference graph: {} nodes, every node has <= 1 successor",
        mapper.graph().node_count()
    );

    // Illumina-like resequencing reads.
    let reads = simulate_reads(
        mapper.graph(),
        &ReadConfig {
            count: 30,
            len: 120,
            errors: ErrorProfile::illumina(),
            seed: 99,
        },
    );
    let mut exact = 0usize;
    for read in &reads {
        let (mapping, _) = mapper.map_read(&read.seq);
        if let Some(m) = mapping {
            if m.linear_start.abs_diff(read.true_start_linear) <= 5 {
                exact += 1;
            }
        }
    }
    println!("reads mapped within 5 bp of truth: {exact}/{}", reads.len());
    assert!(exact >= reads.len() * 8 / 10);

    // BitAlign as a standalone S2S aligner (GenASM configuration), checked
    // against Myers' algorithm.
    let fragment = reference.slice(1000, 1400);
    let mut query_text = reference.slice(1050, 1350).to_string();
    query_text.replace_range(
        100..101,
        if &query_text[100..101] == "A" {
            "T"
        } else {
            "A"
        },
    );
    let query: segram_graph::DnaSeq = query_text.parse()?;
    let alignment = genasm_align(fragment.as_slice(), query.as_slice())?;
    let myers = myers_distance(fragment.as_slice(), query.as_slice())?;
    println!(
        "standalone S2S alignment: GenASM-mode BitAlign {} edits (CIGAR {}), Myers {} edits",
        alignment.edit_distance, alignment.cigar, myers
    );
    assert_eq!(alignment.edit_distance, myers);
    println!("ok: BitAlign reduces to a classical pairwise aligner on linear text");
    Ok(())
}
