//! Bounds-checked little-endian binary primitives for the on-disk index
//! format (`segram index build` / the `segram serve` load path).
//!
//! The pair [`ByteWriter`] / [`ByteReader`] is deliberately minimal: fixed
//! little-endian integer encodings, length-prefixed byte runs, and a
//! [`BinError`] for every way a corrupt or truncated buffer can disappoint
//! the reader — reading never panics and never allocates proportionally to
//! an unvalidated length field. Checksums use [`fnv1a64`], chosen because
//! it is tiny, dependency-free, and plenty for corruption *detection* (the
//! format does not defend against adversarial collisions).

use std::error::Error;
use std::fmt;

/// FNV-1a 64-bit hash of `bytes` — the section checksum of the on-disk
/// index format.
///
/// # Examples
///
/// ```
/// use segram_io::fnv1a64;
/// // The FNV-1a offset basis is the hash of the empty string.
/// assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv1a64(b"segram"), fnv1a64(b"segraM"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An error while decoding a binary buffer: the input ended early or a
/// length field claimed more bytes than exist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BinError {
    /// A read ran past the end of the buffer.
    UnexpectedEnd {
        /// Byte offset the read started at.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A length field implies more elements than the remaining bytes can
    /// possibly hold (guards allocations against corrupt counts).
    ImplausibleLength {
        /// Byte offset of the length field.
        offset: usize,
        /// The claimed element count.
        claimed: u64,
    },
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEnd {
                offset,
                needed,
                available,
            } => write!(
                f,
                "unexpected end of input at byte {offset}: needed {needed} bytes, \
                 {available} available"
            ),
            Self::ImplausibleLength { offset, claimed } => write!(
                f,
                "implausible length {claimed} at byte {offset}: larger than the \
                 remaining input"
            ),
        }
    }
}

impl Error for BinError {}

/// An append-only little-endian encoder over a growable byte buffer.
///
/// # Examples
///
/// ```
/// use segram_io::{ByteReader, ByteWriter};
///
/// let mut w = ByteWriter::new();
/// w.put_u32(7);
/// w.put_bytes(b"acgt");
/// let bytes = w.into_bytes();
///
/// let mut r = ByteReader::new(&bytes);
/// assert_eq!(r.take_u32()?, 7);
/// assert_eq!(r.take_bytes(4)?, b"acgt");
/// assert!(r.is_empty());
/// # Ok::<(), segram_io::BinError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked little-endian decoder over a byte slice. Every `take_*`
/// returns [`BinError`] instead of panicking when the buffer is shorter
/// than the format promised.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current read offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `len` bytes verbatim.
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEnd`] when fewer than `len` bytes remain.
    pub fn take_bytes(&mut self, len: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < len {
            return Err(BinError::UnexpectedEnd {
                offset: self.pos,
                needed: len,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Takes one byte.
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEnd`] at end of input.
    pub fn take_u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEnd`] when fewer than 4 bytes remain.
    pub fn take_u32(&mut self) -> Result<u32, BinError> {
        let bytes = self.take_bytes(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEnd`] when fewer than 8 bytes remain.
    pub fn take_u64(&mut self) -> Result<u64, BinError> {
        let bytes = self.take_bytes(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Takes a `u64` element count and validates that `count × elem_bytes`
    /// elements could still fit in the remaining input — the guard that
    /// keeps a corrupt count from driving a proportional allocation.
    ///
    /// # Errors
    ///
    /// [`BinError::UnexpectedEnd`] at end of input,
    /// [`BinError::ImplausibleLength`] when the count cannot fit.
    pub fn take_count(&mut self, elem_bytes: usize) -> Result<usize, BinError> {
        let offset = self.pos;
        let claimed = self.take_u64()?;
        let fits = u64::try_from(elem_bytes)
            .ok()
            .and_then(|eb| claimed.checked_mul(eb))
            .is_some_and(|total| total <= self.remaining() as u64);
        if !fits {
            return Err(BinError::ImplausibleLength { offset, claimed });
        }
        Ok(claimed as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(0xab);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_bytes(b"xyz");
        assert_eq!(w.len(), 1 + 4 + 8 + 3);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xab);
        assert_eq!(r.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_bytes(3).unwrap(), b"xyz");
        assert!(r.is_empty());
        assert_eq!(r.position(), bytes.len());
    }

    #[test]
    fn every_truncation_prefix_errors_instead_of_panicking() {
        let mut w = ByteWriter::new();
        w.put_u32(3);
        w.put_u64(12);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let short = r.take_u32().and_then(|_| r.take_u64());
            assert!(short.is_err(), "prefix of {cut} bytes must fail");
            assert!(matches!(short.unwrap_err(), BinError::UnexpectedEnd { .. }));
        }
    }

    #[test]
    fn take_count_rejects_implausible_lengths() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims 2^64-1 elements
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.take_count(8),
            Err(BinError::ImplausibleLength {
                claimed: u64::MAX,
                ..
            })
        ));
        // A plausible count passes and leaves the payload readable.
        let mut w = ByteWriter::new();
        w.put_u64(2);
        w.put_u32(1);
        w.put_u32(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_count(4).unwrap(), 2);
        assert_eq!(r.take_u32().unwrap(), 1);
    }

    #[test]
    fn fnv_checksum_detects_single_byte_flips() {
        let payload = b"the quick brown fox".to_vec();
        let reference = fnv1a64(&payload);
        for i in 0..payload.len() {
            let mut flipped = payload.clone();
            flipped[i] ^= 0x01;
            assert_ne!(fnv1a64(&flipped), reference, "flip at byte {i}");
        }
    }
}
