//! The 2-bit DNA alphabet used throughout the SeGraM pipeline.
//!
//! SeGraM stores reference characters with a 2-bit representation
//! (`A:00, C:01, G:10, T:11`, Section 5 of the paper); every data structure
//! in this workspace shares this encoding so that memory-footprint
//! accounting matches the paper's formulas.

use std::fmt;

/// A single DNA nucleobase with the paper's 2-bit encoding.
///
/// # Examples
///
/// ```
/// use segram_graph::Base;
///
/// assert_eq!(Base::A.code(), 0);
/// assert_eq!(Base::T.code(), 3);
/// assert_eq!(Base::from_ascii(b'g'), Some(Base::G));
/// assert_eq!(Base::C.complement(), Base::G);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine (`00`).
    A = 0,
    /// Cytosine (`01`).
    C = 1,
    /// Guanine (`10`).
    G = 2,
    /// Thymine (`11`).
    T = 3,
}

/// All four bases in encoding order, convenient for iteration.
pub const BASES: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

/// Number of symbols in the DNA alphabet.
pub const ALPHABET_SIZE: usize = 4;

impl Base {
    /// Returns the 2-bit code of this base (`A:0, C:1, G:2, T:3`).
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a 2-bit code into a base.
    ///
    /// Returns `None` when `code >= 4`.
    ///
    /// # Examples
    ///
    /// ```
    /// use segram_graph::Base;
    /// assert_eq!(Base::from_code(2), Some(Base::G));
    /// assert_eq!(Base::from_code(7), None);
    /// ```
    #[inline]
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Base::A),
            1 => Some(Base::C),
            2 => Some(Base::G),
            3 => Some(Base::T),
            _ => None,
        }
    }

    /// Decodes a 2-bit code, taking only the low two bits into account.
    ///
    /// Useful when the caller has already masked the value (e.g. when
    /// unpacking a [`PackedSeq`](crate::PackedSeq)).
    #[inline]
    pub const fn from_code_masked(code: u8) -> Self {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// Parses an ASCII nucleotide character (case-insensitive).
    ///
    /// Returns `None` for any character outside `ACGTacgt` (including the
    /// ambiguity code `N`, which the 2-bit alphabet cannot represent).
    #[inline]
    pub const fn from_ascii(ch: u8) -> Option<Self> {
        match ch {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Returns the upper-case ASCII representation of this base.
    #[inline]
    pub const fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Returns the Watson–Crick complement (`A↔T`, `C↔G`).
    #[inline]
    pub const fn complement(self) -> Self {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
        }
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

impl From<Base> for u8 {
    fn from(base: Base) -> u8 {
        base.code()
    }
}

impl From<Base> for char {
    fn from(base: Base) -> char {
        base.to_ascii() as char
    }
}

impl TryFrom<u8> for Base {
    type Error = crate::GraphError;

    fn try_from(code: u8) -> Result<Self, Self::Error> {
        Base::from_code(code).ok_or(crate::GraphError::InvalidBaseCode(code))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for base in BASES {
            assert_eq!(Base::from_code(base.code()), Some(base));
            assert_eq!(Base::from_code_masked(base.code()), base);
        }
        assert_eq!(Base::from_code(4), None);
        assert_eq!(Base::from_code(255), None);
    }

    #[test]
    fn ascii_round_trip_upper_and_lower() {
        for base in BASES {
            assert_eq!(Base::from_ascii(base.to_ascii()), Some(base));
            assert_eq!(
                Base::from_ascii(base.to_ascii().to_ascii_lowercase()),
                Some(base)
            );
        }
        assert_eq!(Base::from_ascii(b'N'), None);
        assert_eq!(Base::from_ascii(b'-'), None);
    }

    #[test]
    fn complement_is_involution() {
        for base in BASES {
            assert_eq!(base.complement().complement(), base);
            assert_ne!(base.complement(), base);
        }
    }

    #[test]
    fn encoding_matches_paper() {
        // Section 5: "A:00, C:01, G:10, T:11".
        assert_eq!(Base::A.code(), 0b00);
        assert_eq!(Base::C.code(), 0b01);
        assert_eq!(Base::G.code(), 0b10);
        assert_eq!(Base::T.code(), 0b11);
    }

    #[test]
    fn display_is_single_ascii_char() {
        assert_eq!(Base::A.to_string(), "A");
        assert_eq!(Base::T.to_string(), "T");
        assert_eq!(char::from(Base::G), 'G');
    }

    #[test]
    fn try_from_reports_bad_code() {
        let err = Base::try_from(9).unwrap_err();
        assert!(err.to_string().contains('9'));
    }
}
