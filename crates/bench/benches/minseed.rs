//! Criterion microbenchmarks of the seeding path: minimizer extraction
//! (the O(m) single-loop algorithm), index construction, and full MinSeed
//! seeding per read.

use segram_index::{
    extract_minimizers, frequency_threshold, GraphIndex, MinSeed, MinSeedConfig, MinimizerScheme,
};
use segram_sim::{
    generate_reference, simulate_reads, simulate_variants, ErrorProfile, GenomeConfig, ReadConfig,
    VariantConfig,
};
use segram_testkit::bench::{criterion_group, criterion_main, Criterion};

fn bench_minimizer_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimizer_extraction");
    group.sample_size(30);
    let reference = generate_reference(&GenomeConfig::human_like(50_000, 3));
    let read_10k = reference.slice(0, 10_000);
    let read_150 = reference.slice(0, 150);
    let scheme = MinimizerScheme::new(10, 15);
    group.bench_function("10kbp_read", |b| {
        b.iter(|| extract_minimizers(&read_10k, &scheme))
    });
    group.bench_function("150bp_read", |b| {
        b.iter(|| extract_minimizers(&read_150, &scheme))
    });
    group.finish();
}

fn bench_index_and_seeding(c: &mut Criterion) {
    let reference = generate_reference(&GenomeConfig::human_like(100_000, 11));
    let variants = simulate_variants(&reference, &VariantConfig::human_like(12));
    let built = segram_graph::build_graph(&reference, variants).expect("synthetic inputs");
    let scheme = MinimizerScheme::new(10, 15);

    let mut group = c.benchmark_group("index");
    group.sample_size(10);
    group.bench_function("build_100kbp", |b| {
        b.iter(|| GraphIndex::build(&built.graph, scheme, 16))
    });
    group.finish();

    let index = GraphIndex::build(&built.graph, scheme, 16);
    let minseed = MinSeed::new(
        &built.graph,
        &index,
        MinSeedConfig {
            error_rate: 0.05,
            frequency_threshold: frequency_threshold(&index, 0.0002),
        },
    );
    let reads: Vec<_> = simulate_reads(
        &built.graph,
        &ReadConfig {
            count: 8,
            len: 150,
            errors: ErrorProfile::illumina(),
            seed: 13,
        },
    )
    .into_iter()
    .map(|r| r.seq)
    .collect();

    let mut group = c.benchmark_group("seeding");
    group.sample_size(30);
    group.bench_function("minseed_150bp_read", |b| {
        b.iter(|| {
            for read in &reads {
                let _ = minseed.seed(read);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_minimizer_extraction, bench_index_and_seeding);
criterion_main!(benches);
