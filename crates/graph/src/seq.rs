//! DNA sequences: an ergonomic unpacked form ([`DnaSeq`]) and the paper's
//! 2-bit packed storage form ([`PackedSeq`], used for the character table of
//! Figure 5 and for memory-footprint accounting).

use std::fmt;
use std::str::FromStr;

use crate::{Base, GraphError};

/// An owned DNA sequence over the 2-bit alphabet.
///
/// This is the working representation used by the algorithms; the memory
/// layout the hardware sees is modelled by [`PackedSeq`].
///
/// # Examples
///
/// ```
/// use segram_graph::{Base, DnaSeq};
///
/// let seq: DnaSeq = "ACGT".parse()?;
/// assert_eq!(seq.len(), 4);
/// assert_eq!(seq.get(1), Some(Base::C));
/// assert_eq!(seq.to_string(), "ACGT");
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DnaSeq {
    bases: Vec<Base>,
}

impl DnaSeq {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sequence with room for `capacity` bases.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            bases: Vec::with_capacity(capacity),
        }
    }

    /// Parses an ASCII byte string (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCharacter`] for any byte outside
    /// `ACGTacgt`, reporting its offset.
    pub fn from_ascii(ascii: &[u8]) -> Result<Self, GraphError> {
        let mut bases = Vec::with_capacity(ascii.len());
        for (offset, &ch) in ascii.iter().enumerate() {
            let base = Base::from_ascii(ch).ok_or(GraphError::InvalidCharacter { ch, offset })?;
            bases.push(base);
        }
        Ok(Self { bases })
    }

    /// Number of bases in the sequence.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Returns `true` when the sequence holds no bases.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Returns the base at `index`, or `None` when out of bounds.
    pub fn get(&self, index: usize) -> Option<Base> {
        self.bases.get(index).copied()
    }

    /// Borrows the bases as a slice.
    pub fn as_slice(&self) -> &[Base] {
        &self.bases
    }

    /// Appends a base.
    pub fn push(&mut self, base: Base) {
        self.bases.push(base);
    }

    /// Appends every base of `other`.
    pub fn extend_from_seq(&mut self, other: &DnaSeq) {
        self.bases.extend_from_slice(&other.bases);
    }

    /// Returns the sub-sequence `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> DnaSeq {
        DnaSeq {
            bases: self.bases[start..end].to_vec(),
        }
    }

    /// Iterates over the bases.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Base>> {
        self.bases.iter().copied()
    }

    /// Returns the reverse complement of this sequence.
    ///
    /// # Examples
    ///
    /// ```
    /// use segram_graph::DnaSeq;
    /// let seq: DnaSeq = "AACG".parse()?;
    /// assert_eq!(seq.reverse_complement().to_string(), "CGTT");
    /// # Ok::<(), segram_graph::GraphError>(())
    /// ```
    pub fn reverse_complement(&self) -> DnaSeq {
        DnaSeq {
            bases: self.bases.iter().rev().map(|b| b.complement()).collect(),
        }
    }

    /// Consumes the sequence and returns the underlying base vector.
    pub fn into_bases(self) -> Vec<Base> {
        self.bases
    }
}

impl From<Vec<Base>> for DnaSeq {
    fn from(bases: Vec<Base>) -> Self {
        Self { bases }
    }
}

impl FromIterator<Base> for DnaSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        Self {
            bases: iter.into_iter().collect(),
        }
    }
}

impl Extend<Base> for DnaSeq {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        self.bases.extend(iter);
    }
}

impl IntoIterator for DnaSeq {
    type Item = Base;
    type IntoIter = std::vec::IntoIter<Base>;

    fn into_iter(self) -> Self::IntoIter {
        self.bases.into_iter()
    }
}

impl<'a> IntoIterator for &'a DnaSeq {
    type Item = Base;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Base>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl std::ops::Index<usize> for DnaSeq {
    type Output = Base;

    fn index(&self, index: usize) -> &Base {
        &self.bases[index]
    }
}

impl AsRef<[Base]> for DnaSeq {
    fn as_ref(&self) -> &[Base] {
        &self.bases
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for base in &self.bases {
            write!(f, "{base}")?;
        }
        Ok(())
    }
}

impl FromStr for DnaSeq {
    type Err = GraphError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::from_ascii(s.as_bytes())
    }
}

/// A 2-bit packed DNA sequence, the storage layout of the paper's character
/// table (Figure 5: "we can store characters in the character table using a
/// 2-bit representation").
///
/// # Examples
///
/// ```
/// use segram_graph::{DnaSeq, PackedSeq};
///
/// let seq: DnaSeq = "ACGTACGT".parse()?;
/// let packed = PackedSeq::from_seq(&seq);
/// assert_eq!(packed.len(), 8);
/// assert_eq!(packed.byte_len(), 2); // 8 bases * 2 bits = 2 bytes
/// assert_eq!(packed.unpack(), seq);
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct PackedSeq {
    words: Vec<u8>,
    len: usize,
}

impl PackedSeq {
    /// Creates an empty packed sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packs an unpacked sequence.
    pub fn from_seq(seq: &DnaSeq) -> Self {
        let mut packed = Self {
            words: vec![0u8; seq.len().div_ceil(4)],
            len: seq.len(),
        };
        for (i, base) in seq.iter().enumerate() {
            packed.set(i, base);
        }
        packed
    }

    /// Number of bases stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bases are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bytes occupied by the packed payload.
    pub fn byte_len(&self) -> usize {
        self.words.len()
    }

    /// Appends a base.
    pub fn push(&mut self, base: Base) {
        if self.len.is_multiple_of(4) {
            self.words.push(0);
        }
        self.len += 1;
        self.set(self.len - 1, base);
    }

    /// Returns the base at `index`, or `None` when out of bounds.
    pub fn get(&self, index: usize) -> Option<Base> {
        if index >= self.len {
            return None;
        }
        let byte = self.words[index / 4];
        let shift = (index % 4) * 2;
        Some(Base::from_code_masked(byte >> shift))
    }

    fn set(&mut self, index: usize, base: Base) {
        let shift = (index % 4) * 2;
        let slot = &mut self.words[index / 4];
        *slot = (*slot & !(0b11 << shift)) | (base.code() << shift);
    }

    /// Unpacks into a [`DnaSeq`].
    pub fn unpack(&self) -> DnaSeq {
        (0..self.len)
            .map(|i| self.get(i).expect("index < len"))
            .collect()
    }

    /// Iterates over the stored bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        (0..self.len).map(|i| self.get(i).expect("index < len"))
    }
}

impl From<&DnaSeq> for PackedSeq {
    fn from(seq: &DnaSeq) -> Self {
        PackedSeq::from_seq(seq)
    }
}

impl FromIterator<Base> for PackedSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        let mut packed = PackedSeq::new();
        for base in iter {
            packed.push(base);
        }
        packed
    }
}

impl fmt::Display for PackedSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for base in self.iter() {
            write!(f, "{base}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let seq: DnaSeq = "ACGTTGCA".parse().unwrap();
        assert_eq!(seq.to_string(), "ACGTTGCA");
        assert_eq!(seq.len(), 8);
    }

    #[test]
    fn parse_rejects_ambiguity_codes() {
        let err = DnaSeq::from_ascii(b"ACGNT").unwrap_err();
        match err {
            GraphError::InvalidCharacter { ch, offset } => {
                assert_eq!(ch, b'N');
                assert_eq!(offset, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn lowercase_input_accepted() {
        let seq: DnaSeq = "acgt".parse().unwrap();
        assert_eq!(seq.to_string(), "ACGT");
    }

    #[test]
    fn slicing_and_indexing() {
        let seq: DnaSeq = "ACGTAC".parse().unwrap();
        assert_eq!(seq.slice(1, 4).to_string(), "CGT");
        assert_eq!(seq[5], Base::C);
        assert_eq!(seq.get(6), None);
    }

    #[test]
    fn reverse_complement_matches_manual() {
        let seq: DnaSeq = "AACGTT".parse().unwrap();
        assert_eq!(seq.reverse_complement().to_string(), "AACGTT");
        let seq: DnaSeq = "AAAC".parse().unwrap();
        assert_eq!(seq.reverse_complement().to_string(), "GTTT");
    }

    #[test]
    fn collect_from_iterator() {
        let seq: DnaSeq = [Base::A, Base::G].into_iter().collect();
        assert_eq!(seq.to_string(), "AG");
        let mut seq = seq;
        seq.extend([Base::T]);
        assert_eq!(seq.to_string(), "AGT");
    }

    #[test]
    fn packed_round_trips_all_lengths() {
        for len in 0..20 {
            let seq: DnaSeq = (0..len).map(|i| Base::from_code_masked(i as u8)).collect();
            let packed = PackedSeq::from_seq(&seq);
            assert_eq!(packed.unpack(), seq, "len {len}");
            assert_eq!(packed.len(), len);
            assert_eq!(packed.byte_len(), len.div_ceil(4));
        }
    }

    #[test]
    fn packed_push_matches_from_seq() {
        let seq: DnaSeq = "TGCATGCATG".parse().unwrap();
        let pushed: PackedSeq = seq.iter().collect();
        assert_eq!(pushed, PackedSeq::from_seq(&seq));
        assert_eq!(pushed.to_string(), "TGCATGCATG");
    }

    #[test]
    fn packed_uses_two_bits_per_char() {
        // The paper's character-table accounting: total sequence length * 2 bits.
        let seq: DnaSeq = "A".repeat(1000).parse().unwrap();
        let packed = PackedSeq::from_seq(&seq);
        assert_eq!(packed.byte_len(), 250);
    }
}
