//! **Table 1**: area and power breakdown of SeGraM (28 nm, 1 GHz).
//!
//! Regenerates the per-component breakdown for one accelerator, the
//! 32-accelerator totals, and the grand total with HBM power, from the
//! calibrated analytical cost model (`segram-hw::cost`).

use segram_bench::{header, row, write_results};
use segram_hw::{system_cost, AcceleratorCost, HbmConfig};
use segram_testkit::Serialize;

#[derive(Serialize)]
struct ComponentRow {
    component: &'static str,
    area_mm2: f64,
    power_mw: f64,
}

#[derive(Serialize)]
struct Table1 {
    components: Vec<ComponentRow>,
    single_accelerator_area_mm2: f64,
    single_accelerator_power_mw: f64,
    all32_area_mm2: f64,
    all32_power_w: f64,
    total_power_with_hbm_w: f64,
    hop_queue_share_of_edit_logic_area: f64,
    hop_queue_share_of_edit_logic_power: f64,
    paper_single_area_mm2: f64,
    paper_single_power_mw: f64,
    paper_all32_area_mm2: f64,
    paper_total_power_w: f64,
}

fn main() {
    let cost = AcceleratorCost::paper_configuration();
    let components = vec![
        ("MinSeed logic", cost.minseed_logic),
        ("MinSeed scratchpads (6+40+4 kB)", cost.minseed_scratchpads),
        ("BitAlign PE datapaths (64 x 128b)", cost.bitalign_pe_logic),
        (
            "BitAlign hop queue registers (12 kB)",
            cost.bitalign_hop_queues,
        ),
        ("BitAlign traceback logic", cost.bitalign_traceback),
        (
            "BitAlign scratchpads (24+128 kB)",
            cost.bitalign_scratchpads,
        ),
    ];

    header("Table 1: SeGraM area & power breakdown (28 nm, 1 GHz)");
    println!(
        "  {:<38} {:>10} {:>10}",
        "component", "area mm2", "power mW"
    );
    for (name, c) in &components {
        println!("  {:<38} {:>10.3} {:>10.1}", name, c.area_mm2, c.power_mw);
    }
    let total = cost.total();
    let sys = system_cost(32, HbmConfig::default().total_dynamic_power_w());
    println!("  {:-<60}", "");
    println!(
        "  {:<38} {:>10.3} {:>10.1}",
        "1 SeGraM accelerator", total.area_mm2, total.power_mw
    );
    println!(
        "  {:<38} {:>10.2} {:>9.2}W",
        "32 SeGraM accelerators",
        sys.all_accelerators.area_mm2,
        sys.all_accelerators.power_mw / 1000.0
    );
    println!(
        "  {:<38} {:>10} {:>9.2}W",
        "+ 4x HBM2E", "-", sys.total_power_w
    );

    header("Paper comparison");
    row("paper: 1 accelerator", "0.867 mm2 / 758 mW");
    row(
        "model: 1 accelerator",
        format!("{:.3} mm2 / {:.0} mW", total.area_mm2, total.power_mw),
    );
    row("paper: 32 accelerators", "27.7 mm2 / 24.3 W");
    row(
        "model: 32 accelerators",
        format!(
            "{:.1} mm2 / {:.1} W",
            sys.all_accelerators.area_mm2,
            sys.all_accelerators.power_mw / 1000.0
        ),
    );
    row("paper: total with HBM", "28.1 W");
    row(
        "model: total with HBM",
        format!("{:.1} W", sys.total_power_w),
    );
    row(
        "hop queues / edit-distance logic area",
        format!(
            "{:.0}% (paper: >60%)",
            cost.hop_queue_area_fraction() * 100.0
        ),
    );
    row(
        "hop queues / edit-distance logic power",
        format!(
            "{:.0}% (paper: >60%)",
            cost.hop_queue_power_fraction() * 100.0
        ),
    );

    write_results(
        "table1",
        &Table1 {
            components: components
                .iter()
                .map(|(name, c)| ComponentRow {
                    component: name,
                    area_mm2: c.area_mm2,
                    power_mw: c.power_mw,
                })
                .collect(),
            single_accelerator_area_mm2: total.area_mm2,
            single_accelerator_power_mw: total.power_mw,
            all32_area_mm2: sys.all_accelerators.area_mm2,
            all32_power_w: sys.all_accelerators.power_mw / 1000.0,
            total_power_with_hbm_w: sys.total_power_w,
            hop_queue_share_of_edit_logic_area: cost.hop_queue_area_fraction(),
            hop_queue_share_of_edit_logic_power: cost.hop_queue_power_fraction(),
            paper_single_area_mm2: 0.867,
            paper_single_power_mw: 758.0,
            paper_all32_area_mm2: 27.7,
            paper_total_power_w: 28.1,
        },
    );
}
