//! # segram-testkit
//!
//! The workspace's offline test/bench substrate. The build environment
//! has no access to crates.io, so everything the tests, benches, and
//! experiment binaries used to pull from external crates lives here:
//!
//! * [`rng`] — seeded ChaCha8 RNG with a `rand`-style `Rng`/`SeedableRng`
//!   surface (replaces `rand` + `rand_chacha`);
//! * [`prop`] + [`proptest!`] — deterministic property testing with a
//!   proptest-flavoured strategy/macro surface (replaces `proptest`);
//! * [`json`] + `#[derive(Serialize)]` — a minimal JSON serializer for
//!   the experiment result files (replaces `serde` + `serde_json`);
//! * [`bench`] — a criterion-flavoured microbenchmark harness (replaces
//!   `criterion`).
//!
//! Everything is deterministic by construction: tests seed their own
//! streams, and the property runner derives per-case seeds from the
//! test's name, so failures reproduce across runs and machines.
//!
//! Property-test case counts are capped by default (see
//! [`prop::DEFAULT_CASE_CAP`]) and tunable via the
//! `SEGRAM_PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

pub mod bench;
pub mod json;
mod macros;
pub mod pattern;
pub mod prop;
pub mod rng;

// The `Serialize` trait and its derive macro share one import path, as
// with `serde::Serialize`.
pub use json::Serialize;
pub use segram_testkit_derive::Serialize;

/// Drop-in prelude for property tests, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop::prop;
    pub use crate::prop::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::rng::{ChaCha8Rng, Rng, RngCore, SeedableRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest};
}
