//! Applying linear-sequence filters to graph candidate regions soundly.

use segram_graph::{Base, LinearizedGraph};

use crate::{
    BaseCountFilter, EditLowerBound, FilterSpec, QGramFilter, ShiftedHammingFilter,
    SneakySnakeFilter,
};

/// The outcome of filtering one candidate region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionVerdict {
    /// Whether the region should proceed to alignment.
    pub accepted: bool,
    /// The lower bound the decision was based on (0 when bypassed).
    pub lower_bound: u32,
    /// `true` when the region's graph structure forced a bypass (the
    /// position-based filters cannot run soundly on branching regions).
    pub bypassed: bool,
}

/// Aggregate filtering statistics across a mapping run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Candidate regions examined.
    pub candidates: usize,
    /// Regions rejected before alignment.
    pub rejected: usize,
    /// Regions auto-accepted because the filter could not run soundly on
    /// their graph structure.
    pub bypassed: usize,
}

impl FilterStats {
    /// Records one verdict.
    pub fn record(&mut self, verdict: RegionVerdict) {
        self.candidates += 1;
        if !verdict.accepted {
            self.rejected += 1;
        }
        if verdict.bypassed {
            self.bypassed += 1;
        }
    }

    /// Merges another run's stats into this one.
    pub fn merge(&mut self, other: &FilterStats) {
        self.candidates += other.candidates;
        self.rejected += other.rejected;
        self.bypassed += other.bypassed;
    }

    /// Fraction of candidates rejected (0 when nothing was examined).
    pub fn reject_fraction(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        self.rejected as f64 / self.candidates as f64
    }
}

/// Filters one candidate region (a linearized subgraph) against a read.
///
/// Graph regions need care: a read may align along an alternate-allele
/// path whose spelling differs from any single linear projection of the
/// region, so naively running a linear filter on the linearization could
/// reject a mapping the aligner would have found. The dispatch is
/// therefore per filter family:
///
/// * **Composition bounds** ([`BaseCountFilter`]) run on the full
///   linearized character sequence. Any path's character multiset is a
///   sub-multiset of the linearization's (paths visit a subset of nodes),
///   so the bound stays sound unchanged.
/// * **q-gram bounds** ([`QGramFilter`]) run on the linearization with a
///   *hop slack*: a path crossing a hop can spell up to `q - 1` q-grams
///   that the concatenated linearization does not contain, so
///   `(q - 1) · #hops` is added to the shared count before bounding.
/// * **Position bounds** ([`ShiftedHammingFilter`],
///   [`SneakySnakeFilter`]) assume one coordinate system and are only run
///   when the region has no hops (a purely linear region — always the
///   case in sequence-to-sequence mode). Branching regions are bypassed
///   (auto-accepted), never unsoundly rejected.
///
/// [`FilterSpec::Cascade`] combines the families; its position-bound
/// stages are skipped on branching regions while the composition and
/// q-gram stages still run.
///
/// # Examples
///
/// ```
/// use segram_filter::{filter_region, FilterSpec};
/// use segram_graph::{DnaSeq, LinearizedGraph};
///
/// let region_seq: DnaSeq = "ACGTACGTACGTACGT".parse()?;
/// let lin = LinearizedGraph::from_linear_seq(&region_seq);
/// let read: DnaSeq = "ACGTACGT".parse()?;
/// let verdict = filter_region(FilterSpec::cascade(), read.as_slice(), &lin, 2);
/// assert!(verdict.accepted);
/// assert!(!verdict.bypassed);
/// # Ok::<(), segram_graph::GraphError>(())
/// ```
pub fn filter_region(
    spec: FilterSpec,
    read: &[Base],
    region: &LinearizedGraph,
    k: u32,
) -> RegionVerdict {
    let hop_count = region.hops().count();
    let text = region.bases();
    let linear = hop_count == 0;

    let (bound, bypassed) = match spec {
        FilterSpec::BaseCount => (BaseCountFilter.lower_bound(read, text, k), false),
        FilterSpec::QGram { q } => (qgram_region_bound(q, read, text, hop_count), false),
        FilterSpec::ShiftedHamming => {
            if linear {
                (ShiftedHammingFilter.lower_bound(read, text, k), false)
            } else {
                (0, true)
            }
        }
        FilterSpec::SneakySnake => {
            if linear {
                (SneakySnakeFilter.lower_bound(read, text, k), false)
            } else {
                (0, true)
            }
        }
        FilterSpec::Cascade { q } => {
            let mut bound = BaseCountFilter.lower_bound(read, text, k);
            if bound <= k {
                bound = bound.max(qgram_region_bound(q, read, text, hop_count));
            }
            if bound <= k && linear {
                bound = bound.max(ShiftedHammingFilter.lower_bound(read, text, k));
                if bound <= k {
                    bound = bound.max(SneakySnakeFilter.lower_bound(read, text, k));
                }
            }
            // The cascade as a whole ran (partially, on branching
            // regions), so it is never reported as bypassed.
            (bound, false)
        }
    };

    RegionVerdict {
        accepted: bypassed || bound <= k,
        lower_bound: bound,
        bypassed,
    }
}

/// q-gram bound with the hop slack described in [`filter_region`].
fn qgram_region_bound(q: usize, read: &[Base], text: &[Base], hop_count: usize) -> u32 {
    if read.len() < q {
        return 0;
    }
    let filter = QGramFilter::new(q);
    let shared = filter.shared_qgrams(read, text) + (q - 1) * hop_count;
    filter.bound_from_shared(read.len(), shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use segram_graph::{build_graph, DnaSeq, Variant};

    fn linear_region(seq: &str) -> LinearizedGraph {
        LinearizedGraph::from_linear_seq(&seq.parse::<DnaSeq>().unwrap())
    }

    fn read(seq: &str) -> Vec<Base> {
        seq.parse::<DnaSeq>().unwrap().into_bases()
    }

    #[test]
    fn linear_regions_use_all_filters() {
        let region = linear_region("ACGTACGTACGTACGTACGT");
        for spec in [
            FilterSpec::BaseCount,
            FilterSpec::QGram { q: 4 },
            FilterSpec::ShiftedHamming,
            FilterSpec::SneakySnake,
            FilterSpec::cascade(),
        ] {
            let verdict = filter_region(spec, &read("ACGTACGT"), &region, 1);
            assert!(verdict.accepted, "{spec:?} rejected an exact substring");
            assert!(!verdict.bypassed);
        }
    }

    #[test]
    fn hopeless_candidates_are_rejected() {
        let region = linear_region("CGCGCGCGCGCGCGCGCGCG");
        for spec in [
            FilterSpec::BaseCount,
            FilterSpec::QGram { q: 4 },
            FilterSpec::ShiftedHamming,
            FilterSpec::SneakySnake,
            FilterSpec::cascade(),
        ] {
            let verdict = filter_region(spec, &read("AAAATTTTAAAATTTT"), &region, 2);
            assert!(!verdict.accepted, "{spec:?} accepted a hopeless pair");
        }
    }

    /// Branching regions bypass the position filters and never reject a
    /// read that matches an alternate allele exactly.
    #[test]
    fn branching_regions_bypass_position_filters() {
        // Reference ACGT ACGT with an SNP bubble at position 3.
        let built = build_graph(
            &"ACGTACGTACGTACGT".parse::<DnaSeq>().unwrap(),
            [Variant::snp(3, segram_graph::Base::G)]
                .into_iter()
                .collect(),
        )
        .unwrap();
        let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars()).unwrap();
        assert!(lin.hops().count() > 0, "bubble must create hops");
        let alt_read = read("ACGGACGT"); // spells the ALT path
        for spec in [FilterSpec::ShiftedHamming, FilterSpec::SneakySnake] {
            let verdict = filter_region(spec, &alt_read, &lin, 0);
            assert!(verdict.accepted);
            assert!(verdict.bypassed);
        }
        // The multiset-sound filters still run and still accept.
        for spec in [
            FilterSpec::BaseCount,
            FilterSpec::QGram { q: 4 },
            FilterSpec::cascade(),
        ] {
            let verdict = filter_region(spec, &alt_read, &lin, 1);
            assert!(verdict.accepted, "{spec:?} falsely rejected an ALT read");
            assert!(!verdict.bypassed);
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut stats = FilterStats::default();
        stats.record(RegionVerdict {
            accepted: true,
            lower_bound: 0,
            bypassed: false,
        });
        stats.record(RegionVerdict {
            accepted: false,
            lower_bound: 9,
            bypassed: false,
        });
        stats.record(RegionVerdict {
            accepted: true,
            lower_bound: 0,
            bypassed: true,
        });
        assert_eq!(stats.candidates, 3);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.bypassed, 1);
        assert!((stats.reject_fraction() - 1.0 / 3.0).abs() < 1e-12);
        let mut total = FilterStats::default();
        total.merge(&stats);
        total.merge(&stats);
        assert_eq!(total.candidates, 6);
    }
}
