//! Persistent-index and daemon tests: `index build` -> `map --index`
//! byte-parity against `map --graph`, named errors on corrupt `.sgi`
//! files, and a live `segram serve` daemon driven through `segram
//! request` — round trips, concurrency, mid-payload cancellation
//! isolation, and shutdown.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use segram_cli::{dispatch, CliError};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("segram-serve-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run(args: &[&str]) -> Result<String, CliError> {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    dispatch(&owned)
}

/// Simulates a small bundle and builds its persistent index; returns
/// `(bundle prefix, .sgi path)`.
fn build_bundle(dir: &TempDir) -> (String, String) {
    build_bundle_with(dir, "bundle", "ref.sgi", 7)
}

/// [`build_bundle`] with an explicit name and simulation seed, so a test
/// can build two genuinely different indexes side by side (RELOAD tests).
fn build_bundle_with(dir: &TempDir, tag: &str, sgi_name: &str, seed: u64) -> (String, String) {
    let prefix = dir.path(tag);
    let seed = seed.to_string();
    run(&[
        "simulate",
        "--out-prefix",
        &prefix,
        "--length",
        "30000",
        "--reads",
        "12",
        "--read-len",
        "120",
        "--seed",
        &seed,
    ])
    .expect("simulate");
    let sgi = dir.path(sgi_name);
    let report = run(&[
        "index",
        "build",
        "--reference",
        &format!("{prefix}.fa"),
        "--vcf",
        &format!("{prefix}.vcf"),
        "--output",
        &sgi,
    ])
    .expect("index build");
    assert!(report.contains("format v"), "{report}");
    assert!(report.contains("frequency threshold"), "{report}");
    (prefix, sgi)
}

/// Polls the daemon's `--addr-file` until it holds a complete address.
fn wait_for_addr(path: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(text) = fs::read_to_string(path) {
            if text.ends_with('\n') && !text.trim().is_empty() {
                return text.trim().to_owned();
            }
        }
        assert!(Instant::now() < deadline, "server never wrote {path}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn map_index_matches_map_graph_byte_for_byte() {
    let dir = TempDir::new("parity");
    let (prefix, sgi) = build_bundle(&dir);
    let reads = format!("{prefix}.fq");
    let gfa = format!("{prefix}.gfa");

    for format in ["sam", "gaf"] {
        let from_graph = dir.path(&format!("graph.{format}"));
        let from_index = dir.path(&format!("index.{format}"));
        run(&[
            "map",
            "--graph",
            &gfa,
            "--reads",
            &reads,
            "--format",
            format,
            "--output",
            &from_graph,
        ])
        .expect("map --graph");
        let report = run(&[
            "map",
            "--index",
            &sgi,
            "--reads",
            &reads,
            "--format",
            format,
            "--output",
            &from_index,
        ])
        .expect("map --index");
        assert!(report.contains("loaded persistent index"), "{report}");
        assert_eq!(
            fs::read(&from_graph).unwrap(),
            fs::read(&from_index).unwrap(),
            "{format}: map --index must be byte-identical to map --graph"
        );
    }
}

#[test]
fn map_index_flag_conflicts_are_usage_errors() {
    let dir = TempDir::new("conflicts");
    let sgi = dir.path("ref.sgi");
    let gfa = dir.path("ref.gfa");
    let reads = dir.path("reads.fq");
    // The conflicts are rejected before any file is opened, so the paths
    // need not exist.
    let cases: &[(&[&str], &str)] = &[
        (
            &["map", "--graph", &gfa, "--index", &sgi, "--reads", &reads],
            "mutually exclusive",
        ),
        (&["map", "--reads", &reads], "one of --graph or --index"),
        (
            &[
                "map",
                "--index",
                &sgi,
                "--reads",
                &reads,
                "--compress-output",
            ],
            "--compress-output requires a file output",
        ),
        (
            &["map", "--index", &sgi, "--reads", &reads, "--backend", "vg"],
            "--index only applies to --backend segram",
        ),
    ];
    for (args, needle) in cases {
        let err = run(args).expect_err("conflict must be rejected");
        assert_eq!(err.exit_code(), 2, "{args:?}");
        assert!(err.to_string().contains(needle), "{args:?}: {err}");
    }
}

#[test]
fn corrupt_index_files_fail_with_named_errors() {
    let dir = TempDir::new("corrupt");
    let (prefix, sgi) = build_bundle(&dir);
    let reads = format!("{prefix}.fq");
    let bytes = fs::read(&sgi).unwrap();

    // Wrong magic: not a segram index at all.
    let bad = dir.path("bad.sgi");
    let mut mutated = bytes.clone();
    mutated[0] ^= 0xFF;
    fs::write(&bad, &mutated).unwrap();
    let err = run(&["map", "--index", &bad, "--reads", &reads]).expect_err("bad magic");
    assert_eq!(err.exit_code(), 1);
    assert!(err.to_string().contains("not a segram index file"), "{err}");

    // Truncated to half: the section table points past the end.
    let trunc = dir.path("trunc.sgi");
    fs::write(&trunc, &bytes[..bytes.len() / 2]).unwrap();
    let err = run(&["map", "--index", &trunc, "--reads", &reads]).expect_err("truncated");
    assert_eq!(err.exit_code(), 1);
    let message = err.to_string();
    assert!(
        message.contains("truncated")
            || message.contains("checksum")
            || message.contains("corrupt"),
        "{message}"
    );

    // One flipped payload byte: the section checksum catches it.
    let flipped = dir.path("flipped.sgi");
    let mut mutated = bytes.clone();
    let last = mutated.len() - 1;
    mutated[last] ^= 0xFF;
    fs::write(&flipped, &mutated).unwrap();
    let err = run(&["map", "--index", &flipped, "--reads", &reads]).expect_err("flipped byte");
    assert!(err.to_string().contains("checksum mismatch"), "{err}");

    // Empty file.
    let empty = dir.path("empty.sgi");
    fs::write(&empty, b"").unwrap();
    let err = run(&["map", "--index", &empty, "--reads", &reads]).expect_err("empty file");
    assert!(err.to_string().contains("truncated"), "{err}");
}

#[test]
fn serve_daemon_round_trips_cancels_and_shuts_down() {
    let dir = TempDir::new("daemon");
    let (prefix, sgi) = build_bundle(&dir);
    let reads = format!("{prefix}.fq");

    // One-shot references the daemon's replies must match byte-for-byte.
    let want_sam = dir.path("want.sam");
    let want_gaf = dir.path("want.gaf");
    for (format, path) in [("sam", &want_sam), ("gaf", &want_gaf)] {
        run(&[
            "map", "--index", &sgi, "--reads", &reads, "--format", format, "--output", path,
        ])
        .expect("one-shot map --index");
    }

    let addr_file = dir.path("addr");
    let serve_args: Vec<String> = [
        "serve",
        "--index",
        &sgi,
        "--addr",
        "127.0.0.1:0",
        "--addr-file",
        &addr_file,
        "--threads",
        "2",
        "--quiet",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let server = std::thread::spawn(move || dispatch(&serve_args));
    let addr = wait_for_addr(&addr_file);

    // 1. Single round trip: reply bytes identical to the one-shot run.
    let got_sam = dir.path("got.sam");
    let report = run(&[
        "request", "--addr", &addr, "--reads", &reads, "--format", "sam", "--output", &got_sam,
    ])
    .expect("request sam");
    assert!(report.contains("reads=12"), "{report}");
    assert_eq!(
        fs::read(&want_sam).unwrap(),
        fs::read(&got_sam).unwrap(),
        "served SAM must match one-shot map --index"
    );

    // 2. Concurrent requests (sam + gaf) through the shared engine: both
    //    documents must come back unmixed and byte-identical.
    let concurrent_sam = dir.path("concurrent.sam");
    let concurrent_gaf = dir.path("concurrent.gaf");
    let mut workers = Vec::new();
    for (format, output) in [("sam", &concurrent_sam), ("gaf", &concurrent_gaf)] {
        let args: Vec<String> = [
            "request", "--addr", &addr, "--reads", &reads, "--format", format, "--output", output,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        workers.push(std::thread::spawn(move || dispatch(&args)));
    }
    for worker in workers {
        worker
            .join()
            .expect("request thread")
            .expect("concurrent request");
    }
    assert_eq!(
        fs::read(&want_sam).unwrap(),
        fs::read(&concurrent_sam).unwrap(),
        "concurrent SAM request must not interleave with the GAF one"
    );
    assert_eq!(
        fs::read(&want_gaf).unwrap(),
        fs::read(&concurrent_gaf).unwrap(),
        "concurrent GAF request must not interleave with the SAM one"
    );

    // 3. A client that disconnects mid-payload cancels only its own
    //    request; the next request is served normally.
    let report = run(&[
        "request",
        "--addr",
        &addr,
        "--reads",
        &reads,
        "--cancel-after",
        "100",
    ])
    .expect("cancel-after");
    assert!(report.contains("disconnected after 100"), "{report}");
    let after_cancel = dir.path("after-cancel.gaf");
    run(&[
        "request",
        "--addr",
        &addr,
        "--reads",
        &reads,
        "--format",
        "gaf",
        "--output",
        &after_cancel,
    ])
    .expect("request after cancellation");
    assert_eq!(
        fs::read(&want_gaf).unwrap(),
        fs::read(&after_cancel).unwrap(),
        "a cancelled request must not corrupt later ones"
    );

    // 4. A malformed payload earns an ERR reply, surfaced as a server
    //    error (exit code 1), and the daemon keeps running.
    let bad_reads = dir.path("bad.fq");
    fs::write(&bad_reads, "this is not fastq\n").unwrap();
    let err =
        run(&["request", "--addr", &addr, "--reads", &bad_reads]).expect_err("malformed payload");
    assert_eq!(err.exit_code(), 1);
    assert!(
        matches!(err, CliError::Server(_)),
        "expected a server error, got {err}"
    );

    // 5. Shutdown: QUIT is acknowledged, the daemon exits, and its report
    //    accounts for every request above.
    let report = run(&["request", "--addr", &addr, "--shutdown"]).expect("shutdown");
    assert!(report.contains("server acknowledged shutdown"), "{report}");
    let report = server
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
    assert!(
        report.contains("served 4 requests (2 cancelled by clients, 0 refused busy, 0 failed)"),
        "{report}"
    );
}

#[test]
fn elastic_daemon_replies_match_one_shot_and_reports_pools() {
    let dir = TempDir::new("elastic");
    let (prefix, sgi) = build_bundle(&dir);
    let reads = format!("{prefix}.fq");

    let want_sam = dir.path("want.sam");
    run(&[
        "map", "--index", &sgi, "--reads", &reads, "--format", "sam", "--output", &want_sam,
    ])
    .expect("one-shot map --index");

    // Daemon with the loaded index re-sharded four ways and the elastic
    // schedule: request batches are pre-routed to per-shard-group pools,
    // yet replies must stay byte-identical to the monolithic one-shot run.
    let addr_file = dir.path("addr");
    let serve_args: Vec<String> = [
        "serve",
        "--index",
        &sgi,
        "--shards",
        "4",
        "--schedule",
        "elastic",
        "--addr",
        "127.0.0.1:0",
        "--addr-file",
        &addr_file,
        "--threads",
        "4",
        "--quiet",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let server = std::thread::spawn(move || dispatch(&serve_args));
    let addr = wait_for_addr(&addr_file);

    let got_sam = dir.path("got.sam");
    run(&[
        "request", "--addr", &addr, "--reads", &reads, "--format", "sam", "--output", &got_sam,
    ])
    .expect("request sam");
    assert_eq!(
        fs::read(&want_sam).unwrap(),
        fs::read(&got_sam).unwrap(),
        "elastic daemon reply must match the one-shot monolithic run"
    );

    run(&["request", "--addr", &addr, "--shutdown"]).expect("shutdown");
    let report = server
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
    assert!(report.contains("served 1 requests"), "{report}");
    assert!(report.contains("elastic schedule: 4 pools"), "{report}");
    assert!(report.contains("shard migrations"), "{report}");
}

/// Reads one full MAP reply (status, chunks, summary) off a raw socket.
fn read_reply(reader: &mut std::io::BufReader<std::net::TcpStream>) -> (Vec<u8>, String) {
    use std::io::{BufRead, Read};
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert_eq!(line.trim_end(), "OK", "request must be accepted");
    let mut document = Vec::new();
    loop {
        line.clear();
        reader.read_line(&mut line).expect("reply line");
        let trimmed = line.trim_end();
        if let Some(len) = trimmed.strip_prefix("CHUNK ") {
            let len: usize = len.parse().expect("chunk length");
            let start = document.len();
            document.resize(start + len, 0);
            reader.read_exact(&mut document[start..]).expect("chunk");
        } else if let Some(summary) = trimmed.strip_prefix("END ") {
            return (document, summary.to_owned());
        } else {
            panic!("unexpected reply line {trimmed:?}");
        }
    }
}

#[test]
fn mid_flight_reload_is_zero_downtime_and_byte_identical() {
    use std::io::Write;

    let dir = TempDir::new("reload");
    let (prefix_a, sgi_a) = build_bundle_with(&dir, "bundle-a", "a.sgi", 7);
    let (prefix_b, sgi_b) = build_bundle_with(&dir, "bundle-b", "b.sgi", 8);
    let reads_a = format!("{prefix_a}.fq");
    let reads_b = format!("{prefix_b}.fq");

    // One-shot references: the in-flight request must match index A, the
    // post-reload request must match index B.
    let want_a = dir.path("want-a.sam");
    let want_b = dir.path("want-b.sam");
    run(&[
        "map", "--index", &sgi_a, "--reads", &reads_a, "--format", "sam", "--output", &want_a,
    ])
    .expect("one-shot A");
    run(&[
        "map", "--index", &sgi_b, "--reads", &reads_b, "--format", "sam", "--output", &want_b,
    ])
    .expect("one-shot B");

    let addr_file = dir.path("addr");
    let serve_args: Vec<String> = [
        "serve",
        "--index",
        &sgi_a,
        "--addr",
        "127.0.0.1:0",
        "--addr-file",
        &addr_file,
        "--threads",
        "2",
        "--quiet",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let server = std::thread::spawn(move || dispatch(&serve_args));
    let addr = wait_for_addr(&addr_file);

    // Open a v2 request against index A and send only half its payload:
    // the request is now in flight, pinned to the mapper it opened with.
    let payload = fs::read(&reads_a).unwrap();
    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writeln!(writer, "MAP/2 {} fmt=sam prio=interactive", payload.len()).expect("header");
    let half = payload.len() / 2;
    writer.write_all(&payload[..half]).expect("first half");
    writer.flush().expect("flush");

    // Swap the index to B while that request is mid-payload.
    let report = run(&["request", "--addr", &addr, "--reload", &sgi_b]).expect("reload");
    assert!(report.contains("swapped its index"), "{report}");

    // Finish the payload: the reply must be byte-identical to the
    // pre-reload one-shot against A — the swap never touches it.
    writer.write_all(&payload[half..]).expect("second half");
    writer.flush().expect("flush");
    let (document, summary) = read_reply(&mut reader);
    assert_eq!(
        document,
        fs::read(&want_a).unwrap(),
        "in-flight request must keep mapping against the pre-reload index"
    );
    assert!(summary.contains("reads=12"), "{summary}");
    assert!(summary.contains("prio=interactive"), "{summary}");
    assert!(summary.contains("p95us="), "{summary}");
    drop(writer);
    drop(reader);

    // A request opened after the swap maps against index B.
    let got_b = dir.path("got-b.sam");
    run(&[
        "request", "--addr", &addr, "--reads", &reads_b, "--format", "sam", "--output", &got_b,
    ])
    .expect("post-reload request");
    assert_eq!(
        fs::read(&want_b).unwrap(),
        fs::read(&got_b).unwrap(),
        "post-reload request must map against the new index"
    );

    // A reload of a nonexistent path fails without touching the active
    // index or failing any request.
    let missing = dir.path("missing.sgi");
    let err = run(&["request", "--addr", &addr, "--reload", &missing])
        .expect_err("reload of a missing index");
    assert!(err.to_string().contains("reload failed"), "{err}");

    run(&["request", "--addr", &addr, "--shutdown"]).expect("shutdown");
    let report = server
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
    assert!(
        report.contains("served 2 requests (0 cancelled by clients, 0 refused busy, 0 failed)"),
        "{report}"
    );
    assert!(
        report.contains(&format!("reloads: 1, active index: {sgi_b}")),
        "{report}"
    );
    assert!(report.contains("queueing delay interactive:"), "{report}");
    assert!(report.contains("queueing delay normal:"), "{report}");
}

#[test]
fn new_commands_answer_help() {
    for args in [
        &["index", "build", "--help"][..],
        &["serve", "--help"][..],
        &["request", "--help"][..],
    ] {
        let text = run(args).expect("help");
        assert!(text.contains("OPTIONS"), "{args:?}: {text}");
    }
}
