//! Criterion microbenchmarks of the alignment kernels: BitAlign vs the
//! exact graph DP (PaSGAL-like) vs Myers, across read lengths — the
//! software-side view of the Figure 17 comparison.

use segram_align::{
    bitalign, graph_dp_distance, myers_distance, windowed_bitalign, StartMode, WindowConfig,
};
use segram_graph::{build_graph, DnaSeq, LinearizedGraph};
use segram_sim::{
    generate_reference, simulate_reads, simulate_variants, ErrorProfile, GenomeConfig, ReadConfig,
    VariantConfig,
};
use segram_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

struct Fixture {
    lin: LinearizedGraph,
    reads: Vec<DnaSeq>,
}

fn fixture(read_len: usize, region_len: usize) -> Fixture {
    let reference = generate_reference(&GenomeConfig::human_like(region_len, 5));
    let variants = simulate_variants(&reference, &VariantConfig::human_like(6));
    let built = build_graph(&reference, variants).expect("synthetic inputs");
    let reads = simulate_reads(
        &built.graph,
        &ReadConfig {
            count: 4,
            len: read_len,
            errors: ErrorProfile::illumina(),
            seed: 7,
        },
    )
    .into_iter()
    .map(|r| r.seq)
    .collect();
    let lin = LinearizedGraph::extract(&built.graph, 0, built.graph.total_chars())
        .expect("non-empty graph");
    Fixture { lin, reads }
}

fn bench_short_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("s2g_alignment_short");
    group.sample_size(20);
    for read_len in [100usize, 250] {
        let f = fixture(read_len, 2_000);
        group.bench_with_input(BenchmarkId::new("bitalign", read_len), &f, |b, f| {
            b.iter(|| {
                for read in &f.reads {
                    let _ = bitalign(&f.lin, read, (read.len() / 4) as u32);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("graph_dp", read_len), &f, |b, f| {
            b.iter(|| {
                for read in &f.reads {
                    let _ = graph_dp_distance(&f.lin, read, StartMode::Free);
                }
            })
        });
    }
    group.finish();
}

fn bench_long_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("s2g_alignment_long");
    group.sample_size(10);
    let f = fixture(2_000, 4_000);
    group.bench_function("windowed_bitalign_2kbp", |b| {
        b.iter(|| {
            for read in &f.reads {
                let _ = windowed_bitalign(&f.lin, read, WindowConfig::bitalign(), StartMode::Free);
            }
        })
    });
    group.bench_function("graph_dp_distance_2kbp", |b| {
        b.iter(|| {
            for read in &f.reads {
                let _ = graph_dp_distance(&f.lin, read, StartMode::Free);
            }
        })
    });
    group.finish();
}

fn bench_s2s_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("s2s_kernels");
    group.sample_size(20);
    let reference = generate_reference(&GenomeConfig::human_like(4_000, 9));
    let text = reference.as_slice().to_vec();
    let read = reference.slice(700, 950);
    let lin = LinearizedGraph::from_linear_seq(&reference);
    group.bench_function("bitalign_linear_250bp", |b| {
        b.iter(|| bitalign(&lin, &read, 32))
    });
    group.bench_function("myers_250bp", |b| {
        b.iter(|| myers_distance(&text, read.as_slice()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_short_alignment,
    bench_long_alignment,
    bench_s2s_kernels
);
criterion_main!(benches);
