//! Pangenome mapping: the paper's motivating scenario (Section 1).
//!
//! Reads are sequenced from individuals whose genomes carry population
//! variants. Mapping them to a single linear reference suffers *reference
//! bias*; mapping to the genome graph recovers the variant alleles with
//! fewer edits and better locations.
//!
//! Run with: `cargo run --release --example pangenome_mapping`

use segram_core::{measure_workload, SegramConfig, SegramMapper};
use segram_hw::SegramSystem;
use segram_sim::DatasetConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down population: 120 kbp reference, human-like variant mix,
    // 150 bp Illumina-like reads drawn from graph paths.
    let dataset = DatasetConfig {
        reference_len: 120_000,
        read_count: 60,
        long_read_len: 3_000,
        seed: 2024,
    }
    .illumina(150);
    println!(
        "dataset {}: {} variants embedded, {} reads",
        dataset.name,
        dataset.built.embedded_variants,
        dataset.reads.len()
    );

    // Map against the graph and against the bare linear reference.
    let graph_mapper = SegramMapper::new(dataset.graph().clone(), SegramConfig::short_reads());
    let linear_mapper = SegramMapper::new_linear(&dataset.reference, SegramConfig::short_reads())?;

    let mut graph_edits = 0u64;
    let mut linear_edits = 0u64;
    let mut reads_helped = 0usize;
    for read in &dataset.reads {
        let (g, _) = graph_mapper.map_read(&read.seq);
        let (l, _) = linear_mapper.map_read(&read.seq);
        let g_edits = g.map_or(read.seq.len() as u32, |m| m.alignment.edit_distance);
        let l_edits = l.map_or(read.seq.len() as u32, |m| m.alignment.edit_distance);
        graph_edits += u64::from(g_edits);
        linear_edits += u64::from(l_edits);
        if g_edits < l_edits {
            reads_helped += 1;
        }
    }
    println!("total edits against the graph:  {graph_edits}");
    println!("total edits against the linear: {linear_edits}");
    println!(
        "reads where the graph removed reference bias: {reads_helped}/{}",
        dataset.reads.len()
    );
    assert!(graph_edits <= linear_edits);

    // Accuracy against simulation ground truth + hardware projection.
    let measurement = measure_workload(&graph_mapper, &dataset.reads, 150);
    println!(
        "mapping accuracy vs simulation truth: {:.0}% ({} reads measured)",
        measurement.accuracy * 100.0,
        measurement.reads
    );
    let system = SegramSystem::default();
    println!(
        "SeGraM hardware projection: {:.0} reads/s on 32 accelerators \
         ({:.1} us per seed, {:.1} W system power)",
        system.throughput_reads_per_s(&measurement.workload),
        system.per_seed_latency_us(&measurement.workload),
        segram_hw::system_cost(32, segram_hw::HbmConfig::default().total_dynamic_power_w())
            .total_power_w,
    );
    Ok(())
}
